"""repro — a reproduction of "Efficient Synonym Filtering and Scalable
Delayed Translation for Hybrid Virtual Caching" (Park, Heo, Huh — ISCA 2016).

Public API tour
---------------

* :mod:`repro.filters`   — the Bloom-filter synonym detector.
* :mod:`repro.core`      — MMU front-ends: the hybrid design and baselines.
* :mod:`repro.segtrans`  — many-segment delayed translation hardware.
* :mod:`repro.osmodel`   — the OS substrate (frames, page tables, segments).
* :mod:`repro.workloads` — calibrated synthetic workload generators.
* :mod:`repro.sim`       — one-call experiment drivers.
* :mod:`repro.exec`      — job-based execution engine (plans, parallel
  executors, fingerprint-keyed result caching).
* :mod:`repro.energy`    — translation-energy accounting.
* :mod:`repro.virt`      — virtualization (2-D translation) support.

Quick start::

    from repro.sim import compare_configs
    row = compare_configs("gups", accesses=50_000)
    print(row.normalized())   # speedups over the physical baseline
"""

from repro.common.params import SystemConfig
from repro.core import ConventionalMmu, HybridMmu, IdealMmu
from repro.filters import SynonymFilter
from repro.osmodel import Kernel
from repro.sim import Simulator, compare_configs, run_workload
from repro.workloads import WorkloadSpec, spec

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "ConventionalMmu",
    "HybridMmu",
    "IdealMmu",
    "SynonymFilter",
    "Kernel",
    "Simulator",
    "compare_configs",
    "run_workload",
    "WorkloadSpec",
    "spec",
    "__version__",
]
