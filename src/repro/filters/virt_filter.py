"""Guest/host synonym-filter pair for virtualized systems (Section V-A).

Under virtualization two parties can create synonyms:

* the **guest OS** (classic shared mappings inside one VM), recorded in the
  *guest filter* exactly as in a native system, and
* the **hypervisor** (inter- or intra-VM sharing of machine frames, e.g.
  content-based page sharing), recorded in the *host filter*.

Both filters are indexed by the **guest virtual address**: the hypervisor
maintains a gPA→gVA inverse map per VM (see ``repro.virt.hypervisor``) so
it can translate a shared guest-physical frame into the guest-virtual
pages that name it.  A lookup probes both filters and reports a candidate
when **either** hits — exactly the paper's rule.
"""

from __future__ import annotations

from repro.common.params import SynonymFilterConfig
from repro.common.stats import StatGroup
from repro.filters.synonym_filter import SynonymFilter


class VirtualizedSynonymFilter:
    """Paired guest/host filters probed together with the guest VA."""

    def __init__(self, config: SynonymFilterConfig | None = None,
                 stats: StatGroup | None = None) -> None:
        self.config = config or SynonymFilterConfig()
        self.stats = stats or StatGroup("virt_synonym_filter")
        self.guest = SynonymFilter(self.config)
        self.host = SynonymFilter(self.config)

    def mark_guest_shared(self, gva: int) -> None:
        """Guest OS marks a guest-virtual page as a synonym."""
        self.guest.mark_shared(gva)

    def mark_host_shared(self, gva: int) -> None:
        """Hypervisor marks a guest-virtual page whose backing frame it shared."""
        self.host.mark_shared(gva)

    def is_synonym_candidate(self, gva: int) -> bool:
        """Candidate when either the guest or the host filter reports a hit."""
        self.stats.add("lookups")
        candidate = (self.guest.is_synonym_candidate(gva)
                     or self.host.is_synonym_candidate(gva))
        if candidate:
            self.stats.add("candidates")
        return candidate

    def switch_guest_process(self, fine_bits: int, coarse_bits: int) -> None:
        """Guest context switch: the guest OS swaps only the guest filter."""
        self.guest.load_state_bits(fine_bits, coarse_bits)
        self.stats.add("guest_switches")

    def switch_vm(self, fine_bits: int, coarse_bits: int) -> None:
        """VM context switch: the hypervisor swaps only the host filter."""
        self.host.load_state_bits(fine_bits, coarse_bits)
        self.stats.add("vm_switches")
