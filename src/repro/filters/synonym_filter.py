"""The dual-granularity synonym filter (Section III-B, Figure 3).

One :class:`SynonymFilter` exists per address space.  It combines:

* a **coarse** 1K-bit Bloom filter over 16 MB regions, and
* a **fine** 1K-bit Bloom filter over 32 KB regions,

each probed by two partition/XOR-fold hash functions.  An address is
reported as a *synonym candidate* only when **all four** probed bits are
set.  The OS inserts a page into both filters when it makes the page's
mapping shared (a synonym); removals never clear bits (bits are shared by
construction), so the OS instead rebuilds a saturated filter from its own
authoritative list of shared pages.

Guarantee: every truly shared page queries as a candidate (no false
negatives).  False positives are harmless — the TLB resolves them with a
non-synonym marker entry (Section III-A) — but cost a TLB probe, so the
filter's job is to keep them rare.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.address import page_base
from repro.common.params import SynonymFilterConfig
from repro.common.stats import StatGroup
from repro.filters.bloom import BloomFilter
from repro.filters.hashing import make_hash_pair
from repro.obs.histogram import Histogram


class SynonymFilter:
    """Per-address-space synonym candidate detector."""

    def __init__(self, config: SynonymFilterConfig | None = None,
                 stats: StatGroup | None = None) -> None:
        self.config = config or SynonymFilterConfig()
        self.stats = stats or StatGroup("synonym_filter")
        self.fine = BloomFilter(self.config.bits,
                                make_hash_pair(self.config.fine_grain_shift))
        self.coarse = BloomFilter(self.config.bits,
                                  make_hash_pair(self.config.coarse_grain_shift))
        # Occupancy (set-bit count of the fuller filter) sampled at every
        # OS-side insert — the saturation trajectory the rebuild policy
        # watches.  Inserts are rare (sharing transitions), so this is
        # off the per-access path.
        self.occupancy_hist = Histogram("synonym_filter_occupancy")

    # ------------------------------------------------------------------ #
    # OS-side maintenance
    # ------------------------------------------------------------------ #

    def mark_shared(self, va: int) -> None:
        """Record that the page containing ``va`` became a synonym page.

        Called by the OS on the private→shared transition; both filters are
        updated so the AND of the two granularities still covers the page.
        """
        va = page_base(va)
        self.fine.insert(va)
        self.coarse.insert(va)
        self.stats.add("pages_marked")
        self.occupancy_hist.record(max(self.fine.popcount(),
                                       self.coarse.popcount()))

    def mark_shared_range(self, va_start: int, length: int, page_size: int = 4096) -> None:
        """Mark every page of ``[va_start, va_start + length)`` as shared."""
        va = page_base(va_start)
        end = va_start + length
        while va < end:
            self.mark_shared(va)
            va += page_size

    def rebuild(self, shared_pages: Iterable[int]) -> None:
        """Reconstruct both filters from the OS's list of shared pages.

        The paper lets the OS rebuild a filter when unshare churn has
        inflated the false-positive rate past a threshold; shared→private
        transitions never clear bits in place.
        """
        self.fine.clear()
        self.coarse.clear()
        for va in shared_pages:
            self.mark_shared(va)
        self.stats.add("rebuilds")

    # ------------------------------------------------------------------ #
    # Core-side lookup
    # ------------------------------------------------------------------ #

    def is_synonym_candidate(self, va: int) -> bool:
        """Probe both filters; candidate iff all four probed bits are set."""
        self.stats.add("lookups")
        candidate = self.coarse.query(va) and self.fine.query(va)
        if candidate:
            self.stats.add("candidates")
        return candidate

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def fill_ratio(self) -> float:
        """Worst of the two filters' fill ratios (saturation signal)."""
        return max(self.fine.fill_ratio(), self.coarse.fill_ratio())

    def state_bits(self) -> tuple[int, int]:
        """Raw (fine, coarse) bit vectors — saved/restored on context switch."""
        return self.fine.dump_bits(), self.coarse.dump_bits()

    def load_state_bits(self, fine_bits: int, coarse_bits: int) -> None:
        """Install raw bit vectors (the per-core on-chip filter copy load)."""
        self.fine.load_bits(fine_bits)
        self.coarse.load_bits(coarse_bits)
        self.stats.add("context_loads")
