"""A plain Bloom filter over a fixed-size bit vector.

The paper uses two 1K-bit Bloom filters per address space (Section III-B).
Hash functions are supplied by the caller so the same structure serves the
paper's partition/XOR-fold hashes and the synthetic hashes used in tests.

Bloom filters admit false positives but never false negatives — exactly
the property the synonym filter requires: every true synonym must be
detected; a false positive merely routes one access through the TLB where
the marker entry corrects it (Section III-A).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence


class BloomFilter:
    """Fixed-size Bloom filter with caller-supplied hash functions."""

    def __init__(self, bits: int, hash_functions: Sequence[Callable[[int], int]]) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ValueError("bits must be a positive power of two")
        if not hash_functions:
            raise ValueError("at least one hash function is required")
        self.bits = bits
        self._mask = bits - 1
        self._hashes = tuple(hash_functions)
        self._vector = 0  # Python int as a bit vector
        self._inserted = 0

    @property
    def num_hashes(self) -> int:
        return len(self._hashes)

    @property
    def inserted(self) -> int:
        """Number of ``insert`` calls since the last clear (OS bookkeeping)."""
        return self._inserted

    def insert(self, key: int) -> None:
        """Set every hash position for ``key``."""
        for h in self._hashes:
            self._vector |= 1 << (h(key) & self._mask)
        self._inserted += 1

    def query(self, key: int) -> bool:
        """Return True when every hash position for ``key`` is set."""
        for h in self._hashes:
            if not (self._vector >> (h(key) & self._mask)) & 1:
                return False
        return True

    def clear(self) -> None:
        """Reset the filter to empty (address-space creation / OS rebuild)."""
        self._vector = 0
        self._inserted = 0

    def popcount(self) -> int:
        """Number of set bits — the OS's saturation signal for rebuilds."""
        return self._vector.bit_count()

    def fill_ratio(self) -> float:
        """Fraction of bits set; drives the rebuild-threshold policy."""
        return self.popcount() / self.bits

    def union_update(self, other: "BloomFilter") -> None:
        """OR another filter of identical geometry into this one."""
        if other.bits != self.bits:
            raise ValueError("cannot union filters of different sizes")
        self._vector |= other._vector

    def load_bits(self, vector: int) -> None:
        """Install a raw bit vector (models the context-switch filter load)."""
        self._vector = vector & ((1 << self.bits) - 1)

    def dump_bits(self) -> int:
        """Return the raw bit vector (models the OS saving filter state)."""
        return self._vector

    def insert_all(self, keys: Iterable[int]) -> None:
        """Insert every key in ``keys``."""
        for key in keys:
            self.insert(key)
