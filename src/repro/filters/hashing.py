"""The paper's Bloom-filter hash functions (Section III-B).

Each Bloom filter is probed by two hash functions.  A hash function:

1. trims the virtual address by the filter's granularity shift (15 bits for
   the 32 KB filter, 24 bits for the 16 MB filter),
2. partitions the remaining address bits into two contiguous fields — one
   function splits them 1:1, the other 1:2,
3. XOR-folds each field down to 5 bits,
4. concatenates the two 5-bit results into a 10-bit index into the
   1K-bit filter.

XOR-folding a field means XOR-ing its consecutive 5-bit chunks together,
which is cheap in hardware (a tree of XOR gates) and mixes every address
bit into the index.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.common.address import VA_BITS

FOLD_BITS = 5
FOLD_MASK = (1 << FOLD_BITS) - 1


def xor_fold(value: int, out_bits: int = FOLD_BITS) -> int:
    """XOR-fold ``value`` down to ``out_bits`` bits."""
    mask = (1 << out_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= out_bits
    return folded


def partition_hash(trimmed: int, field_bits: int, split_numerator: int,
                   split_denominator: int) -> int:
    """Hash ``trimmed`` (a ``field_bits``-wide value) to a 10-bit index.

    The field is split at ``field_bits * split_numerator //
    split_denominator`` from the low end; each side is XOR-folded to 5 bits
    and the two results concatenated (low partition in the low 5 bits).
    """
    cut = max(1, min(field_bits - 1, field_bits * split_numerator // split_denominator))
    low = trimmed & ((1 << cut) - 1)
    high = trimmed >> cut
    return (xor_fold(high) << FOLD_BITS) | xor_fold(low)


def make_hash_pair(grain_shift: int,
                   va_bits: int = VA_BITS) -> Tuple[Callable[[int], int], Callable[[int], int]]:
    """Build the paper's two hash functions for a filter of given granularity.

    ``grain_shift`` is 15 for the fine (32 KB) filter and 24 for the coarse
    (16 MB) filter.  Both returned callables map a full virtual address to a
    10-bit filter index.
    """
    field_bits = va_bits - grain_shift

    def hash_even(va: int) -> int:
        return partition_hash(va >> grain_shift, field_bits, 1, 2)

    def hash_skewed(va: int) -> int:
        return partition_hash(va >> grain_shift, field_bits, 1, 3)

    return hash_even, hash_skewed
