"""Bloom-filter-based synonym detection (paper Section III)."""

from repro.filters.bloom import BloomFilter
from repro.filters.hashing import make_hash_pair, partition_hash, xor_fold
from repro.filters.synonym_filter import SynonymFilter
from repro.filters.virt_filter import VirtualizedSynonymFilter

__all__ = [
    "BloomFilter",
    "make_hash_pair",
    "partition_hash",
    "xor_fold",
    "SynonymFilter",
    "VirtualizedSynonymFilter",
]
