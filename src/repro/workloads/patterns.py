"""Access-pattern primitives for synthetic workload generation.

Each primitive produces byte offsets into a region of a given length; a
workload mixes several primitives by weight (see ``spec.py``).  The
primitives cover the address-stream families the paper's workloads span:

* ``sequential``   — streaming with a fixed stride (stream, GemsFDTD);
* ``strided``      — large-stride sweeps that defeat spatial locality in
  the caches but keep page locality moderate (soplex, cactus);
* ``random``       — uniform random over the region (GUPS, canneal);
* ``zipf_pages``   — Zipf-distributed page popularity with uniform intra-
  page offsets (server workloads: memcached, xalancbmk, omnetpp);
* ``chase``        — dependent random jumps (mcf-style pointer chasing;
  the address statistics match ``random`` but the workload's MLP is 1).

All primitives confine themselves to the first ``touch_fraction`` of the
region, which is how eager-allocation under-utilization (Table III's
Usage column) is modeled.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.common.rng import zipf_sampler

OffsetGenerator = Callable[[], int]


def sequential_offsets(rng: random.Random, length: int, stride: int = 8,
                       touch_fraction: float = 1.0) -> OffsetGenerator:
    """Streaming sweep; wraps at the touched prefix.

    The default stride is one word (8 B) — eight consecutive accesses per
    cache line, as a real array sweep produces.
    """
    limit = max(stride, int(length * touch_fraction))
    state = {"cursor": rng.randrange(0, limit) // stride * stride}

    def nxt() -> int:
        offset = state["cursor"]
        state["cursor"] = (offset + stride) % limit
        return offset

    return nxt


def strided_offsets(rng: random.Random, length: int, stride: int = 4096 + 64,
                    touch_fraction: float = 1.0) -> OffsetGenerator:
    """Large-stride sweep (column-walk style)."""
    return sequential_offsets(rng, length, stride, touch_fraction)


def random_offsets(rng: random.Random, length: int,
                   touch_fraction: float = 1.0) -> OffsetGenerator:
    """Uniform random word-aligned offsets."""
    limit = max(64, int(length * touch_fraction))

    def nxt() -> int:
        return rng.randrange(0, limit) & ~0x7

    return nxt


def zipf_page_offsets(rng: random.Random, length: int, theta: float = 0.8,
                      page_size: int = 4096, line_theta: float = 1.2,
                      lines_per_page: int = 0,
                      touch_fraction: float = 1.0) -> OffsetGenerator:
    """Zipf page popularity with Zipf-skewed lines inside each page.

    Pages are visited through a fixed random permutation so the *popular*
    pages are scattered across the region (otherwise rank 0..k would be
    physically clustered, which overstates segment/TLB locality).

    Within a page, visits concentrate on a few hot lines (object headers,
    frequently-read fields) — ``line_theta`` controls the skew.  This
    intra-page reuse is what lets the LLC cover a page's traffic even
    when the page itself has fallen out of TLB reach, the regime behind
    the paper's "cached data needs no translation" results.
    """
    pages = max(1, int(length * touch_fraction) // page_size)
    sample = zipf_sampler(rng, pages, theta)
    total_lines = max(1, page_size // 64)
    # lines_per_page > 0 restricts each page to that many resident lines
    # (an object header / hot fields); 0 means Zipf over the whole page.
    line_pool = min(lines_per_page, total_lines) if lines_per_page else total_lines
    sample_line = zipf_sampler(rng, line_pool, line_theta)
    permutation = list(range(pages))
    rng.shuffle(permutation)

    def nxt() -> int:
        page = permutation[sample()]
        # Rotate the hot-line ranking per page so hot lines differ
        # between pages (no artificial set-conflict alignment).
        line = (sample_line() + page) % total_lines
        return (page * page_size + line * 64
                + (rng.randrange(0, 64) & ~0x7))

    return nxt


def chase_offsets(rng: random.Random, length: int,
                  touch_fraction: float = 1.0) -> OffsetGenerator:
    """Dependent random jumps (pointer chasing).

    Uses a multiplicative-congruential walk over the touched slots so the
    sequence is deterministic and aperiodic-ish without materializing a
    permutation for very large regions.
    """
    slots = max(1, int(length * touch_fraction) // 64)
    state = {"position": rng.randrange(0, slots)}
    multiplier = 6364136223846793005
    increment = rng.randrange(1, 2 ** 31) | 1

    def nxt() -> int:
        state["position"] = (state["position"] * multiplier + increment) % slots
        return state["position"] * 64

    return nxt


PATTERN_BUILDERS = {
    "sequential": sequential_offsets,
    "strided": strided_offsets,
    "random": random_offsets,
    "zipf": zipf_page_offsets,
    "chase": chase_offsets,
}


def build_pattern(kind: str, rng: random.Random, length: int,
                  touch_fraction: float = 1.0, **params) -> OffsetGenerator:
    """Instantiate a pattern primitive by name."""
    try:
        builder = PATTERN_BUILDERS[kind]
    except KeyError:
        raise ValueError(f"unknown pattern kind {kind!r}") from None
    return builder(rng, length, touch_fraction=touch_fraction, **params)
