"""Trace records and helpers.

A trace is a generator of :class:`TraceRecord` — one memory reference plus
the count of non-memory instructions preceding it (derived from the
workload's memory-op ratio).  Generators are lazy so multi-million-access
experiments never materialize a trace in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(slots=True)
class TraceRecord:
    """One memory reference in a trace."""

    asid: int
    core: int
    va: int
    is_write: bool
    gap: int  # non-memory instructions since the previous reference


def interleave_round_robin(traces: List[Iterable[TraceRecord]]) -> Iterator[TraceRecord]:
    """Merge per-core traces round-robin (the paper's quad-core mixes).

    Stops when the shortest trace is exhausted so every core contributes
    equally — matching the fixed-instruction-budget methodology.
    """
    iterators = [iter(t) for t in traces]
    while True:
        for it in iterators:
            record = next(it, None)
            if record is None:
                return
            yield record


def take(trace: Iterable[TraceRecord], n: int) -> Iterator[TraceRecord]:
    """Yield at most ``n`` records."""
    for i, record in enumerate(trace):
        if i >= n:
            return
        yield record
