"""Synthetic-but-calibrated workload generation."""

from repro.workloads.catalog import (
    CACHE_FRIENDLY,
    FIG4_WORKLOADS,
    MEMORY_INTENSIVE,
    SYNONYM_WORKLOADS,
    TABLE3_WORKLOADS,
    all_specs,
    names,
    spec,
)
from repro.workloads.analysis import TraceAnalyzer, TraceProfile, analyze, estimate_tlb_hit_rate
from repro.workloads.patterns import build_pattern
from repro.workloads.spec import (
    LaidOutWorkload,
    PatternMix,
    SharingSpec,
    WorkloadSpec,
)
from repro.workloads import tracefile
from repro.workloads.trace import TraceRecord, interleave_round_robin, take

__all__ = [
    "CACHE_FRIENDLY",
    "FIG4_WORKLOADS",
    "MEMORY_INTENSIVE",
    "SYNONYM_WORKLOADS",
    "TABLE3_WORKLOADS",
    "all_specs",
    "names",
    "spec",
    "build_pattern",
    "TraceAnalyzer",
    "TraceProfile",
    "analyze",
    "estimate_tlb_hit_rate",
    "LaidOutWorkload",
    "PatternMix",
    "SharingSpec",
    "WorkloadSpec",
    "tracefile",
    "TraceRecord",
    "interleave_round_robin",
    "take",
]
