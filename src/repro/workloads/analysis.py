"""Trace analysis: the address-stream statistics translation lives on.

A :class:`TraceAnalyzer` consumes trace records and computes the
quantities that predict every structure's behaviour in this system:

* **footprint** — distinct pages/blocks touched (compulsory misses,
  eager-allocation utilization);
* **page popularity CDF** — ``coverage(n)`` is the fraction of accesses
  the *n* most popular pages receive, which directly estimates the hit
  rate of an n-entry TLB with perfect replacement (the analytic twin of
  Figure 4);
* **reuse-time histogram** — accesses between consecutive touches of
  the same page (locality fingerprint; long tails defeat any TLB);
* **per-ASID breakdown** — sharing-aware accounting for
  multiprogrammed traces.

The analyzer is single-pass and O(1) per record, so it can ride along
any simulation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common.address import BLOCK_SIZE, PAGE_SIZE
from repro.workloads.trace import TraceRecord


@dataclass
class TraceProfile:
    """Summary produced by :meth:`TraceAnalyzer.profile`."""

    accesses: int
    write_fraction: float
    distinct_pages: int
    distinct_blocks: int
    page_coverage: List[Tuple[int, float]]  # (top-N pages, access share)
    reuse_time_histogram: Dict[str, int]    # log-binned gaps
    per_asid_accesses: Dict[int, int]

    def coverage(self, entries: int) -> float:
        """Access share captured by the ``entries`` hottest pages —
        an optimistic hit-rate bound for an ``entries``-entry TLB."""
        best = 0.0
        for top_n, share in self.page_coverage:
            if top_n <= entries:
                best = max(best, share)
        return best

    def footprint_bytes(self) -> int:
        return self.distinct_pages * PAGE_SIZE


class TraceAnalyzer:
    """Single-pass trace statistics collector."""

    #: Page-count points at which the popularity CDF is reported;
    #: chosen to bracket the TLB sizes the paper sweeps.
    COVERAGE_POINTS = (64, 256, 1024, 4096, 16384, 65536)

    def __init__(self) -> None:
        self._accesses = 0
        self._writes = 0
        self._page_counts: Counter = Counter()
        self._blocks: set = set()
        self._last_touch: Dict[int, int] = {}
        self._reuse_bins: Counter = Counter()
        self._per_asid: Counter = Counter()

    def feed(self, record: TraceRecord) -> None:
        """Account one trace record."""
        self._accesses += 1
        if record.is_write:
            self._writes += 1
        page_key = (record.asid, record.va // PAGE_SIZE)
        self._page_counts[page_key] += 1
        self._blocks.add((record.asid, record.va // BLOCK_SIZE))
        self._per_asid[record.asid] += 1
        last = self._last_touch.get(page_key)
        if last is not None:
            self._reuse_bins[self._bin(self._accesses - last)] += 1
        self._last_touch[page_key] = self._accesses

    def feed_all(self, trace: Iterable[TraceRecord]) -> "TraceAnalyzer":
        for record in trace:
            self.feed(record)
        return self

    @staticmethod
    def _bin(gap: int) -> str:
        if gap <= 0:
            return "0"
        exponent = gap.bit_length() - 1
        low = 1 << exponent
        return f"{low}-{2 * low - 1}"

    def profile(self) -> TraceProfile:
        """Finalize and return the summary."""
        ordered = self._page_counts.most_common()
        coverage: List[Tuple[int, float]] = []
        if self._accesses:
            running = 0
            next_points = iter(self.COVERAGE_POINTS)
            point = next(next_points, None)
            for i, (_page, count) in enumerate(ordered, start=1):
                running += count
                while point is not None and i == point:
                    coverage.append((point, running / self._accesses))
                    point = next(next_points, None)
            # Points beyond the footprint capture everything.
            while point is not None:
                coverage.append((point, 1.0 if ordered else 0.0))
                point = next(next_points, None)
        return TraceProfile(
            accesses=self._accesses,
            write_fraction=(self._writes / self._accesses
                            if self._accesses else 0.0),
            distinct_pages=len(self._page_counts),
            distinct_blocks=len(self._blocks),
            page_coverage=coverage,
            reuse_time_histogram=dict(self._reuse_bins),
            per_asid_accesses=dict(self._per_asid),
        )


def analyze(trace: Iterable[TraceRecord]) -> TraceProfile:
    """One-call trace profiling."""
    return TraceAnalyzer().feed_all(trace).profile()


def estimate_tlb_hit_rate(profile: TraceProfile, entries: int) -> float:
    """Optimistic TLB hit-rate estimate from the popularity CDF.

    A TLB with perfect (Belady-ish) retention of the hottest pages hits
    exactly the coverage of its capacity; real LRU does worse, so this
    bounds measured hit rates from above — a useful sanity check against
    simulated TLB results (asserted in the calibration tests).
    """
    return profile.coverage(entries)
