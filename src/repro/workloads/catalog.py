"""Calibrated workload catalog.

Each entry approximates one benchmark from the paper's evaluation
(SPEC CPU2006 subset, PARSEC ferret, server workloads, GUPS, NPB, tigr,
Graph500, memcached, stream, mummer) with a synthetic spec whose
*address-stream statistics* — working-set size, locality family, sharing
ratio, allocation profile — match the paper's published per-workload
numbers (Table I sharing ratios, Table III segment counts and usage,
Figure 4 TLB-reach behaviour).

Footprints are scaled with the rest of the machine (2 MB LLC as in
Table IV); what matters for every experiment is the ratio of working set
to TLB reach and LLC capacity, which the scaling preserves.  EXPERIMENTS.md
records where exact paper values were unrecoverable from the provided
text and how the reconstruction was chosen.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import PatternMix, SharingSpec, WorkloadSpec

MB = 1024 * 1024


def _mix(kind: str, weight: float, **params) -> PatternMix:
    return PatternMix(kind, weight, tuple(sorted(params.items())))


_SPECS: List[WorkloadSpec] = [
    # ------------------------------------------------------------------ #
    # Big-memory / TLB-hostile workloads (Figure 4's flat curves)
    # ------------------------------------------------------------------ #
    WorkloadSpec(
        name="gups",
        footprint_bytes=256 * MB,
        patterns=(_mix("random", 1.0),),
        mem_ratio=0.5, mlp=2.0, write_fraction=0.5,
        local_fraction=0.15, hot_fraction=0.0,
    ),
    WorkloadSpec(
        name="milc",
        footprint_bytes=192 * MB,
        patterns=(_mix("random", 0.8), _mix("sequential", 0.2)),
        mem_ratio=0.35, mlp=2.0, local_fraction=0.25, hot_fraction=0.3,
    ),
    WorkloadSpec(
        name="mcf",
        footprint_bytes=224 * MB,
        patterns=(_mix("chase", 0.7), _mix("zipf", 0.3, theta=0.6)),
        mem_ratio=0.35, mlp=1.0, local_fraction=0.25, hot_fraction=0.35,
        alloc_chunk_bytes=16 * MB, fragmented=True, touch_fraction=0.83,
    ),
    # ------------------------------------------------------------------ #
    # Locality-bearing SPEC workloads (Figure 4's falling curves)
    # ------------------------------------------------------------------ #
    WorkloadSpec(
        name="xalancbmk",
        footprint_bytes=48 * MB,
        patterns=(_mix("zipf", 0.8, theta=0.9), _mix("random", 0.2)),
        mem_ratio=0.3, mlp=1.5,
        alloc_chunk_bytes=512 * 1024, fragmented=True, touch_fraction=0.75,
    ),
    WorkloadSpec(
        name="tigr",
        footprint_bytes=64 * MB,
        patterns=(_mix("random", 0.5), _mix("strided", 0.5, stride=4160)),
        mem_ratio=0.4, mlp=1.2, hot_fraction=0.35,
        alloc_chunk_bytes=512 * 1024, fragmented=True, touch_fraction=0.70,
    ),
    WorkloadSpec(
        name="omnetpp",
        footprint_bytes=32 * MB,
        patterns=(_mix("zipf", 0.9, theta=0.8), _mix("sequential", 0.1)),
        mem_ratio=0.3, mlp=1.5, hot_fraction=0.7,
        alloc_chunk_bytes=4 * MB, fragmented=True,
    ),
    WorkloadSpec(
        name="soplex",
        footprint_bytes=32 * MB,
        # Column sweeps (large stride, wrapping within the run) plus a
        # skewed scan of the factorization working set.
        patterns=(_mix("strided", 0.75, stride=8256),
                  _mix("zipf", 0.25, theta=0.7)),
        mem_ratio=0.3, mlp=2.5, hot_fraction=0.5,
    ),
    WorkloadSpec(
        name="astar",
        footprint_bytes=16 * MB,
        patterns=(_mix("zipf", 0.7, theta=1.0), _mix("chase", 0.3)),
        mem_ratio=0.3, mlp=1.2, hot_fraction=0.7,
        alloc_chunk_bytes=2 * MB, fragmented=True,
    ),
    WorkloadSpec(
        name="cactus",
        footprint_bytes=24 * MB,
        patterns=(_mix("strided", 0.8, stride=16448), _mix("sequential", 0.2)),
        mem_ratio=0.3, mlp=2.5, hot_fraction=0.7,
    ),
    WorkloadSpec(
        name="gemsfdtd",
        footprint_bytes=48 * MB,
        patterns=(_mix("sequential", 0.6), _mix("strided", 0.4, stride=32832)),
        mem_ratio=0.35, mlp=3.0, hot_fraction=0.7,
    ),
    # ------------------------------------------------------------------ #
    # Other big-memory applications (Table III)
    # ------------------------------------------------------------------ #
    WorkloadSpec(
        name="canneal",
        footprint_bytes=64 * MB,
        patterns=(_mix("random", 0.9), _mix("zipf", 0.1, theta=0.5)),
        mem_ratio=0.3, mlp=1.5, hot_fraction=0.3,
        alloc_chunk_bytes=16 * MB, fragmented=True,
    ),
    WorkloadSpec(
        name="stream",
        footprint_bytes=64 * MB,
        patterns=(_mix("sequential", 1.0),),
        mem_ratio=0.4, mlp=4.0, local_fraction=0.25, hot_fraction=0.0,
    ),
    WorkloadSpec(
        name="mummer",
        footprint_bytes=48 * MB,
        patterns=(_mix("random", 0.6), _mix("zipf", 0.4, theta=0.6)),
        mem_ratio=0.35, mlp=1.3,
        alloc_chunk_bytes=4 * MB, fragmented=True,
    ),
    WorkloadSpec(
        name="memcached",
        footprint_bytes=128 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.7),),
        mem_ratio=0.3, mlp=1.5,
        # The paper notes memcached grows on demand in 64 MB requests;
        # scaled to our footprint that becomes many small, physically
        # scattered requests — the segment-count stressor of Table III.
        alloc_chunk_bytes=256 * 1024, fragmented=True, touch_fraction=0.45,
    ),
    WorkloadSpec(
        name="npb_cg",
        footprint_bytes=64 * MB,
        patterns=(_mix("random", 0.5), _mix("sequential", 0.5)),
        mem_ratio=0.35, mlp=2.0, hot_fraction=0.6,
    ),
    WorkloadSpec(
        name="graph500",
        footprint_bytes=96 * MB,
        patterns=(_mix("random", 0.7), _mix("zipf", 0.3, theta=0.6)),
        mem_ratio=0.35, mlp=2.0, hot_fraction=0.3,
        alloc_chunk_bytes=32 * MB, fragmented=True,
    ),
    # ------------------------------------------------------------------ #
    # Additional SPEC CPU2006 entries (the paper runs the full suite;
    # these round out the coverage beyond the headline subjects)
    # ------------------------------------------------------------------ #
    WorkloadSpec(
        name="bzip2",
        footprint_bytes=12 * MB,
        patterns=(_mix("sequential", 0.7), _mix("zipf", 0.3, theta=0.9)),
        mem_ratio=0.3, mlp=2.0, hot_fraction=0.7,
    ),
    WorkloadSpec(
        name="gcc",
        footprint_bytes=16 * MB,
        patterns=(_mix("zipf", 0.6, theta=0.9), _mix("chase", 0.2),
                  _mix("sequential", 0.2)),
        mem_ratio=0.3, mlp=1.5, hot_fraction=0.7,
        alloc_chunk_bytes=2 * MB, fragmented=True,
    ),
    WorkloadSpec(
        name="libquantum",
        footprint_bytes=24 * MB,
        patterns=(_mix("sequential", 0.9), _mix("strided", 0.1, stride=2112)),
        mem_ratio=0.35, mlp=4.0, hot_fraction=0.3,
    ),
    WorkloadSpec(
        name="lbm",
        footprint_bytes=48 * MB,
        patterns=(_mix("sequential", 0.5), _mix("strided", 0.5, stride=12352)),
        mem_ratio=0.4, mlp=3.5, hot_fraction=0.3,
    ),
    WorkloadSpec(
        name="sphinx3",
        footprint_bytes=16 * MB,
        patterns=(_mix("zipf", 0.7, theta=0.8), _mix("sequential", 0.3)),
        mem_ratio=0.3, mlp=2.0, hot_fraction=0.7,
    ),

    # ------------------------------------------------------------------ #
    # R/W-sharing (synonym) workloads — Table I / Table II
    # ------------------------------------------------------------------ #
    WorkloadSpec(
        name="ferret",
        footprint_bytes=8 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.3, lines_per_page=2),),
        mem_ratio=0.3, mlp=1.5, local_fraction=0.3, hot_fraction=0.3,
        sharing=SharingSpec(processes=4, area_fraction=0.02,
                            access_fraction=0.012),
    ),
    WorkloadSpec(
        name="postgres",
        footprint_bytes=8 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.3, lines_per_page=2),),
        mem_ratio=0.3, mlp=1.5, local_fraction=0.3, hot_fraction=0.3,
        # The shared buffer pool has hot pages: they fit the baseline's
        # 1088-entry reach but thrash the 64-entry synonym TLB — the
        # paper's explanation for postgres's miss *increase*.
        sharing=SharingSpec(processes=4, area_fraction=0.66,
                            access_fraction=0.16, theta=0.6),
    ),
    WorkloadSpec(
        name="specjbb",
        footprint_bytes=10 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.3, lines_per_page=2),),
        mem_ratio=0.3, mlp=1.5, local_fraction=0.3, hot_fraction=0.3,
        sharing=SharingSpec(processes=2, area_fraction=0.01,
                            access_fraction=0.005),
    ),
    WorkloadSpec(
        name="firefox",
        footprint_bytes=8 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.3, lines_per_page=2),),
        mem_ratio=0.3, mlp=1.5, local_fraction=0.3, hot_fraction=0.3,
        sharing=SharingSpec(processes=3, area_fraction=0.03,
                            access_fraction=0.01),
    ),
    WorkloadSpec(
        name="apache",
        footprint_bytes=8 * MB,
        patterns=(_mix("zipf", 1.0, theta=0.3, lines_per_page=2),),
        mem_ratio=0.3, mlp=1.5, local_fraction=0.3, hot_fraction=0.3,
        sharing=SharingSpec(processes=4, area_fraction=0.05,
                            access_fraction=0.02),
    ),
    # A SPEC-like no-sharing control (Table I's 0 % rows).
    WorkloadSpec(
        name="speccpu_private",
        footprint_bytes=24 * MB,
        patterns=(_mix("zipf", 0.7, theta=0.8), _mix("sequential", 0.3)),
        mem_ratio=0.3, mlp=2.0, hot_fraction=0.7,
    ),
]

_BY_NAME: Dict[str, WorkloadSpec] = {s.name: s for s in _SPECS}

#: Figure 4's delayed-TLB sweep subjects.
FIG4_WORKLOADS = ("gups", "milc", "mcf", "xalancbmk", "tigr", "omnetpp",
                  "soplex")
#: Table III's segment-count subjects.
TABLE3_WORKLOADS = ("astar", "mcf", "omnetpp", "cactus", "gemsfdtd",
                    "xalancbmk", "canneal", "stream", "mummer", "tigr",
                    "memcached", "npb_cg", "gups")
#: Table I / Table II synonym workloads.
SYNONYM_WORKLOADS = ("ferret", "postgres", "specjbb", "firefox", "apache")
#: Figure 9's memory-intensive group (left partition of the figure).
MEMORY_INTENSIVE = ("gups", "milc", "mcf", "xalancbmk", "tigr", "canneal",
                    "memcached", "graph500")
#: Figure 9's cache-friendly group (translation-insensitive partition).
CACHE_FRIENDLY = ("astar", "omnetpp", "soplex", "cactus", "gemsfdtd",
                  "stream", "npb_cg", "speccpu_private")


def spec(name: str) -> WorkloadSpec:
    """Look up one workload spec by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(_BY_NAME)}") from None


def all_specs() -> List[WorkloadSpec]:
    """Every catalog entry."""
    return list(_SPECS)


def names() -> List[str]:
    """Names of every catalog workload."""
    return [s.name for s in _SPECS]
