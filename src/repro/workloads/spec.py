"""Workload specifications and their instantiation on a simulated kernel.

A :class:`WorkloadSpec` is a declarative description — footprint, access
pattern mix, memory-op ratio, allocation profile, sharing behaviour —
calibrated per benchmark in ``catalog.py``.  Instantiating a spec against
a :class:`Kernel` performs the allocations (creating the segment/VMA
layout that Table III measures) and returns a :class:`LaidOutWorkload`
whose ``trace()`` lazily generates the reference stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.rng import make_rng
from repro.osmodel.address_space import Process, Vma
from repro.osmodel.kernel import Kernel
from repro.workloads.patterns import build_pattern
from repro.workloads.trace import TraceRecord


@dataclass(frozen=True)
class PatternMix:
    """One weighted pattern component."""

    kind: str
    weight: float
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class SharingSpec:
    """R/W shared-memory behaviour (Table I workloads)."""

    processes: int
    area_fraction: float    # shared bytes / (shared + private per process)
    access_fraction: float  # fraction of references hitting the shared region
    theta: float = 0.6      # Zipf skew of page popularity inside the region


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative workload description."""

    name: str
    footprint_bytes: int
    patterns: Tuple[PatternMix, ...]
    mem_ratio: float = 0.3        # memory references per instruction
    mlp: float = 1.5              # memory-level parallelism for timing
    write_fraction: float = 0.3
    alloc_chunk_bytes: Optional[int] = None  # None: one allocation request
    fragmented: bool = False      # break physical adjacency between chunks
    touch_fraction: float = 1.0   # used prefix of each region (Table III usage)
    policy: str = "eager"         # "eager" segments or "demand" paging
    sharing: Optional[SharingSpec] = None
    # Fraction of references hitting the process's small hot region
    # (stack/locals/loop state).  Real programs keep most accesses in a
    # few KB of hot data; without this the cache hierarchy would see an
    # implausible near-100 % miss stream and every result downstream of
    # cache behaviour (delayed-translation rate, energy) would be skewed.
    local_fraction: float = 0.35
    local_bytes: int = 64 * 1024
    # 80/20-style hot working set: this fraction of the remaining
    # references lands in a cache-sized hot window of the footprint.
    # Cold references roam the whole footprint and carry the TLB
    # pressure; hot ones give the realistic LLC hit rates that the
    # energy and delayed-translation-rate results depend on.  Uniformly
    # random workloads (GUPS) set this to 0.
    hot_fraction: float = 0.55
    hot_bytes: int = 256 * 1024

    @property
    def gap(self) -> int:
        """Non-memory instructions between references."""
        return max(0, round(1.0 / self.mem_ratio) - 1)

    def instructions_for(self, accesses: int) -> int:
        """Total instruction count a trace of ``accesses`` references models."""
        return accesses * (1 + self.gap)


class LaidOutWorkload:
    """A spec bound to processes and VMAs on a concrete kernel."""

    def __init__(self, spec: WorkloadSpec, kernel: Kernel, seed: int = 42,
                 core_base: int = 0, cores: Optional[List[int]] = None) -> None:
        self.spec = spec
        self.kernel = kernel
        self.seed = seed
        self.processes: List[Process] = []
        self.private_vmas: Dict[int, List[Vma]] = {}
        self.shared_vmas: Dict[int, Vma] = {}
        n_processes = spec.sharing.processes if spec.sharing else 1
        self.cores = cores if cores is not None else [
            (core_base + i) % max(1, kernel.config.cores) for i in range(n_processes)
        ]
        self._layout_rng = make_rng(seed, f"{spec.name}-layout")
        self._lay_out(n_processes)

    # ------------------------------------------------------------------ #
    # Memory layout
    # ------------------------------------------------------------------ #

    def _lay_out(self, n_processes: int) -> None:
        spec = self.spec
        shared_bytes = 0
        private_bytes = spec.footprint_bytes
        if spec.sharing:
            shared_bytes = int(spec.footprint_bytes * spec.sharing.area_fraction)
            private_bytes = spec.footprint_bytes - shared_bytes

        self.stack_vmas: Dict[int, Vma] = {}
        for i in range(n_processes):
            process = self.kernel.create_process(f"{spec.name}-{i}")
            self.processes.append(process)
            # Hot stack/locals region, demand-paged like a real stack.
            self.stack_vmas[process.asid] = self.kernel.mmap(
                process, spec.local_bytes, policy="demand")
            self.private_vmas[process.asid] = self._allocate_private(
                process, private_bytes)

        if spec.sharing and shared_bytes:
            vmas = self.kernel.mmap_shared(self.processes, shared_bytes)
            self.shared_vmas = vmas

    def _allocate_private(self, process: Process, total_bytes: int) -> List[Vma]:
        spec = self.spec
        chunk = spec.alloc_chunk_bytes or total_bytes
        vmas: List[Vma] = []
        allocated = 0
        while allocated < total_bytes:
            request = min(chunk, total_bytes - allocated)
            vmas.append(self.kernel.mmap(process, request, policy=spec.policy))
            allocated += request
            if spec.fragmented and allocated < total_bytes:
                # A competing allocation lands between our requests,
                # breaking physical adjacency (and thus segment merging).
                self.kernel.frames.alloc_frame()
        return vmas

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #

    def trace(self, accesses: int, seed: Optional[int] = None) -> Iterator[TraceRecord]:
        """Generate ``accesses`` references, round-robin across processes."""
        spec = self.spec
        rng = make_rng(seed if seed is not None else self.seed,
                       f"{spec.name}-access")
        generators = [self._process_generator(p, rng) for p in self.processes]
        gap = spec.gap
        n_processes = len(self.processes)
        for i in range(accesses):
            slot = i % n_processes
            process = self.processes[slot]
            va = generators[slot]()
            yield TraceRecord(
                asid=process.asid,
                core=self.cores[slot],
                va=va,
                is_write=rng.random() < spec.write_fraction,
                gap=gap,
            )

    def _process_generator(self, process: Process, rng: random.Random):
        spec = self.spec
        vmas = self.private_vmas[process.asid]
        spans: List[Tuple[int, Vma]] = []
        cursor = 0
        for vma in vmas:
            spans.append((cursor, vma))
            cursor += vma.length
        private_length = cursor

        weights = [mix.weight for mix in spec.patterns]
        pattern_fns = [
            build_pattern(mix.kind, make_rng(self.seed, f"{spec.name}-{process.asid}-{i}"),
                          private_length, touch_fraction=spec.touch_fraction,
                          **mix.param_dict())
            for i, mix in enumerate(spec.patterns)
        ]
        shared_vma = self.shared_vmas.get(process.asid)
        shared_fraction = spec.sharing.access_fraction if spec.sharing else 0.0
        shared_pattern = None
        if shared_vma is not None:
            shared_pattern = build_pattern(
                "zipf", make_rng(self.seed, f"{spec.name}-shared"),
                shared_vma.length, theta=spec.sharing.theta)
        stack_vma = self.stack_vmas[process.asid]
        stack_state = {"cursor": 0}
        hot_bytes = min(spec.hot_bytes,
                        max(4096, int(private_length * spec.touch_fraction)))
        hot_start = 0
        if private_length > hot_bytes:
            span = int(private_length * spec.touch_fraction) - hot_bytes
            if span > 0:
                # Derived from the workload seed (not the shared layout
                # RNG) so repeated trace() calls see the same hot window.
                hot_rng = make_rng(self.seed, f"{spec.name}-hot-{process.asid}")
                hot_start = (hot_rng.randrange(0, span) >> 12) << 12

        def next_stack_va() -> int:
            # Word-stride cycling through the hot region: high line reuse.
            offset = stack_state["cursor"]
            stack_state["cursor"] = (offset + 8) % stack_vma.length
            return stack_vma.vbase + offset

        def resolve_private(offset: int) -> int:
            # Binary search is overkill for the handful of VMAs most specs
            # have; linear scan from a cached hint would be noise here.
            for base, vma in reversed(spans):
                if offset >= base:
                    return vma.vbase + min(offset - base, vma.length - 8)
            return spans[0][1].vbase

        def next_va() -> int:
            if shared_pattern is not None and rng.random() < shared_fraction:
                return shared_vma.vbase + shared_pattern()
            if rng.random() < spec.local_fraction:
                return next_stack_va()
            if spec.hot_fraction and rng.random() < spec.hot_fraction:
                return resolve_private(hot_start
                                       + (rng.randrange(0, hot_bytes) & ~0x7))
            pattern = rng.choices(pattern_fns, weights=weights)[0]
            return resolve_private(pattern())

        return next_va

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #

    def live_segments(self) -> int:
        """Segments currently live for this workload's address spaces."""
        asids = {p.asid for p in self.processes}
        return sum(1 for s in self.kernel.segment_table.segments_sorted()
                   if s.asid in asids)

    def segment_utilization(self) -> float:
        """Touched / allocated over this workload's segments."""
        touched = 0
        allocated = 0
        asids = {p.asid for p in self.processes}
        for s in self.kernel.segment_table.segments_sorted():
            if s.asid in asids:
                touched += len(s.touched_pages) << 12
                allocated += s.length
        return touched / allocated if allocated else 1.0

    def shared_area_fraction(self) -> float:
        """Measured r/w-shared fraction of mapped memory (Table I check)."""
        shared = sum(v.length for v in self.shared_vmas.values())
        private = sum(v.length for vmas in self.private_vmas.values()
                      for v in vmas)
        total = shared + private
        return shared / total if total else 0.0
