"""Trace persistence: save and load reference streams.

The paper drives its synonym-filter study from Pin traces of real
binaries; this module is the interchange point for doing the same with
this simulator — record a generated trace once and replay it across
configurations, or import an externally captured trace.

Two formats:

* **binary** (``.trc``) — fixed 16-byte records
  (``<HBBIQ``: asid, core, flags, gap, va), with an 8-byte magic/version
  header.  Compact and fast; the default.
* **text** (``.csv``) — ``asid,core,va_hex,w|r,gap`` lines with a header
  comment; greppable and diffable.

Both loaders are streaming (constant memory) and validate headers and
record integrity, so a truncated or foreign file fails loudly instead of
yielding garbage addresses.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.workloads.trace import TraceRecord

MAGIC = b"RPTRC\x01\x00\x00"
_RECORD = struct.Struct("<HBBIQ")  # asid, core, flags, gap, va
_FLAG_WRITE = 0x1

PathLike = Union[str, Path]


class TraceFormatError(Exception):
    """The file is not a valid trace in the expected format."""


# ---------------------------------------------------------------------- #
# Binary format
# ---------------------------------------------------------------------- #

def save_binary(path: PathLike, trace: Iterable[TraceRecord]) -> int:
    """Write a trace to the binary format; returns records written."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        buffer = io.BytesIO()
        for record in trace:
            flags = _FLAG_WRITE if record.is_write else 0
            buffer.write(_RECORD.pack(record.asid, record.core, flags,
                                      record.gap, record.va))
            count += 1
            if buffer.tell() >= 1 << 20:
                handle.write(buffer.getvalue())
                buffer = io.BytesIO()
        handle.write(buffer.getvalue())
    return count


def load_binary(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a binary trace file."""
    with open(path, "rb") as handle:
        header = handle.read(len(MAGIC))
        if header != MAGIC:
            raise TraceFormatError(f"{path}: bad magic {header!r}")
        while True:
            chunk = handle.read(_RECORD.size)
            if not chunk:
                return
            if len(chunk) != _RECORD.size:
                raise TraceFormatError(f"{path}: truncated record")
            asid, core, flags, gap, va = _RECORD.unpack(chunk)
            yield TraceRecord(asid=asid, core=core, va=va,
                              is_write=bool(flags & _FLAG_WRITE), gap=gap)


# ---------------------------------------------------------------------- #
# Text format
# ---------------------------------------------------------------------- #

def save_text(path: PathLike, trace: Iterable[TraceRecord]) -> int:
    """Write a trace as ``asid,core,va_hex,w|r,gap`` lines."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# repro trace v1: asid,core,va,rw,gap\n")
        for record in trace:
            rw = "w" if record.is_write else "r"
            handle.write(f"{record.asid},{record.core},"
                         f"{record.va:#x},{rw},{record.gap}\n")
            count += 1
    return count


def load_text(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a text trace file."""
    with open(path) as handle:
        first = handle.readline()
        if not first.startswith("# repro trace v1"):
            raise TraceFormatError(f"{path}: missing text-trace header")
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) != 5 or parts[3] not in ("r", "w"):
                raise TraceFormatError(
                    f"{path}:{line_number}: malformed record {line!r}")
            try:
                yield TraceRecord(asid=int(parts[0]), core=int(parts[1]),
                                  va=int(parts[2], 16),
                                  is_write=parts[3] == "w",
                                  gap=int(parts[4]))
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_number}: {exc}") from exc


# ---------------------------------------------------------------------- #
# Format dispatch
# ---------------------------------------------------------------------- #

def save(path: PathLike, trace: Iterable[TraceRecord]) -> int:
    """Save, picking the format from the extension (.trc binary, else text)."""
    if str(path).endswith(".trc"):
        return save_binary(path, trace)
    return save_text(path, trace)


def load(path: PathLike) -> Iterator[TraceRecord]:
    """Load, sniffing the format from the file's first bytes."""
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head == MAGIC:
        return load_binary(path)
    return load_text(path)
