"""Generic configuration sweeps.

``with_overrides`` rebuilds a (frozen, nested) :class:`SystemConfig`
with dotted-path field overrides, and ``sweep_config`` runs one workload
across a sequence of values of any such field — the generalization of
the paper's Figure 4 (delayed-TLB entries) and Figure 7 (index-cache
size) sweeps to every parameter in the system.

Both sweeps are plan builders over the execution engine
(:mod:`repro.exec`): each point becomes a frozen ``Job``, identical
points dedupe, and the ``executor``/``cache``/``progress`` knobs allow
parallel execution and fingerprint-keyed result reuse (see
``docs/execution.md``).

Example::

    results = sweep_config("gups", "hybrid_segments",
                           "segments.segment_cache_entries",
                           [0, 32, 128, 512])
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.common.params import SystemConfig
from repro.exec.cache import ResultCache
from repro.exec.job import Job
from repro.exec.plan import ExperimentPlan, ProgressCallback
from repro.obs.heartbeat import BeatSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, TraceSpec
from repro.sim.results import SimulationResult
from repro.workloads.spec import WorkloadSpec


def with_overrides(config: SystemConfig,
                   overrides: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a frozen nested config with dotted-path overrides.

    Paths name dataclass fields, e.g. ``"llc.size_bytes"`` or
    ``"segments.index_cache_size"``.  Unknown paths raise ``AttributeError``
    so typos fail loudly.
    """
    result = config
    for path, value in overrides.items():
        parts = path.split(".")
        result = _replace_path(result, parts, value)
    return result


def _replace_path(obj: Any, parts: Sequence[str], value: Any) -> Any:
    field_name = parts[0]
    if not hasattr(obj, field_name):
        raise AttributeError(
            f"{type(obj).__name__} has no field {field_name!r}")
    if len(parts) == 1:
        return dataclasses.replace(obj, **{field_name: value})
    child = getattr(obj, field_name)
    return dataclasses.replace(
        obj, **{field_name: _replace_path(child, parts[1:], value)})


def sweep_config(workload: Union[str, WorkloadSpec], mmu_name: str,
                 field_path: str, values: Iterable[Any],
                 base_config: SystemConfig | None = None,
                 accesses: int = 30_000, warmup: int = 10_000,
                 seed: int = 42,
                 interval: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 trace_spec: Optional[TraceSpec] = None,
                 executor=None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 beat: Optional[BeatSpec] = None
                 ) -> Dict[Any, SimulationResult]:
    """Run ``workload`` under ``mmu_name`` for each value of one field."""
    base = base_config or SystemConfig()
    jobs = {value: Job(workload=workload, mmu=mmu_name,
                       config=with_overrides(base, {field_path: value}),
                       accesses=accesses, warmup=warmup, seed=seed,
                       interval=interval,
                       tags=((field_path, value),))
            for value in values}
    plan = ExperimentPlan(jobs.values())
    outcomes = plan.run(executor=executor, cache=cache, tracer=tracer,
                        progress=progress, trace_spec=trace_spec,
                        metrics=metrics, beat=beat)
    return {value: outcomes.result(job) for value, job in jobs.items()}


def sweep_grid(workload: Union[str, WorkloadSpec], mmu_name: str,
               grid: Mapping[str, Sequence[Any]],
               base_config: SystemConfig | None = None,
               accesses: int = 30_000, warmup: int = 10_000,
               seed: int = 42,
               interval: Optional[int] = None,
               tracer: Optional[Tracer] = None,
               trace_spec: Optional[TraceSpec] = None,
               executor=None,
               cache: Optional[ResultCache] = None,
               progress: Optional[ProgressCallback] = None,
               metrics: Optional[MetricsRegistry] = None,
               beat: Optional[BeatSpec] = None
               ) -> List[Dict[str, Any]]:
    """Cartesian-product sweep over several fields.

    Returns a list of ``{"params": {...}, "result": SimulationResult}``
    rows in grid order.
    """
    base = base_config or SystemConfig()
    fields = list(grid)
    points: List[tuple] = []
    plan = ExperimentPlan()
    for combo in itertools.product(*(grid[f] for f in fields)):
        params = dict(zip(fields, combo))
        job = Job(workload=workload, mmu=mmu_name,
                  config=with_overrides(base, params),
                  accesses=accesses, warmup=warmup, seed=seed,
                  interval=interval,
                  tags=tuple(params.items()))
        plan.add(job)
        points.append((params, job))
    outcomes = plan.run(executor=executor, cache=cache, tracer=tracer,
                        progress=progress, trace_spec=trace_spec,
                        metrics=metrics, beat=beat)
    return [{"params": params, "result": outcomes.result(job)}
            for params, job in points]
