"""Generic configuration sweeps.

``with_overrides`` rebuilds a (frozen, nested) :class:`SystemConfig`
with dotted-path field overrides, and ``sweep_config`` runs one workload
across a sequence of values of any such field — the generalization of
the paper's Figure 4 (delayed-TLB entries) and Figure 7 (index-cache
size) sweeps to every parameter in the system.

Example::

    results = sweep_config("gups", "hybrid_segments",
                           "segments.segment_cache_entries",
                           [0, 32, 128, 512])
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

from repro.common.params import SystemConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import run_workload
from repro.workloads.spec import WorkloadSpec


def with_overrides(config: SystemConfig,
                   overrides: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a frozen nested config with dotted-path overrides.

    Paths name dataclass fields, e.g. ``"llc.size_bytes"`` or
    ``"segments.index_cache_size"``.  Unknown paths raise ``AttributeError``
    so typos fail loudly.
    """
    result = config
    for path, value in overrides.items():
        parts = path.split(".")
        result = _replace_path(result, parts, value)
    return result


def _replace_path(obj: Any, parts: Sequence[str], value: Any) -> Any:
    field_name = parts[0]
    if not hasattr(obj, field_name):
        raise AttributeError(
            f"{type(obj).__name__} has no field {field_name!r}")
    if len(parts) == 1:
        return dataclasses.replace(obj, **{field_name: value})
    child = getattr(obj, field_name)
    return dataclasses.replace(
        obj, **{field_name: _replace_path(child, parts[1:], value)})


def sweep_config(workload: Union[str, WorkloadSpec], mmu_name: str,
                 field_path: str, values: Iterable[Any],
                 base_config: SystemConfig | None = None,
                 accesses: int = 30_000, warmup: int = 10_000,
                 seed: int = 42) -> Dict[Any, SimulationResult]:
    """Run ``workload`` under ``mmu_name`` for each value of one field."""
    base = base_config or SystemConfig()
    results: Dict[Any, SimulationResult] = {}
    for value in values:
        config = with_overrides(base, {field_path: value})
        results[value] = run_workload(workload, mmu_name, accesses=accesses,
                                      warmup=warmup, config=config, seed=seed)
    return results


def sweep_grid(workload: Union[str, WorkloadSpec], mmu_name: str,
               grid: Mapping[str, Sequence[Any]],
               base_config: SystemConfig | None = None,
               accesses: int = 30_000, warmup: int = 10_000,
               seed: int = 42) -> List[Dict[str, Any]]:
    """Cartesian-product sweep over several fields.

    Returns a list of ``{"params": {...}, "result": SimulationResult}``
    rows in grid order.
    """
    import itertools

    base = base_config or SystemConfig()
    fields = list(grid)
    rows: List[Dict[str, Any]] = []
    for combo in itertools.product(*(grid[f] for f in fields)):
        params = dict(zip(fields, combo))
        config = with_overrides(base, params)
        result = run_workload(workload, mmu_name, accesses=accesses,
                              warmup=warmup, config=config, seed=seed)
        rows.append({"params": params, "result": result})
    return rows
