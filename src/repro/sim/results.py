"""Result containers and cross-configuration comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.stats import derive_ratios, mpki
from repro.obs.manifest import RunManifest

#: Version tag of the ``to_json_dict`` document layout.  Bump only on
#: incompatible changes; additive keys keep the same version.
RESULT_SCHEMA = "repro.result/v1"


@dataclass
class SimulationResult:
    """Everything measured in one (workload, MMU) simulation."""

    workload: str
    mmu: str
    instructions: int
    accesses: int
    cycles: float
    ipc: float
    cycle_breakdown: Dict[str, float]
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    manifest: Optional[RunManifest] = None
    interval: Optional[int] = None                 # window size (accesses)
    intervals: List[Dict[str, object]] = field(default_factory=list)
    histograms: Dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    def group(self, name: str) -> Dict[str, int]:
        return self.stats.get(name, {})

    def llc_miss_rate(self) -> float:
        hierarchy = self.group("cache_hierarchy")
        accesses = hierarchy.get("accesses", 0)
        if not accesses:
            return 0.0
        return hierarchy.get("llc_misses", 0) / accesses

    def counter(self, group: str, name: str) -> int:
        return self.group(group).get(name, 0)

    def tlb_mpki(self, group: str = "delayed_tlb") -> float:
        return mpki(self.counter(group, "misses"), self.instructions)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Normalized performance — the paper's Figure 9 metric."""
        if baseline.ipc <= 0:
            return 0.0
        return self.ipc / baseline.ipc

    # ------------------------------------------------------------------ #
    # Observability views
    # ------------------------------------------------------------------ #

    def interval_series(self, group: str, counter: str) -> List[int]:
        """One counter's per-window deltas (empty without ``interval``)."""
        return [s["counters"].get(group, {}).get(counter, 0)
                for s in self.intervals]

    def to_json_dict(self) -> Dict[str, object]:
        """Schema-stable machine-readable document of this result.

        Layout (``schema`` = :data:`RESULT_SCHEMA`): identification,
        aggregate metrics, per-stage ``cycle_breakdown``, ``stats`` with
        derived hit-rate ratios, latency ``histograms``, the provenance
        ``manifest``, and the ``intervals`` time series.
        """
        return {
            "schema": RESULT_SCHEMA,
            "workload": self.workload,
            "mmu": self.mmu,
            "instructions": self.instructions,
            "accesses": self.accesses,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "llc_miss_rate": self.llc_miss_rate(),
            "cycle_breakdown": dict(self.cycle_breakdown),
            "stats": {name: derive_ratios(group)
                      for name, group in self.stats.items()},
            "histograms": dict(self.histograms),
            "manifest": self.manifest.to_dict() if self.manifest else None,
            "interval": self.interval,
            "intervals": list(self.intervals),
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_json_dict`: rebuild a result from its
        persisted document (the :class:`repro.exec.cache.ResultCache`
        entry format).

        Derived fields — ``llc_miss_rate`` and the float ``*hit_rate``
        ratios :func:`derive_ratios` adds to ``stats`` — are dropped on
        the way in, since they are recomputed on demand; unknown keys
        are ignored for forward compatibility.  Round trip invariant:
        ``from_json_dict(to_json_dict(r)).to_json_dict()
        == r.to_json_dict()``.
        """
        schema = doc.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"expected a {RESULT_SCHEMA} document, got {schema!r}")
        stats = {
            name: {key: value for key, value in group.items()
                   if not (key.endswith("hit_rate")
                           and isinstance(value, float))}
            for name, group in doc.get("stats", {}).items()}
        manifest_doc = doc.get("manifest")
        return cls(
            workload=doc["workload"],
            mmu=doc["mmu"],
            instructions=doc["instructions"],
            accesses=doc["accesses"],
            cycles=doc["cycles"],
            ipc=doc["ipc"],
            cycle_breakdown=dict(doc.get("cycle_breakdown", {})),
            stats=stats,
            manifest=(RunManifest.from_dict(manifest_doc)
                      if manifest_doc else None),
            interval=doc.get("interval"),
            intervals=list(doc.get("intervals", [])),
            histograms=dict(doc.get("histograms", {})),
        )


@dataclass
class ComparisonRow:
    """One workload's results across a set of configurations."""

    workload: str
    results: Dict[str, SimulationResult]

    def normalized(self, baseline_key: str = "baseline") -> Dict[str, float]:
        base = self.results[baseline_key]
        return {key: result.speedup_over(base)
                for key, result in self.results.items()}


def geometric_mean(values: List[float]) -> float:
    """Geomean of positive values (the paper's cross-workload summary)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
