"""Result containers and cross-configuration comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.stats import mpki


@dataclass
class SimulationResult:
    """Everything measured in one (workload, MMU) simulation."""

    workload: str
    mmu: str
    instructions: int
    accesses: int
    cycles: float
    ipc: float
    cycle_breakdown: Dict[str, float]
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    def group(self, name: str) -> Dict[str, int]:
        return self.stats.get(name, {})

    def llc_miss_rate(self) -> float:
        hierarchy = self.group("cache_hierarchy")
        accesses = hierarchy.get("accesses", 0)
        if not accesses:
            return 0.0
        return hierarchy.get("llc_misses", 0) / accesses

    def counter(self, group: str, name: str) -> int:
        return self.group(group).get(name, 0)

    def tlb_mpki(self, group: str = "delayed_tlb") -> float:
        return mpki(self.counter(group, "misses"), self.instructions)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Normalized performance — the paper's Figure 9 metric."""
        if baseline.ipc <= 0:
            return 0.0
        return self.ipc / baseline.ipc


@dataclass
class ComparisonRow:
    """One workload's results across a set of configurations."""

    workload: str
    results: Dict[str, SimulationResult]

    def normalized(self, baseline_key: str = "baseline") -> Dict[str, float]:
        base = self.results[baseline_key]
        return {key: result.speedup_over(base)
                for key, result in self.results.items()}


def geometric_mean(values: List[float]) -> float:
    """Geomean of positive values (the paper's cross-workload summary)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
