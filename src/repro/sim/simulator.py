"""Trace-driven simulation driver.

Wires a laid-out workload into an MMU front-end and a timing model:
each trace record becomes one ``mmu.access`` plus cycle accounting.  A
warm-up prefix exercises the structures without being timed (the paper
simulates 500 M–1 B instructions; our traces are shorter, so warm-up
matters proportionally more).

Observability (``repro.obs``) threads through here: an attached
:class:`~repro.obs.tracer.Tracer` records per-access pipeline events, an
``interval`` turns every stat counter into a windowed time series, and
each result carries a :class:`~repro.obs.manifest.RunManifest` plus the
latency histograms collected by the timing model and the MMU.  All of it
is inert by default — the disabled path adds two branch checks per
access.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from typing import Optional

from repro.core.mmu_base import MmuBase
from repro.obs.interval import IntervalRecorder
from repro.obs.manifest import RunManifest
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.results import SimulationResult
from repro.timing.model import TimingModel
from repro.workloads.spec import LaidOutWorkload


class Simulator:
    """Drives one workload through one MMU configuration."""

    def __init__(self, mmu: MmuBase, timing: Optional[TimingModel] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.mmu = mmu
        self.timing = timing
        self.tracer = tracer or NULL_TRACER

    def run(self, workload: LaidOutWorkload, accesses: int,
            warmup: int = 0, seed: Optional[int] = None,
            reset_stats_after_warmup: bool = False,
            interval: Optional[int] = None,
            tracer: Optional[Tracer] = None,
            pulse=None) -> SimulationResult:
        """Simulate ``accesses`` timed references after ``warmup`` untimed ones.

        With ``reset_stats_after_warmup`` the structure counters are
        zeroed once warm-up completes, so reported hit/miss statistics
        describe steady state only (the paper's methodology: counters
        over a detailed window after fast-forwarding).  Structure *state*
        (cache/TLB contents) is kept either way.

        ``interval`` (timed accesses per window) records delta snapshots
        of every counter, yielding ``ceil(accesses / interval)`` windows.
        ``tracer`` overrides the one given at construction; tracing never
        alters simulated behavior, only records it.

        ``pulse`` is the live-telemetry hook: a callable with an
        ``every`` attribute (e.g. :class:`~repro.obs.heartbeat.
        HeartbeatPulse`) invoked as ``pulse(done, total, instructions,
        cycles)`` every ``pulse.every`` timed accesses.  The disabled
        path costs one branch per timed access; pulses themselves are
        rare, so live progress never perturbs the simulation.
        """
        spec = workload.spec
        timing = self.timing or TimingModel(self.mmu.config.core, mlp=spec.mlp)
        trace = workload.trace(warmup + accesses, seed=seed)

        tracer = tracer if tracer is not None else self.tracer
        tracing = tracer.active
        if tracing:
            self.mmu.attach_tracer(tracer)
        recorder = (IntervalRecorder(self.mmu.stats, timing, interval)
                    if interval else None)
        pulse_every = getattr(pulse, "every", 0) if pulse is not None else 0
        pulsing = pulse_every > 0
        pulse_countdown = pulse_every
        started_at = datetime.now(timezone.utc).isoformat()
        t0 = time.perf_counter()

        for i, record in enumerate(trace):
            if i == warmup and reset_stats_after_warmup:
                self.mmu.stats.reset()
            if tracing:
                tracer.begin_access(record.core, record.asid, record.va,
                                    record.is_write)
            outcome = self.mmu.access(record.core, record.asid, record.va,
                                      record.is_write)
            if tracing:
                tracer.end_access(outcome, timed=i >= warmup)
            if i >= warmup:
                timing.record(outcome, instructions_between=1 + record.gap)
                if recorder is not None:
                    recorder.tick()
                if pulsing:
                    pulse_countdown -= 1
                    if pulse_countdown == 0:
                        pulse_countdown = pulse_every
                        pulse(i - warmup + 1, accesses,
                              timing.acct.instructions, timing.total_cycles())

        if recorder is not None:
            recorder.finish()
        if tracing:
            self.mmu.attach_tracer(NULL_TRACER)

        manifest = RunManifest.collect(
            workload=spec.name, mmu=self.mmu.name, config=self.mmu.config,
            seed=seed, accesses=accesses, warmup=warmup,
            started_at=started_at, duration_s=time.perf_counter() - t0)
        histograms = dict(timing.histogram_snapshots())
        histograms.update(self.mmu.histogram_snapshots())

        return SimulationResult(
            workload=spec.name,
            mmu=self.mmu.name,
            instructions=timing.acct.instructions,
            accesses=timing.acct.memory_accesses,
            cycles=timing.total_cycles(),
            ipc=timing.ipc(),
            cycle_breakdown=timing.breakdown(),
            stats=self.mmu.snapshot(),
            manifest=manifest,
            interval=interval,
            intervals=list(recorder.snapshots) if recorder is not None else [],
            histograms=histograms,
        )
