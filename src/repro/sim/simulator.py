"""Trace-driven simulation driver.

Wires a laid-out workload into an MMU front-end and a timing model:
each trace record becomes one ``mmu.access`` plus cycle accounting.  A
warm-up prefix exercises the structures without being timed (the paper
simulates 500 M–1 B instructions; our traces are shorter, so warm-up
matters proportionally more).
"""

from __future__ import annotations

from typing import Optional

from repro.core.mmu_base import MmuBase
from repro.sim.results import SimulationResult
from repro.timing.model import TimingModel
from repro.workloads.spec import LaidOutWorkload


class Simulator:
    """Drives one workload through one MMU configuration."""

    def __init__(self, mmu: MmuBase, timing: Optional[TimingModel] = None) -> None:
        self.mmu = mmu
        self.timing = timing

    def run(self, workload: LaidOutWorkload, accesses: int,
            warmup: int = 0, seed: Optional[int] = None,
            reset_stats_after_warmup: bool = False) -> SimulationResult:
        """Simulate ``accesses`` timed references after ``warmup`` untimed ones.

        With ``reset_stats_after_warmup`` the structure counters are
        zeroed once warm-up completes, so reported hit/miss statistics
        describe steady state only (the paper's methodology: counters
        over a detailed window after fast-forwarding).  Structure *state*
        (cache/TLB contents) is kept either way.
        """
        spec = workload.spec
        timing = self.timing or TimingModel(self.mmu.config.core, mlp=spec.mlp)
        trace = workload.trace(warmup + accesses, seed=seed)

        for i, record in enumerate(trace):
            if i == warmup and reset_stats_after_warmup:
                self.mmu.stats.reset()
            outcome = self.mmu.access(record.core, record.asid, record.va,
                                      record.is_write)
            if i >= warmup:
                timing.record(outcome, instructions_between=1 + record.gap)

        return SimulationResult(
            workload=spec.name,
            mmu=self.mmu.name,
            instructions=timing.acct.instructions,
            accesses=timing.acct.memory_accesses,
            cycles=timing.total_cycles(),
            ipc=timing.ipc(),
            cycle_breakdown=timing.breakdown(),
            stats=self.mmu.snapshot(),
        )
