"""Plain-text rendering of experiment results.

Everything here emits ASCII — suitable for terminals, logs, and pasting
into issues — and operates on plain dicts/sequences so benchmarks, the
CLI, and user scripts can share one presentation layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def spark_line(values: Sequence[float]) -> str:
    """Unicode spark bar of a value series, min-to-max scaled.

    Degenerate histories stay sensible instead of collapsing to the
    bottom glyph: an empty series renders as an empty string, and a
    single point (or an all-equal series) renders as mid-height blocks —
    a flat trend, not a minimum.  Shared by ``repro db trend`` and the
    bench gate's history column.
    """
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[len(_SPARK_BLOCKS) // 2] * len(values)
    return "".join(
        _SPARK_BLOCKS[int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))]
        for v in values)


def horizontal_bars(values: Mapping[str, float], width: int = 40,
                    reference: float | None = None,
                    fmt: str = "{:6.3f}") -> str:
    """Render labeled horizontal bars scaled to the maximum value.

    ``reference`` draws a marker column at that value (e.g. the baseline
    at 1.0 in a normalized-performance chart).

    Negative values render an empty (zero-length) bar annotated with
    ``<0`` rather than a nonsense negative-width bar.
    """
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        filled = max(0, int(round(width * value / peak)))
        bar = "#" * filled
        if reference is not None and 0 < reference <= peak:
            marker = int(round(width * reference / peak))
            if marker >= len(bar):
                bar = bar.ljust(marker) + "|"
            else:
                bar = bar[:marker] + "|" + bar[marker + 1:]
        suffix = "  <0" if value < 0 else ""
        lines.append(f"{label:<{label_width}}  {fmt.format(value)}  {bar}{suffix}")
    return "\n".join(lines)


def series_table(series: Mapping[str, Sequence[float]],
                 columns: Sequence[str], fmt: str = "{:8.2f}",
                 first_header: str = "series") -> str:
    """Render named series against shared column labels (sweep output)."""
    label_width = max([len(first_header)] + [len(k) for k in series])
    header = f"{first_header:<{label_width}}" + "".join(
        str(c).rjust(max(8, len(fmt.format(0)))) for c in columns)
    lines = [header]
    for label, row in series.items():
        lines.append(f"{label:<{label_width}}"
                     + "".join(fmt.format(v) for v in row))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([head, rule] + body)


def breakdown_chart(breakdown: Mapping[str, float], width: int = 50) -> str:
    """One stacked bar of cycle/energy components with a legend."""
    total = sum(breakdown.values())
    if total <= 0:
        return "(empty breakdown)"
    glyphs = "#=+:.%@*"
    segments = []
    legend = []
    for i, (name, value) in enumerate(breakdown.items()):
        glyph = glyphs[i % len(glyphs)]
        span = int(round(width * value / total))
        segments.append(glyph * span)
        legend.append(f"  {glyph} {name}: {100 * value / total:.1f}%")
    return "[" + "".join(segments).ljust(width)[:width] + "]\n" + "\n".join(legend)


def histogram_chart(snapshot: Mapping[str, object], width: int = 40) -> str:
    """Render a :meth:`repro.obs.histogram.Histogram.snapshot` as bars.

    One line per non-empty log2 bucket: ``[lo, hi]  count  bar``, scaled
    to the fullest bucket, with a count/mean/p99 summary line on top.
    """
    buckets = snapshot.get("buckets") or []
    count = snapshot.get("count", 0)
    if not buckets or not count:
        return "(empty histogram)"
    summary = (f"n={count}  mean={snapshot.get('mean', 0.0):.1f}  "
               f"p50<={snapshot.get('p50', 0)}  p99<={snapshot.get('p99', 0)}")
    peak = max(b["count"] for b in buckets)
    label_width = max(len(f"[{b['lo']}, {b['hi']}]") for b in buckets)
    lines = [summary]
    for b in buckets:
        label = f"[{b['lo']}, {b['hi']}]"
        bar = "#" * max(1, int(round(width * b["count"] / peak)))
        share = 100.0 * b["count"] / count
        lines.append(f"{label:>{label_width}}  {b['count']:>8} {share:5.1f}%  {bar}")
    return "\n".join(lines)


def cycle_attribution(breakdown: Mapping[str, float]) -> str:
    """Per-stage cycle table: stage, cycles, share of total."""
    total = sum(breakdown.values())
    rows = []
    for stage, cycles in breakdown.items():
        share = 100.0 * cycles / total if total > 0 else 0.0
        rows.append([stage, f"{cycles:.0f}", f"{share:5.1f}%"])
    rows.append(["total", f"{total:.0f}", "100.0%" if total > 0 else "  0.0%"])
    from repro.common.stats import format_table

    return format_table({"stage": "stage", "cycles": "cycles",
                         "share": "share"}, rows)


def normalized_comparison(rows: Mapping[str, Mapping[str, float]],
                          baseline_key: str = "baseline") -> str:
    """Render per-workload normalized results plus a geomean row.

    An empty mapping — or rows that name no configuration at all —
    renders the ``(no data)`` placeholder rather than a degenerate
    header-only table.
    """
    from repro.sim.results import geometric_mean

    configs: List[str] = []
    for row in rows.values():
        for key in row:
            if key not in configs:
                configs.append(key)
    if not rows or not configs:
        return "(no data)"
    table: Dict[str, List[float]] = {
        name: [row.get(c, 0.0) for c in configs] for name, row in rows.items()
    }
    table["geomean"] = [
        geometric_mean([rows[n].get(c, 0.0) for n in rows]) for c in configs
    ]
    return series_table(table, configs, fmt="{:16.3f}", first_header="workload")
