"""Plain-text rendering of experiment results.

Everything here emits ASCII — suitable for terminals, logs, and pasting
into issues — and operates on plain dicts/sequences so benchmarks, the
CLI, and user scripts can share one presentation layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def horizontal_bars(values: Mapping[str, float], width: int = 40,
                    reference: float | None = None,
                    fmt: str = "{:6.3f}") -> str:
    """Render labeled horizontal bars scaled to the maximum value.

    ``reference`` draws a marker column at that value (e.g. the baseline
    at 1.0 in a normalized-performance chart).
    """
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        filled = int(round(width * value / peak))
        bar = "#" * filled
        if reference is not None and 0 < reference <= peak:
            marker = int(round(width * reference / peak))
            if marker >= len(bar):
                bar = bar.ljust(marker) + "|"
            else:
                bar = bar[:marker] + "|" + bar[marker + 1:]
        lines.append(f"{label:<{label_width}}  {fmt.format(value)}  {bar}")
    return "\n".join(lines)


def series_table(series: Mapping[str, Sequence[float]],
                 columns: Sequence[str], fmt: str = "{:8.2f}",
                 first_header: str = "series") -> str:
    """Render named series against shared column labels (sweep output)."""
    label_width = max([len(first_header)] + [len(k) for k in series])
    header = f"{first_header:<{label_width}}" + "".join(
        str(c).rjust(max(8, len(fmt.format(0)))) for c in columns)
    lines = [header]
    for label, row in series.items():
        lines.append(f"{label:<{label_width}}"
                     + "".join(fmt.format(v) for v in row))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str],
                   rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join([head, rule] + body)


def breakdown_chart(breakdown: Mapping[str, float], width: int = 50) -> str:
    """One stacked bar of cycle/energy components with a legend."""
    total = sum(breakdown.values())
    if total <= 0:
        return "(empty breakdown)"
    glyphs = "#=+:.%@*"
    segments = []
    legend = []
    for i, (name, value) in enumerate(breakdown.items()):
        glyph = glyphs[i % len(glyphs)]
        span = int(round(width * value / total))
        segments.append(glyph * span)
        legend.append(f"  {glyph} {name}: {100 * value / total:.1f}%")
    return "[" + "".join(segments).ljust(width)[:width] + "]\n" + "\n".join(legend)


def normalized_comparison(rows: Mapping[str, Mapping[str, float]],
                          baseline_key: str = "baseline") -> str:
    """Render per-workload normalized results plus a geomean row."""
    from repro.sim.results import geometric_mean

    configs: List[str] = []
    for row in rows.values():
        for key in row:
            if key not in configs:
                configs.append(key)
    table: Dict[str, List[float]] = {
        name: [row.get(c, 0.0) for c in configs] for name, row in rows.items()
    }
    table["geomean"] = [
        geometric_mean([rows[n].get(c, 0.0) for n in rows]) for c in configs
    ]
    return series_table(table, configs, fmt="{:16.3f}", first_header="workload")
