"""Trace-driven simulation drivers and experiment helpers."""

from repro.sim.results import ComparisonRow, SimulationResult, geometric_mean
from repro.sim.runner import (
    MMU_CONFIGS,
    PRIOR_CONFIGS,
    build_mmu,
    compare_configs,
    lay_out,
    run_workload,
    sweep_delayed_tlb,
)
from repro.sim.scheduler import ScheduledResult, ScheduledSimulator, SwitchCosts
from repro.sim.simulator import Simulator
from repro.sim.sweep import sweep_config, sweep_grid, with_overrides

__all__ = [
    "ComparisonRow",
    "SimulationResult",
    "geometric_mean",
    "MMU_CONFIGS",
    "PRIOR_CONFIGS",
    "build_mmu",
    "compare_configs",
    "lay_out",
    "run_workload",
    "sweep_delayed_tlb",
    "Simulator",
    "ScheduledResult",
    "ScheduledSimulator",
    "SwitchCosts",
    "sweep_config",
    "sweep_grid",
    "with_overrides",
]
