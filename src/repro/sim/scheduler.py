"""Time-sliced multiprogramming with context-switch cost modeling.

The paper's synonym filters are OS state: "for each context switch, the
hardware registers for the starting addresses of the Bloom filters must
be set by the OS ... Setting the filter registers will invoke the core
to read the two Bloom filters from the memory and store them in the
on-chip filter storage" (Section III-B).  This module models exactly
that: several processes time-share fewer cores; every switch charges the
fixed OS path plus, on hybrid systems, the filter-load cost (two 1K-bit
reads from memory); TLB and cache state survives switches because every
structure is ASID-tagged (the 16-bit ASID exists precisely so context
switches need no flushes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.stats import StatGroup
from repro.core.hybrid import HybridMmu
from repro.core.mmu_base import MmuBase
from repro.sim.results import SimulationResult
from repro.timing.model import TimingModel
from repro.workloads.spec import LaidOutWorkload


@dataclass(frozen=True)
class SwitchCosts:
    """Cycle costs of one context switch."""

    os_overhead: int = 1200        # save/restore, scheduler, kernel entry
    filter_load: int = 250         # two 1K-bit Bloom filters from memory
    page_table_pointer: int = 50   # CR3-equivalent write


@dataclass
class ScheduledResult:
    """Outcome of one multiprogrammed run."""

    per_workload: Dict[str, SimulationResult]
    context_switches: int
    switch_cycles: float
    total_cycles: float

    def aggregate_ipc(self) -> float:
        instructions = sum(r.instructions for r in self.per_workload.values())
        if self.total_cycles <= 0:
            return 0.0
        return instructions / self.total_cycles


class ScheduledSimulator:
    """Round-robin scheduler driving several workloads through one MMU.

    All workloads must be laid out on the MMU's kernel.  Each scheduling
    quantum runs one workload's next trace slice on its assigned core;
    at quantum boundaries the core's context switches to the next
    runnable workload, charging :class:`SwitchCosts` (plus the filter
    load only for hybrid MMUs, which are the ones with per-process
    on-chip filter state).
    """

    def __init__(self, mmu: MmuBase, workloads: List[LaidOutWorkload],
                 quantum: int = 2000,
                 costs: Optional[SwitchCosts] = None) -> None:
        if not workloads:
            raise ValueError("at least one workload required")
        self.mmu = mmu
        self.workloads = workloads
        self.quantum = quantum
        self.costs = costs or SwitchCosts()
        self.stats = StatGroup("scheduler")

    def _switch_cost(self) -> int:
        cost = self.costs.os_overhead + self.costs.page_table_pointer
        if isinstance(self.mmu, HybridMmu):
            cost += self.costs.filter_load
        return cost

    def run(self, accesses_per_workload: int) -> ScheduledResult:
        """Run every workload for the given reference count, time-sliced."""
        cores = self.mmu.config.cores
        timings: Dict[str, TimingModel] = {}
        traces = []
        for workload in self.workloads:
            timings[workload.spec.name] = TimingModel(self.mmu.config.core,
                                                      mlp=workload.spec.mlp)
            traces.append(iter(workload.trace(accesses_per_workload)))
        remaining = [accesses_per_workload] * len(self.workloads)

        switch_cycles = 0.0
        switches = 0
        # Which workload each core last ran, to detect real switches.
        core_occupant: Dict[int, int] = {}
        slot = 0
        while any(remaining):
            index = slot % len(self.workloads)
            slot += 1
            if not remaining[index]:
                continue
            core = index % cores
            if core_occupant.get(core) != index:
                if core in core_occupant:
                    switches += 1
                    cost = self._switch_cost()
                    switch_cycles += cost
                    self.stats.add("context_switches")
                    self.stats.add("switch_cycles", cost)
                    self._load_filter_state(index)
                core_occupant[core] = index
            workload = self.workloads[index]
            timing = timings[workload.spec.name]
            budget = min(self.quantum, remaining[index])
            ran = 0
            for record in traces[index]:
                outcome = self.mmu.access(core, record.asid, record.va,
                                          record.is_write)
                timing.record(outcome, instructions_between=1 + record.gap)
                ran += 1
                if ran >= budget:
                    break
            remaining[index] -= ran
            if ran < budget:
                remaining[index] = 0

        per_workload = {}
        total = switch_cycles
        for workload in self.workloads:
            timing = timings[workload.spec.name]
            total += timing.total_cycles()
            per_workload[workload.spec.name] = SimulationResult(
                workload=workload.spec.name,
                mmu=self.mmu.name,
                instructions=timing.acct.instructions,
                accesses=timing.acct.memory_accesses,
                cycles=timing.total_cycles(),
                ipc=timing.ipc(),
                cycle_breakdown=timing.breakdown(),
                stats={},
            )
        return ScheduledResult(per_workload, switches, switch_cycles, total)

    def _load_filter_state(self, index: int) -> None:
        """Model the on-chip filter load at a hybrid context switch."""
        if not isinstance(self.mmu, HybridMmu):
            return
        for process in self.workloads[index].processes:
            # Round-trip through the raw-bit interface: this is the
            # memory image the OS hands the core's filter storage.
            fine, coarse = process.synonym_filter.state_bits()
            process.synonym_filter.load_state_bits(fine, coarse)
