"""One-call experiment helpers used by examples, tests and benchmarks.

``run_workload`` builds a fresh kernel, lays out the named workload,
constructs the requested MMU configuration, and simulates — so every
(workload, configuration) data point is independent and reproducible.

All of these helpers are thin *plan builders* over the execution engine
(:mod:`repro.exec`): they collect frozen :class:`~repro.exec.job.Job`
descriptions into an :class:`~repro.exec.plan.ExperimentPlan` and run
it through an executor.  Every helper therefore accepts the engine's
knobs — ``executor`` (e.g. ``ParallelExecutor(workers=4)`` to fan the
independent points across processes), ``cache`` (a ``ResultCache`` so
reruns only simulate changed points) and ``progress`` (a callback fed
as points finish).  Defaults — serial, uncached — behave exactly like
the historical hand-rolled loops.

MMU configuration names:

* ``baseline``             — conventional physically addressed system;
* ``ideal``                — no-TLB-miss upper bound;
* ``hybrid_tlb``           — hybrid virtual caching + delayed TLB;
* ``hybrid_segments``      — hybrid + many-segment translation (with SC);
* ``hybrid_segments_nosc`` — many-segment without the segment cache.

Prior schemes (see ``repro.core.prior`` / ``repro.core.thp``):

* ``direct_segment`` — one range + paging (Basu et al., ISCA'13);
* ``rmm``            — 32 core-side ranges (Karakostas et al., ISCA'15);
* ``enigma``         — intermediate addresses + delayed page TLB;
* ``baseline_thp``   — conventional MMU with transparent 2 MB pages
  (runs on a THP kernel with 2 MB-aligned eager allocations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.common.params import SystemConfig
from repro.exec.cache import ResultCache
from repro.exec.job import Job
from repro.exec.plan import ExperimentPlan, ProgressCallback
from repro.obs.heartbeat import BeatSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, TraceSpec
from repro.core.conventional import ConventionalMmu
from repro.core.hybrid import HybridMmu
from repro.core.ideal import IdealMmu
from repro.core.prior import DirectSegmentMmu, EnigmaMmu, RmmMmu
from repro.core.thp import ThpBaselineMmu
from repro.core.mmu_base import MmuBase
from repro.osmodel.kernel import Kernel
from repro.sim.results import ComparisonRow, SimulationResult
from repro.workloads import catalog
from repro.workloads.spec import LaidOutWorkload, WorkloadSpec

MMU_CONFIGS = ("baseline", "ideal", "hybrid_tlb", "hybrid_segments",
               "hybrid_segments_nosc")

#: Prior translation schemes (paper Sections II / IV-A.2), constructible
#: through :func:`build_mmu` but not part of the default comparison set.
PRIOR_CONFIGS = ("direct_segment", "rmm", "enigma", "baseline_thp")


def build_mmu(name: str, kernel: Kernel,
              config: Optional[SystemConfig] = None) -> MmuBase:
    """Construct one MMU configuration by name."""
    if name == "baseline":
        return ConventionalMmu(kernel, config)
    if name == "ideal":
        return IdealMmu(kernel, config)
    if name == "hybrid_tlb":
        return HybridMmu(kernel, config, delayed="tlb")
    if name == "hybrid_segments":
        return HybridMmu(kernel, config, delayed="segments")
    if name == "hybrid_segments_nosc":
        return HybridMmu(kernel, config, delayed="segments",
                         use_segment_cache=False)
    if name == "direct_segment":
        return DirectSegmentMmu(kernel, config)
    if name == "rmm":
        return RmmMmu(kernel, config)
    if name == "enigma":
        return EnigmaMmu(kernel, config)
    if name == "baseline_thp":
        return ThpBaselineMmu(kernel, config)
    raise ValueError(f"unknown MMU configuration {name!r}; "
                     f"known: {MMU_CONFIGS + PRIOR_CONFIGS}")


def lay_out(spec: Union[str, WorkloadSpec], kernel: Kernel,
            seed: int = 42) -> LaidOutWorkload:
    """Instantiate a workload (by name or spec) on a kernel."""
    if isinstance(spec, str):
        spec = catalog.spec(spec)
    return LaidOutWorkload(spec, kernel, seed=seed)


def run_workload(workload: Union[str, WorkloadSpec], mmu_name: str,
                 accesses: int = 100_000, warmup: int = 20_000,
                 config: Optional[SystemConfig] = None,
                 seed: int = 42,
                 interval: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 trace_spec: Optional[TraceSpec] = None,
                 executor=None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressCallback] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 beat: Optional[BeatSpec] = None
                 ) -> SimulationResult:
    """Simulate one (workload, MMU) point on a fresh system.

    ``baseline_thp`` runs on a transparent-huge-page kernel (2 MB-aligned
    eager allocations); every other configuration uses the standard one.
    ``interval`` and ``tracer`` enable windowed stat series and pipeline
    event tracing (see :mod:`repro.obs`); both default to off.
    """
    job = Job(workload=workload, mmu=mmu_name, config=config,
              accesses=accesses, warmup=warmup, seed=seed, interval=interval)
    results = ExperimentPlan([job]).run(executor=executor, cache=cache,
                                        tracer=tracer, progress=progress,
                                        trace_spec=trace_spec,
                                        metrics=metrics, beat=beat)
    return results.result(job)


def compare_configs(workload: Union[str, WorkloadSpec],
                    mmu_names: Iterable[str] = MMU_CONFIGS,
                    accesses: int = 100_000, warmup: int = 20_000,
                    config: Optional[SystemConfig] = None,
                    seed: int = 42,
                    interval: Optional[int] = None,
                    tracer: Optional[Tracer] = None,
                    trace_spec: Optional[TraceSpec] = None,
                    executor=None,
                    cache: Optional[ResultCache] = None,
                    progress: Optional[ProgressCallback] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    beat: Optional[BeatSpec] = None
                    ) -> ComparisonRow:
    """Run one workload under several MMU configurations.

    A shared ``tracer`` records every configuration's events into one
    stream; the engine brackets each run with a ``run_start`` mark so
    the stream stays attributable.
    """
    if isinstance(workload, str):
        name = workload
    else:
        name = workload.name
    jobs = {mmu_name: Job(workload=workload, mmu=mmu_name, config=config,
                          accesses=accesses, warmup=warmup, seed=seed,
                          interval=interval)
            for mmu_name in mmu_names}
    plan = ExperimentPlan(jobs.values())
    outcomes = plan.run(executor=executor, cache=cache, tracer=tracer,
                        progress=progress, trace_spec=trace_spec,
                        metrics=metrics, beat=beat)
    results: Dict[str, SimulationResult] = {
        mmu_name: outcomes.result(job) for mmu_name, job in jobs.items()}
    return ComparisonRow(name, results)


def sweep_delayed_tlb(workload: Union[str, WorkloadSpec],
                      entry_counts: Iterable[int],
                      accesses: int = 100_000, warmup: int = 20_000,
                      seed: int = 42,
                      interval: Optional[int] = None,
                      tracer: Optional[Tracer] = None,
                      trace_spec: Optional[TraceSpec] = None,
                      executor=None,
                      cache: Optional[ResultCache] = None,
                      progress: Optional[ProgressCallback] = None,
                      metrics: Optional[MetricsRegistry] = None,
                      beat: Optional[BeatSpec] = None
                      ) -> List[SimulationResult]:
    """Figure 4 helper: hybrid+delayed-TLB across TLB sizes."""
    jobs = [Job(workload=workload, mmu="hybrid_tlb",
                config=SystemConfig().with_delayed_tlb_entries(entries),
                accesses=accesses, warmup=warmup, seed=seed,
                interval=interval,
                tags=(("delayed_tlb_entries", entries),))
            for entries in entry_counts]
    plan = ExperimentPlan(jobs)
    outcomes = plan.run(executor=executor, cache=cache, tracer=tracer,
                        progress=progress, trace_spec=trace_spec,
                        metrics=metrics, beat=beat)
    return [outcomes.result(job) for job in jobs]
