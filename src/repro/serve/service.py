"""The simulation service core: coalescing, batching, admission control.

:class:`JobService` is the long-lived, multi-client layer over the
execution engine.  Clients submit frozen :class:`~repro.exec.job.Job`
descriptions (the ``repro.job/v1`` wire format); the service

* **coalesces** duplicate in-flight submissions — any number of clients
  asking for the same :meth:`Job.fingerprint` share one execution;
* serves **cache hits** straight from the on-disk
  :class:`~repro.exec.cache.ResultCache` without touching an executor;
* applies **admission control** — a bounded queue whose overflow raises
  :class:`QueueFullError` (HTTP 429 + ``Retry-After`` upstairs) instead
  of accepting unbounded backlog;
* **batches**: one dispatcher thread drains up to ``batch_max`` queued
  jobs at a time and hands the batch to the configured executor — a
  :class:`~repro.exec.executors.ParallelExecutor` fans it across a
  process pool, amortising pool startup over the batch;
* enforces a per-job ``job_timeout`` through the engine's
  :class:`~repro.exec.job.CancelPulse` cancellation hook;
* **drains gracefully**: :meth:`begin_drain` rejects new work while
  :meth:`drain` waits for everything queued or running to finish — the
  ``repro serve`` CLI wires this to SIGTERM.

Everything observable lands in a :class:`~repro.obs.metrics.
MetricsRegistry` under ``repro_serve_*`` (queue depth, in-flight,
coalesced, cache hits, a job-latency histogram), scrapeable at
``/metrics``.  See ``docs/serving.md`` for the full architecture.
"""

from __future__ import annotations

import dataclasses
import queue as queue_mod
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.exec.cache import encode_document, result_document
from repro.exec.executors import SerialExecutor
from repro.exec.job import Job, JobError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.exec.cache import ResultCache

#: Schema tags of the service's own (non-result) documents.
STATUS_SCHEMA = "repro.serve.status/v1"
ERROR_SCHEMA = "repro.serve.error/v1"
HEALTH_SCHEMA = "repro.serve.health/v1"
JOBS_SCHEMA = "repro.serve.jobs/v1"

#: Submission dispositions (the ``repro_serve_submissions_total`` label).
DISPOSITIONS = ("accepted", "coalesced", "cached", "replayed", "rejected")


class QueueFullError(RuntimeError):
    """Admission control tripped: the bounded queue is full.

    Carries the ``Retry-After`` hint the HTTP layer returns with 429.
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__("job queue is full")
        self.retry_after = retry_after


class ServiceDrainingError(RuntimeError):
    """The service is draining (SIGTERM received): no new submissions."""


class JobRecord:
    """One fingerprint's lifecycle inside the service.

    ``status`` walks ``queued → running → done | error``; cache hits are
    born ``done``.  ``body`` is the exact bytes every poller of this
    fingerprint receives — computed once, so coalesced clients get
    byte-identical responses.
    """

    __slots__ = ("job", "fingerprint", "status", "disposition", "doc",
                 "body", "coalesced", "submitted_at", "started_at",
                 "finished_at", "done")

    def __init__(self, job: Job, fingerprint: str, status: str,
                 disposition: str) -> None:
        self.job = job
        self.fingerprint = fingerprint
        self.status = status
        self.disposition = disposition      # "ran" | "cached"
        self.doc: Optional[Dict[str, Any]] = None
        self.body: Optional[bytes] = None
        self.coalesced = 0
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = threading.Event()

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "error")

    def status_doc(self, disposition: Optional[str] = None) -> Dict[str, Any]:
        """The ``repro.serve.status/v1`` view of this record."""
        doc: Dict[str, Any] = {
            "schema": STATUS_SCHEMA,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "workload": self.job.workload_name,
            "mmu": self.job.mmu,
            "coalesced": self.coalesced,
            "location": f"/jobs/{self.fingerprint}",
        }
        if disposition is not None:
            doc["disposition"] = disposition
        return doc


class JobService:
    """Coalescing, caching, admission-controlled job execution.

    Thread-safe: submissions arrive from the HTTP layer's per-request
    threads while the dispatcher thread runs batches.  One lock (via a
    condition variable) guards the record table and the counters; job
    execution itself happens outside the lock.
    """

    def __init__(self, cache: "Optional[ResultCache]" = None,
                 executor: Any = None, max_queue: int = 16,
                 batch_max: int = 8, job_timeout: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None,
                 retry_after_s: float = 1.0, poll_s: float = 0.05,
                 start: bool = True) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.cache = cache
        self.executor = executor if executor is not None else SerialExecutor()
        self.max_queue = max_queue
        self.batch_max = batch_max
        self.job_timeout = job_timeout
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retry_after_s = retry_after_s
        self._poll_s = poll_s
        self._cond = threading.Condition()
        self._records: Dict[str, JobRecord] = {}
        self._queue: "queue_mod.Queue[JobRecord]" = queue_mod.Queue(
            maxsize=max_queue)
        self._draining = False
        self._stop = threading.Event()
        self._in_flight = 0
        self._dispatcher: Optional[threading.Thread] = None

        reg = self.registry
        self._m_submissions = reg.counter(
            "repro_serve_submissions_total",
            "job submissions by disposition")
        self._m_jobs = reg.counter(
            "repro_serve_jobs_total", "executed jobs by final status")
        self._m_coalesced = reg.counter(
            "repro_serve_coalesced_total",
            "submissions that joined an in-flight execution")
        self._m_cache_hits = reg.counter(
            "repro_serve_cache_hits_total",
            "submissions answered from the on-disk result cache")
        self._m_batches = reg.counter(
            "repro_serve_batches_total", "executor batches dispatched")
        self._m_queue_depth = reg.gauge(
            "repro_serve_queue_depth", "jobs waiting in the bounded queue")
        self._m_in_flight = reg.gauge(
            "repro_serve_in_flight", "jobs currently executing")
        self._m_job_ms = reg.histogram(
            "repro_serve_job_ms", "job execution wall time (milliseconds)")
        self._m_queue_depth.set(0)
        self._m_in_flight.set(0)
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "JobService":
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch",
                daemon=True)
            self._dispatcher.start()
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting work; already-accepted jobs keep running."""
        with self._cond:
            self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until nothing is queued or running; then park the
        dispatcher.  Returns ``False`` if ``timeout`` expired with work
        still in flight (the CLI reports but still exits)."""
        self.begin_drain()
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._cond:
            while any(not record.terminal
                      for record in self._records.values()):
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(min(0.2, remaining)
                                if remaining is not None else 0.2)
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
            self._dispatcher = None
        return True

    def close(self) -> None:
        """Hard stop: reject new work, park the dispatcher, fail any
        still-queued record so pollers never hang on its event."""
        self.begin_drain()
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
            self._dispatcher = None
        with self._cond:
            for record in self._records.values():
                if record.status == "queued":
                    self._fail_record(record, "ServiceStopped",
                                      "service shut down before execution")
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Submission path
    # ------------------------------------------------------------------ #

    @staticmethod
    def validate(job: Job) -> None:
        """Reject unknown workload/MMU names before queuing (the HTTP
        layer maps the ``ValueError`` to a 400)."""
        from repro.sim.runner import MMU_CONFIGS, PRIOR_CONFIGS
        from repro.workloads import names

        known = MMU_CONFIGS + PRIOR_CONFIGS
        if job.mmu not in known:
            raise ValueError(f"unknown mmu {job.mmu!r}; known: "
                             f"{', '.join(known)}")
        if isinstance(job.workload, str) and job.workload not in names():
            raise ValueError(f"unknown workload {job.workload!r}; known: "
                             f"{', '.join(names())}")

    def submit(self, job: Job) -> Tuple[JobRecord, str]:
        """Admit one job; returns ``(record, disposition)``.

        Dispositions: ``accepted`` (queued for execution),
        ``coalesced`` (joined an in-flight duplicate), ``cached``
        (answered from the on-disk cache), ``replayed`` (answered from
        this process's already-terminal record).  Raises
        :class:`QueueFullError` on admission-control rejection,
        :class:`ServiceDrainingError` during drain, ``ValueError`` for
        unknown workload/MMU names.
        """
        fingerprint = job.fingerprint()
        with self._cond:
            record = self._records.get(fingerprint)
            if record is not None:
                if not record.terminal:
                    record.coalesced += 1
                    self._m_coalesced.inc()
                    self._m_submissions.inc(disposition="coalesced")
                    return record, "coalesced"
                self._m_submissions.inc(disposition="replayed")
                return record, "replayed"
            if self._draining:
                raise ServiceDrainingError("service is draining")
            self.validate(job)
            if self.cache is not None:
                hit = self.cache.load(job)
                if hit is not None:
                    record = JobRecord(job, fingerprint, "done", "cached")
                    record.doc = result_document(job, hit)
                    record.body = encode_document(record.doc).encode("utf-8")
                    record.finished_at = record.submitted_at
                    record.done.set()
                    self._records[fingerprint] = record
                    self._m_cache_hits.inc()
                    self._m_submissions.inc(disposition="cached")
                    return record, "cached"
            record = JobRecord(job, fingerprint, "queued", "ran")
            try:
                self._queue.put_nowait(record)
            except queue_mod.Full:
                self._m_submissions.inc(disposition="rejected")
                raise QueueFullError(retry_after=self.retry_after_s) from None
            self._records[fingerprint] = record
            self._m_submissions.inc(disposition="accepted")
            self._m_queue_depth.set(self._queue.qsize())
            return record, "accepted"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def record(self, fingerprint: str) -> Optional[JobRecord]:
        with self._cond:
            return self._records.get(fingerprint)

    def records(self) -> List[JobRecord]:
        with self._cond:
            return list(self._records.values())

    def counts(self) -> Dict[str, int]:
        """Record counts by status (the ``/healthz`` payload)."""
        out = {"queued": 0, "running": 0, "done": 0, "error": 0}
        with self._cond:
            for record in self._records.values():
                out[record.status] += 1
        return out

    def health_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": HEALTH_SCHEMA,
            "status": "draining" if self._draining else "ok",
            "queue_capacity": self.max_queue,
            "batch_max": self.batch_max,
            "in_flight": self._in_flight,
        }
        doc.update(self.counts())
        return doc

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                record = self._queue.get(timeout=self._poll_s)
            except queue_mod.Empty:
                continue
            batch = [record]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except queue_mod.Empty:
                    break
            self._run_batch(batch)

    def _run_batch(self, batch: List[JobRecord]) -> None:
        now = time.time()
        with self._cond:
            for record in batch:
                record.status = "running"
                record.started_at = now
            self._in_flight = len(batch)
            self._m_in_flight.set(len(batch))
            self._m_queue_depth.set(self._queue.qsize())
        self._m_batches.inc()
        try:
            self.executor.run([record.job for record in batch],
                              on_done=self._job_done,
                              timeout=self.job_timeout)
        except Exception as exc:            # executor itself died
            with self._cond:
                for record in batch:
                    if not record.terminal:
                        self._fail_record(record, type(exc).__name__,
                                          str(exc))
                self._cond.notify_all()
        finally:
            with self._cond:
                self._in_flight = 0
                self._m_in_flight.set(0)

    def _fail_record(self, record: JobRecord, error_type: str,
                     message: str) -> None:
        """Terminal error transition; caller holds the lock."""
        record.status = "error"
        record.finished_at = time.time()
        record.doc = {
            "schema": ERROR_SCHEMA,
            "fingerprint": record.fingerprint,
            "status": "error",
            "error": {"error_type": error_type, "message": message},
        }
        record.body = (encode_document(record.doc)).encode("utf-8")
        record.done.set()

    def _job_done(self, job: Job, outcome: Any) -> None:
        """Executor completion callback (runs on the dispatcher thread,
        or the pool's completion path under a parallel executor)."""
        fingerprint = job.fingerprint()
        finished = time.time()
        if isinstance(outcome, JobError):
            doc: Dict[str, Any] = {
                "schema": ERROR_SCHEMA,
                "fingerprint": fingerprint,
                "status": "error",
                "error": dataclasses.asdict(outcome),
            }
            status = "error"
        else:
            if self.cache is not None:
                try:
                    self.cache.store(job, outcome)
                except OSError:
                    pass                     # cache is best-effort
            doc = result_document(job, outcome)
            status = "done"
        body = encode_document(doc).encode("utf-8")
        with self._cond:
            record = self._records.get(fingerprint)
            if record is None:               # cannot happen; stay safe
                return
            record.status = status
            record.doc = doc
            record.body = body
            record.finished_at = finished
            if record.started_at is not None:
                self._m_job_ms.observe(
                    int((finished - record.started_at) * 1000))
            self._m_jobs.inc(status=status)
            self._cond.notify_all()
        record.done.set()
