"""HTTP front end for :class:`~repro.serve.service.JobService`.

Stdlib only (``http.server.ThreadingHTTPServer``), same discipline as
:class:`~repro.obs.metrics.MetricsServer`.  Routes:

* ``POST /jobs``          — submit a ``repro.job/v1`` document.
  202 + ``repro.serve.status/v1`` while queued/running, 200 when the
  answer already exists (cache hit / replay), 400 on a malformed or
  unknown-name job, 429 + ``Retry-After`` when admission control
  rejects, 503 + ``Retry-After`` while draining, 413 on an oversized
  body.
* ``GET /jobs``           — ``repro.serve.jobs/v1`` status summary.
* ``GET /jobs/<fp>``      — 200 + the ``repro.result/v1`` body once
  done (byte-identical for every poller of one fingerprint), 202 +
  status while pending, 500 + ``repro.serve.error/v1`` for a failed
  job, 404 for an unknown fingerprint.
* ``GET /healthz``        — 200 ``ok`` / 503 ``draining``.
* ``GET /metrics``        — Prometheus text of the service registry
  (``/metrics.json`` for the nested snapshot).

Every response increments ``repro_serve_http_requests_total{method,
code}``.
"""

from __future__ import annotations

import http.server
import json
import threading
from typing import Any, Dict, Optional

from repro.exec.job import Job
from repro.obs.metrics import render_prometheus
from repro.serve.service import (JOBS_SCHEMA, JobService, QueueFullError,
                                 ServiceDrainingError)

#: Submission bodies larger than this are rejected with 413.
MAX_BODY_BYTES = 1 << 20


def _make_handler(service: JobService) -> type:
    requests_total = service.registry.counter(
        "repro_serve_http_requests_total", "HTTP requests by method/code")

    class Handler(http.server.BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -------------------------------------------------------------- #
        # Plumbing
        # -------------------------------------------------------------- #

        def _respond(self, code: int, body: bytes,
                     ctype: str = "application/json",
                     retry_after: Optional[float] = None) -> None:
            requests_total.inc(method=self.command, code=str(code))
            self.send_response(code)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After",
                                 str(max(1, round(retry_after))))
            self.end_headers()
            self.wfile.write(body)

        def _respond_json(self, code: int, doc: Dict[str, Any],
                          retry_after: Optional[float] = None) -> None:
            self._respond(code, (json.dumps(doc, indent=2) + "\n")
                          .encode("utf-8"), retry_after=retry_after)

        def _error(self, code: int, message: str) -> None:
            self._respond_json(code, {"error": message})

        def log_message(self, fmt: str, *args: Any) -> None:
            return None          # request logs must not pollute stderr

        # -------------------------------------------------------------- #
        # Routes
        # -------------------------------------------------------------- #

        def do_GET(self) -> None:
            path = self.path.split("?")[0].rstrip("/") or "/"
            if path == "/healthz":
                doc = service.health_doc()
                self._respond_json(503 if doc["status"] == "draining"
                                   else 200, doc)
            elif path == "/metrics":
                self._respond(200,
                              render_prometheus(service.registry)
                              .encode("utf-8"),
                              ctype="text/plain; version=0.0.4; "
                                    "charset=utf-8")
            elif path == "/metrics.json":
                self._respond_json(200, service.registry.snapshot())
            elif path == "/jobs":
                self._respond_json(200, {
                    "schema": JOBS_SCHEMA,
                    "jobs": [record.status_doc()
                             for record in service.records()]})
            elif path.startswith("/jobs/"):
                self._get_job(path[len("/jobs/"):])
            else:
                self._error(404, "try /jobs, /healthz or /metrics")

        def _get_job(self, fingerprint: str) -> None:
            record = service.record(fingerprint)
            if record is None:
                self._error(404, f"unknown job {fingerprint!r}")
            elif record.status == "done":
                self._respond(200, record.body)
            elif record.status == "error":
                self._respond(500, record.body)
            else:
                self._respond_json(202, record.status_doc())

        def do_POST(self) -> None:
            path = self.path.split("?")[0].rstrip("/")
            if path != "/jobs":
                self._error(404, "POST /jobs")
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._error(400, "bad Content-Length")
                return
            if length > MAX_BODY_BYTES:
                # Drain (bounded) what the client already wrote so it can
                # read the 413 instead of hitting a connection reset,
                # then drop the connection — the stream past the drain
                # cap is unparseable.
                self.close_connection = True
                remaining = min(length, 8 * MAX_BODY_BYTES)
                while remaining > 0:
                    chunk = self.rfile.read(min(65536, remaining))
                    if not chunk:
                        break
                    remaining -= len(chunk)
                self._error(413, f"body over {MAX_BODY_BYTES} bytes")
                return
            try:
                doc = json.loads(self.rfile.read(length))
                job = Job.from_json_dict(doc)
            except (ValueError, KeyError, TypeError) as exc:
                self._error(400, f"bad repro.job/v1 document: {exc}")
                return
            try:
                record, disposition = service.submit(job)
            except QueueFullError as exc:
                self._respond_json(429, {"error": str(exc)},
                                   retry_after=exc.retry_after)
                return
            except ServiceDrainingError as exc:
                self._respond_json(503, {"error": str(exc)},
                                   retry_after=service.retry_after_s)
                return
            except ValueError as exc:
                self._error(400, str(exc))
                return
            self._respond_json(200 if record.terminal else 202,
                               record.status_doc(disposition=disposition))

    return Handler


class ServeServer:
    """The service's HTTP listener on a background thread.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`); request handling is one thread per connection
    (``ThreadingHTTPServer``), which is what lets N clients coalesce on
    one in-flight job.
    """

    #: Socket listen backlog.  The socketserver default (5) resets
    #: connections under a thundering herd of coalescing clients; the
    #: whole point of the service is surviving exactly that.
    request_queue_size = 128

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service

        class _Server(http.server.ThreadingHTTPServer):
            daemon_threads = True
            request_queue_size = self.request_queue_size

        self._server = _Server((host, port), _make_handler(service))
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
