"""Simulation-as-a-service: the long-lived, multi-client layer.

``repro serve`` turns the job engine into an HTTP service: clients
POST ``repro.job/v1`` documents, duplicate in-flight submissions
coalesce onto one execution by :meth:`~repro.exec.job.Job.fingerprint`,
cache hits answer straight from the on-disk
:class:`~repro.exec.cache.ResultCache`, and misses run in batches on
the configured executor behind a bounded queue with admission control
(429 + ``Retry-After``).  SIGTERM drains in-flight work before exit.

* :class:`JobService` — the core (coalescing, batching, drain);
* :class:`ServeServer` — the stdlib HTTP front end
  (``/jobs``, ``/healthz``, ``/metrics``).

See ``docs/serving.md``.
"""

from repro.serve.http import MAX_BODY_BYTES, ServeServer
from repro.serve.service import (DISPOSITIONS, ERROR_SCHEMA, HEALTH_SCHEMA,
                                 JOBS_SCHEMA, STATUS_SCHEMA, JobRecord,
                                 JobService, QueueFullError,
                                 ServiceDrainingError)

__all__ = [
    "JobService",
    "JobRecord",
    "ServeServer",
    "QueueFullError",
    "ServiceDrainingError",
    "STATUS_SCHEMA",
    "ERROR_SCHEMA",
    "HEALTH_SCHEMA",
    "JOBS_SCHEMA",
    "DISPOSITIONS",
    "MAX_BODY_BYTES",
]
