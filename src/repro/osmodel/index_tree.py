"""OS-maintained B-tree index over the segment table (Section IV-C).

The index tree maps an incoming ``ASID+VA`` to the segment-ID of the
covering segment.  Nodes are 64-byte cache blocks holding up to six keys
and seven values (child pointers in internal nodes, segment-IDs in
leaves), laid out at real physical addresses so the hardware walker's node
reads can hit or miss the **index cache** like any other physical access.

Keys are packed ``(asid << 48) | vbase``.  Lookup descends by
``rightmost child whose separator <= query`` and finishes in a leaf with
the rightmost key ≤ query — the candidate segment whose base precedes the
address.  Containment (``va < base + limit``) is checked by the caller
against the segment table, as in the hardware flow of Figure 5.

The tree is bulk-loaded from the sorted segment list.  Real B-trees run
partially full (classic random-insert fill is ~ln 2 ≈ 69 %); we bulk-load
at 4 of 6 keys per leaf, which reproduces the paper's footprint behaviour
(a 2048-segment tree overflows a 32 KB index cache at ~41 KB while a
1024-segment tree fits at ~21 KB — Figure 7(b)).  At this fill a
2048-segment tree is depth 5 rather than the paper's near-full-node
depth 4; the walker charges actual node reads, so the full-walk latency
comes out at ~22 cycles instead of the paper's 19–20.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.address import PAGE_SHIFT, VA_BITS, align_up
from repro.osmodel.frames import FrameAllocator
from repro.osmodel.segments import OsSegmentTable, Segment

NODE_BYTES = 64
MAX_KEYS = 6
MAX_CHILDREN = 7


def pack_key(asid: int, va: int) -> int:
    """Pack (ASID, VA) into the tree's comparison key."""
    return (asid << VA_BITS) | (va & ((1 << VA_BITS) - 1))


@dataclass(slots=True)
class TreeNode:
    """One 64 B node: sorted keys plus children (internal) or values (leaf)."""

    pa: int
    keys: List[int]
    children: Optional[List["TreeNode"]]  # None for leaves
    values: Optional[List[int]]           # seg-IDs, leaves only

    @property
    def is_leaf(self) -> bool:
        return self.children is None


@dataclass(slots=True)
class IndexLookup:
    """Result of a tree traversal."""

    seg_id: Optional[int]      # None: address precedes every segment
    node_addresses: List[int]  # physical addresses read, root → leaf
    depth: int


class IndexTree:
    """Bulk-loaded B+-tree over segments with physically placed nodes."""

    def __init__(self, frames: FrameAllocator, leaf_fill: int = 4,
                 internal_fill: int = 5) -> None:
        if not 1 <= leaf_fill <= MAX_KEYS:
            raise ValueError(f"leaf_fill must be in [1, {MAX_KEYS}]")
        if not 2 <= internal_fill <= MAX_CHILDREN:
            raise ValueError(f"internal_fill must be in [2, {MAX_CHILDREN}]")
        self._frames = frames
        self.leaf_fill = leaf_fill
        self.internal_fill = internal_fill
        self.root: Optional[TreeNode] = None
        self.depth = 0
        self.node_count = 0
        self._extent: Optional[Tuple[int, int]] = None  # (start_frame, frames)
        self._built_generation = -1

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def build(self, table: OsSegmentTable) -> None:
        """(Re)construct the tree from the segment table's current contents."""
        segments = table.segments_sorted()
        self._release_extent()
        if not segments:
            self.root = None
            self.depth = 0
            self.node_count = 0
            self._built_generation = table.generation
            return

        leaves = self._build_leaves(segments)
        levels: List[List[TreeNode]] = [leaves]
        while len(levels[-1]) > 1:
            levels.append(self._build_internal(levels[-1]))
        nodes = [node for level in levels for node in level]
        self._place_nodes(nodes)
        self.root = levels[-1][0]
        self.depth = len(levels)
        self.node_count = len(nodes)
        self._built_generation = table.generation

    def ensure_current(self, table: OsSegmentTable) -> bool:
        """Rebuild if the segment table changed; True when a rebuild ran."""
        if self._built_generation != table.generation:
            self.build(table)
            return True
        return False

    def _build_leaves(self, segments: Sequence[Segment]) -> List[TreeNode]:
        leaves: List[TreeNode] = []
        for i in range(0, len(segments), self.leaf_fill):
            batch = segments[i:i + self.leaf_fill]
            leaves.append(TreeNode(
                pa=0,
                keys=[pack_key(s.asid, s.vbase) for s in batch],
                children=None,
                values=[s.seg_id for s in batch],
            ))
        return leaves

    def _build_internal(self, children: List[TreeNode]) -> List[TreeNode]:
        parents: List[TreeNode] = []
        for i in range(0, len(children), self.internal_fill):
            group = children[i:i + self.internal_fill]
            # Separators: the smallest key reachable under each non-first child.
            seps = [self._leftmost_key(child) for child in group[1:]]
            parents.append(TreeNode(pa=0, keys=seps, children=group, values=None))
        return parents

    @staticmethod
    def _leftmost_key(node: TreeNode) -> int:
        while node.children is not None:
            node = node.children[0]
        return node.keys[0]

    def _place_nodes(self, nodes: List[TreeNode]) -> None:
        """Assign each node a physical address inside a fresh extent."""
        total_bytes = align_up(len(nodes) * NODE_BYTES, 1 << PAGE_SHIFT)
        frames = total_bytes >> PAGE_SHIFT
        start_frame = self._frames.alloc_contiguous(frames)
        self._extent = (start_frame, frames)
        base_pa = start_frame << PAGE_SHIFT
        for i, node in enumerate(nodes):
            node.pa = base_pa + i * NODE_BYTES

    def _release_extent(self) -> None:
        if self._extent is not None:
            start, count = self._extent
            self._frames.free(start, count)
            self._extent = None

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, asid: int, va: int) -> IndexLookup:
        """Traverse root→leaf; returns the candidate seg-ID and node reads."""
        if self.root is None:
            return IndexLookup(None, [], 0)
        query = pack_key(asid, va)
        node = self.root
        path = [node.pa]
        while not node.is_leaf:
            assert node.children is not None
            child_index = bisect_right(node.keys, query)
            node = node.children[child_index]
            path.append(node.pa)
        assert node.values is not None
        key_index = bisect_right(node.keys, query) - 1
        if key_index < 0:
            # The address precedes this leaf's keys; with bulk-loaded
            # separators this only happens left of the whole key space.
            return IndexLookup(None, path, len(path))
        return IndexLookup(node.values[key_index], path, len(path))

    def footprint_bytes(self) -> int:
        """Total tree size — what the index cache must hold for 100 % hits."""
        return self.node_count * NODE_BYTES
