"""Processes, address spaces and virtual memory areas (VMAs).

Each process owns an ASID, a radix page table, a synonym filter, and a
segment allocator.  VMAs record how a virtual range is backed:

* ``demand``  — frames allocated one page at a time on first touch
  (conventional demand paging; no segments, scattered frames);
* ``eager``   — the range is backed by eagerly allocated contiguous
  segments (Section IV-B).  Pages still *map* on first touch so that the
  paper's utilization statistic (touched / allocated) can be measured,
  but the physical address of every page is fixed by the segment at
  allocation time;
* ``shared``  — a synonym region: the backing frames belong to a shared
  physical extent that other address spaces also map (possibly at
  different virtual addresses).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.address import PAGE_SHIFT, PAGE_SIZE
from repro.common.params import SynonymFilterConfig
from repro.filters.synonym_filter import SynonymFilter
from repro.osmodel.frames import FrameAllocator
from repro.osmodel.pagetable import PERM_RW, PageTable
from repro.osmodel.segments import OsSegmentTable, Segment, SegmentAllocator

POLICY_DEMAND = "demand"
POLICY_EAGER = "eager"
POLICY_SHARED = "shared"


@dataclass
class Vma:
    """One mapped virtual range and its backing policy."""

    vbase: int
    length: int
    policy: str
    permissions: int = PERM_RW
    shared: bool = False
    segments: List[Segment] = field(default_factory=list)
    # For shared VMAs: physical byte address backing vbase.
    shared_pbase: Optional[int] = None

    @property
    def vlimit(self) -> int:
        return self.vbase + self.length

    def contains(self, va: int) -> bool:
        return self.vbase <= va < self.vlimit

    def segment_for(self, va: int) -> Optional[Segment]:
        for seg in self.segments:
            if seg.contains(va):
                return seg
        return None


class Process:
    """A simulated process: ASID + page table + filter + VMAs."""

    def __init__(self, name: str, asid: int, frames: FrameAllocator,
                 segment_table: OsSegmentTable,
                 filter_config: SynonymFilterConfig | None = None,
                 va_base: int = 0x10000000) -> None:
        self.name = name
        self.asid = asid
        self.page_table = PageTable(frames)
        self.synonym_filter = SynonymFilter(filter_config)
        self.segment_allocator = SegmentAllocator(asid, segment_table, frames,
                                                  va_base=va_base)
        self._vmas: List[Vma] = []
        self._vma_bases: List[int] = []
        self._va_cursor = va_base
        # Shared (mmap) area lives far from the heap, as on real systems
        # (Linux places shared mappings near 0x7f...).  Beyond realism,
        # this is load-bearing for the synonym filter: the XOR-fold hashes
        # distinguish regions by their address bits, and co-locating
        # shared and private ranges would collapse the hash space.
        self._mmap_cursor = 0x7F00_0000_0000 | ((asid & 0x3FF) << 32)
        self.shared_page_list: List[int] = []  # authoritative list for rebuilds

    # ------------------------------------------------------------------ #
    # VMA bookkeeping
    # ------------------------------------------------------------------ #

    def reserve_va(self, size_bytes: int, area: str = "heap") -> int:
        """Carve a fresh virtual range in the chosen area.

        ``heap`` ranges interleave with eager-segment allocations (the two
        cursors stay in sync so mappings never overlap); ``mmap`` ranges
        come from the distant shared-mapping area.
        """
        size_bytes = (size_bytes + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if area == "mmap":
            vbase = self._mmap_cursor
            self._mmap_cursor = vbase + size_bytes + PAGE_SIZE  # guard page
            return vbase
        # The segment allocator owns the cursor for eager mappings; use the
        # max of both cursors and advance both.
        vbase = max(self._va_cursor, self.segment_allocator._va_cursor)
        self._va_cursor = vbase + size_bytes
        self.segment_allocator._va_cursor = vbase + size_bytes
        return vbase

    def add_vma(self, vma: Vma) -> Vma:
        index = bisect_right(self._vma_bases, vma.vbase)
        self._vma_bases.insert(index, vma.vbase)
        self._vmas.insert(index, vma)
        return vma

    def find_vma(self, va: int) -> Optional[Vma]:
        index = bisect_right(self._vma_bases, va) - 1
        if index < 0:
            return None
        vma = self._vmas[index]
        return vma if vma.contains(va) else None

    def remove_vma(self, vma: Vma) -> None:
        index = self._vmas.index(vma)
        del self._vmas[index]
        del self._vma_bases[index]

    def vmas(self) -> List[Vma]:
        return list(self._vmas)

    # ------------------------------------------------------------------ #
    # Synonym bookkeeping
    # ------------------------------------------------------------------ #

    def record_shared_page(self, va: int) -> None:
        """Track a shared page authoritatively and in the Bloom filters."""
        page = va & ~(PAGE_SIZE - 1)
        self.shared_page_list.append(page)
        self.synonym_filter.mark_shared(page)

    def rebuild_filter(self) -> None:
        """OS rebuild of a saturated filter from the authoritative list."""
        self.synonym_filter.rebuild(self.shared_page_list)

    def mapped_bytes(self) -> int:
        return self.page_table.mapped_pages << PAGE_SHIFT
