"""OS-side segment management for many-segment translation (Section IV).

A *segment* maps a contiguous virtual range of one address space to a
contiguous physical range (base, limit, offset — the direct-segment /
RMM representation the paper extends).  The OS here supports:

* **eager allocation** — a memory request is backed immediately by
  contiguous physical extents (first-fit, splitting into several segments
  only when fragmentation forces it), maximizing contiguity at the cost of
  possible internal fragmentation.  Touched-page accounting exposes the
  utilization numbers of Table III;
* **adjacency merging** — a request that extends the previous allocation
  both virtually and physically grows the existing segment instead of
  creating a new one;
* **reservation-based allocation** (Section IV-B, [20]) — a large extent
  is reserved but sub-chunks are promoted to *allocated* only on first
  touch, with adjacent promoted chunks merging.  This trades more (but
  smaller) segments for less internal fragmentation;
* a **system-wide segment table** holding every live segment, mirrored by
  the HW segment table of ``repro.segtrans``.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.address import PAGE_SHIFT, PAGE_SIZE, align_up
from repro.common.stats import StatGroup
from repro.osmodel.frames import FrameAllocator


class SegmentFault(Exception):
    """Raised when an address is not covered by any live segment."""

    def __init__(self, asid: int, va: int) -> None:
        super().__init__(f"segment fault: asid={asid} va={va:#x}")
        self.asid = asid
        self.va = va


@dataclass
class Segment:
    """One variable-length virtual→physical mapping."""

    seg_id: int
    asid: int
    vbase: int
    length: int          # bytes
    pbase: int
    permissions: int = 0x3
    touched_pages: Set[int] = field(default_factory=set, repr=False)

    @property
    def vlimit(self) -> int:
        return self.vbase + self.length

    @property
    def offset(self) -> int:
        """The paper's offset register value: PA = VA + offset."""
        return self.pbase - self.vbase

    def contains(self, va: int) -> bool:
        return self.vbase <= va < self.vlimit

    def translate(self, va: int) -> int:
        if not self.contains(va):
            raise SegmentFault(self.asid, va)
        return va + self.offset

    def touch(self, va: int) -> None:
        """Record a page access for utilization accounting."""
        self.touched_pages.add((va - self.vbase) >> PAGE_SHIFT)

    def utilization(self) -> float:
        """Touched fraction of the eagerly allocated region."""
        total_pages = self.length >> PAGE_SHIFT
        if not total_pages:
            return 1.0
        return len(self.touched_pages) / total_pages


class OsSegmentTable:
    """System-wide in-memory segment table (the HW table mirrors it)."""

    def __init__(self, capacity: int = 2048, stats: StatGroup | None = None) -> None:
        self.capacity = capacity
        self.stats = stats or StatGroup("os_segment_table")
        self._segments: Dict[int, Segment] = {}
        self._next_id = 0
        # Per-ASID sorted vbase lists for O(log n) containment lookup.
        self._by_asid: Dict[int, List[int]] = {}
        self._vbase_to_id: Dict[Tuple[int, int], int] = {}
        self.peak_live = 0
        self._generation = 0

    @property
    def generation(self) -> int:
        """Bumped on every mutation; consumers rebuild indexes lazily."""
        return self._generation

    def insert(self, asid: int, vbase: int, length: int, pbase: int,
               permissions: int = 0x3) -> Segment:
        """Register a new segment."""
        if len(self._segments) >= self.capacity:
            raise MemoryError(f"segment table full ({self.capacity} entries)")
        seg = Segment(self._next_id, asid, vbase, length, pbase, permissions)
        self._next_id += 1
        self._segments[seg.seg_id] = seg
        insort(self._by_asid.setdefault(asid, []), vbase)
        self._vbase_to_id[(asid, vbase)] = seg.seg_id
        self.peak_live = max(self.peak_live, len(self._segments))
        self.stats.add("inserts")
        self._generation += 1
        return seg

    def remove(self, seg_id: int) -> Segment:
        """Drop a segment (process exit / unmap)."""
        seg = self._segments.pop(seg_id)
        bases = self._by_asid[seg.asid]
        bases.remove(seg.vbase)
        del self._vbase_to_id[(seg.asid, seg.vbase)]
        self.stats.add("removes")
        self._generation += 1
        return seg

    def grow(self, seg_id: int, extra_bytes: int) -> Segment:
        """Extend a segment in place (adjacency merge)."""
        seg = self._segments[seg_id]
        seg.length += extra_bytes
        self.stats.add("grows")
        self._generation += 1
        return seg

    def get(self, seg_id: int) -> Segment:
        return self._segments[seg_id]

    def find(self, asid: int, va: int) -> Segment:
        """Containment lookup; raises :class:`SegmentFault` when uncovered."""
        bases = self._by_asid.get(asid)
        if bases:
            i = bisect_right(bases, va) - 1
            if i >= 0:
                seg = self._segments[self._vbase_to_id[(asid, bases[i])]]
                if seg.contains(va):
                    return seg
        raise SegmentFault(asid, va)

    def live_count(self) -> int:
        return len(self._segments)

    def segments_sorted(self) -> List[Segment]:
        """All segments ordered by (asid, vbase) — index-tree build order."""
        out: List[Segment] = []
        for asid in sorted(self._by_asid):
            for vbase in self._by_asid[asid]:
                out.append(self._segments[self._vbase_to_id[(asid, vbase)]])
        return out

    def split(self, seg_id: int, parts: int) -> List[Segment]:
        """Split one segment into ``parts`` translation-equivalent pieces.

        Used by the paper's index-cache stress study (Section IV-D),
        which artificially breaks each segment ~10 ways to model external
        fragmentation.  The pieces cover exactly the original range with
        the original offset, so translation results are unchanged.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        original = self.get(seg_id)
        if parts == 1:
            return [original]
        pages = original.length >> PAGE_SHIFT
        if pages < parts:
            return [original]
        self.remove(seg_id)
        pieces: List[Segment] = []
        base_pages = pages // parts
        consumed = 0
        for i in range(parts):
            count = base_pages if i < parts - 1 else pages - consumed
            vbase = original.vbase + (consumed << PAGE_SHIFT)
            pieces.append(self.insert(
                original.asid, vbase, count << PAGE_SHIFT,
                vbase + original.offset, original.permissions))
            consumed += count
        self.stats.add("splits")
        return pieces

    def utilization(self, asid: Optional[int] = None) -> float:
        """Touched / allocated bytes over all (or one ASID's) segments."""
        segs = [s for s in self._segments.values()
                if asid is None or s.asid == asid]
        allocated = sum(s.length for s in segs)
        if not allocated:
            return 1.0
        touched = sum(len(s.touched_pages) << PAGE_SHIFT for s in segs)
        return touched / allocated


class SegmentAllocator:
    """Per-process eager/reservation segment allocation policy."""

    #: Sub-chunk promoted on first touch under reservation-based allocation.
    RESERVATION_CHUNK = 2 * 1024 * 1024

    def __init__(self, asid: int, table: OsSegmentTable, frames: FrameAllocator,
                 va_base: int = 0x10000000, stats: StatGroup | None = None) -> None:
        self.asid = asid
        self.table = table
        self.frames = frames
        self.stats = stats or StatGroup(f"segalloc_{asid}")
        self._va_cursor = va_base
        self._last_segment: Optional[Segment] = None
        self._last_piece_end_frame: Optional[int] = None
        # Reservations: (vbase, length, pbase) with promoted chunk tracking.
        self._reservations: List[Tuple[int, int, int]] = []
        self._promoted: Dict[int, Segment] = {}  # chunk vbase -> segment

    # ------------------------------------------------------------------ #
    # Eager allocation
    # ------------------------------------------------------------------ #

    #: Set >1 (e.g. 512 for 2 MB) to align eager allocations so huge
    #: pages can back them (transparent-huge-page kernels).
    align_frames: int = 1

    def allocate(self, size_bytes: int) -> List[Segment]:
        """Eagerly back ``size_bytes`` of fresh virtual memory.

        Returns the segments that now cover the request (new, or the grown
        existing one when adjacency merging applied).
        """
        align_bytes = self.align_frames << PAGE_SHIFT
        size_bytes = align_up(size_bytes, max(PAGE_SIZE, align_bytes))
        frames_needed = size_bytes >> PAGE_SHIFT
        if self.align_frames > 1:
            self._va_cursor = align_up(self._va_cursor, align_bytes)
            try:
                start = self.frames.alloc_contiguous(frames_needed,
                                                     self.align_frames)
                pieces = [(start, frames_needed)]
            except Exception:
                pieces = self.frames.alloc_best_effort(frames_needed)
        else:
            pieces = self.frames.alloc_best_effort(frames_needed)
        va = self._va_cursor
        result: List[Segment] = []
        for start_frame, count in pieces:
            piece_bytes = count << PAGE_SHIFT
            pbase = start_frame << PAGE_SHIFT
            merged = self._try_merge(va, piece_bytes, start_frame)
            if merged is not None:
                result.append(merged)
                self.stats.add("merges")
            else:
                seg = self.table.insert(self.asid, va, piece_bytes, pbase)
                self._last_segment = seg
                result.append(seg)
                self.stats.add("segments_created")
            self._last_piece_end_frame = start_frame + count
            va += piece_bytes
        self._va_cursor = va
        self.stats.add("bytes_allocated", size_bytes)
        return result

    def _try_merge(self, va: int, piece_bytes: int, start_frame: int) -> Optional[Segment]:
        """Grow the previous segment when VA and PA are both adjacent."""
        seg = self._last_segment
        if (seg is None or seg.vlimit != va
                or self._last_piece_end_frame != start_frame):
            return None
        return self.table.grow(seg.seg_id, piece_bytes)

    def forget(self, seg: Segment) -> None:
        """Invalidate merge state when ``seg`` is removed (munmap).

        Without this a later :meth:`allocate` could try to grow a segment
        that is no longer in the table (the frame allocator may hand back
        the adjacent frames after a free).
        """
        if self._last_segment is not None and self._last_segment is seg:
            self._last_segment = None
            self._last_piece_end_frame = None

    # ------------------------------------------------------------------ #
    # Reservation-based allocation (Section IV-B)
    # ------------------------------------------------------------------ #

    def reserve(self, size_bytes: int) -> Tuple[int, int]:
        """Reserve a contiguous region without creating segments yet.

        Returns ``(vbase, length)``.  Physical memory *is* set aside (the
        scheme's point is contiguity, not overcommit) but segments — and
        thus translation-structure pressure — appear only on first touch.
        """
        size_bytes = align_up(size_bytes, self.RESERVATION_CHUNK)
        start_frame = self.frames.alloc_contiguous(size_bytes >> PAGE_SHIFT)
        vbase = self._va_cursor
        self._va_cursor += size_bytes
        self._reservations.append((vbase, size_bytes, start_frame << PAGE_SHIFT))
        self.stats.add("reservations")
        return vbase, size_bytes

    def touch_reserved(self, va: int) -> Optional[Segment]:
        """Promote the 2 MB chunk containing ``va`` on first touch.

        Adjacent promoted chunks merge into one segment.  Returns the
        covering segment, or None when ``va`` is not inside a reservation.
        """
        for vbase, length, pbase in self._reservations:
            if vbase <= va < vbase + length:
                chunk = vbase + ((va - vbase) // self.RESERVATION_CHUNK) * self.RESERVATION_CHUNK
                if chunk in self._promoted:
                    return self._promoted[chunk]
                seg = self._promote_chunk(vbase, pbase, chunk)
                return seg
        return None

    def _promote_chunk(self, res_vbase: int, res_pbase: int, chunk: int) -> Segment:
        chunk_pbase = res_pbase + (chunk - res_vbase)
        left = self._promoted.get(chunk - self.RESERVATION_CHUNK)
        if left is not None and left.vlimit == chunk:
            seg = self.table.grow(left.seg_id, self.RESERVATION_CHUNK)
            self.stats.add("promotion_merges")
        else:
            seg = self.table.insert(self.asid, chunk, self.RESERVATION_CHUNK, chunk_pbase)
            self.stats.add("segments_created")
        self._promoted[chunk] = seg
        # A later chunk may have been promoted separately; merge forward.
        right = self._promoted.get(chunk + self.RESERVATION_CHUNK)
        if right is not None and right.seg_id != seg.seg_id and seg.vlimit == right.vbase:
            self.table.grow(seg.seg_id, right.length)
            self.table.remove(right.seg_id)
            for c, s in list(self._promoted.items()):
                if s.seg_id == right.seg_id:
                    self._promoted[c] = seg
            self.stats.add("promotion_merges")
        return seg
