"""Operating-system substrate: frames, page tables, processes, segments."""

from repro.osmodel.address_space import (
    POLICY_DEMAND,
    POLICY_EAGER,
    POLICY_SHARED,
    Process,
    Vma,
)
from repro.osmodel.frames import FrameAllocator, OutOfMemoryError
from repro.osmodel.index_tree import IndexLookup, IndexTree, pack_key
from repro.osmodel.kernel import Kernel, SegmentationViolation, Translation
from repro.osmodel.pagetable import (
    PERM_READ,
    PERM_RW,
    PERM_WRITE,
    PageFault,
    PageTable,
    PageTableEntry,
)
from repro.osmodel.segments import (
    OsSegmentTable,
    Segment,
    SegmentAllocator,
    SegmentFault,
)

__all__ = [
    "POLICY_DEMAND",
    "POLICY_EAGER",
    "POLICY_SHARED",
    "Process",
    "Vma",
    "FrameAllocator",
    "OutOfMemoryError",
    "IndexLookup",
    "IndexTree",
    "pack_key",
    "Kernel",
    "SegmentationViolation",
    "Translation",
    "PERM_READ",
    "PERM_RW",
    "PERM_WRITE",
    "PageFault",
    "PageTable",
    "PageTableEntry",
    "OsSegmentTable",
    "Segment",
    "SegmentAllocator",
    "SegmentFault",
]
