"""Physical-frame allocator with contiguous (extent) allocation.

Segment-based translation lives or dies by the OS's ability to hand out
*contiguous* physical memory (Section IV-B), so the allocator works in
extents: free space is a sorted list of ``[start_frame, end_frame)``
ranges, allocation is first-fit, and frees coalesce with neighbours.

Fragmentation can be injected deliberately (``fragment``) to reproduce the
paper's index-cache stress test, which splits each segment ~10 ways to
model external fragmentation (Section IV-D).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.address import PAGE_SHIFT
from repro.common.stats import StatGroup


class OutOfMemoryError(Exception):
    """No free extent can satisfy an allocation request."""


class FrameAllocator:
    """First-fit extent allocator over the physical frame space."""

    def __init__(self, total_bytes: int, stats: StatGroup | None = None) -> None:
        if total_bytes <= 0 or total_bytes % (1 << PAGE_SHIFT):
            raise ValueError("physical memory must be a positive page multiple")
        self.total_frames = total_bytes >> PAGE_SHIFT
        self.stats = stats or StatGroup("frames")
        # Sorted, disjoint, non-adjacent free extents.
        self._free: List[Tuple[int, int]] = [(0, self.total_frames)]
        self._allocated_frames = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def alloc_contiguous(self, frames: int, align_frames: int = 1) -> int:
        """Allocate ``frames`` contiguous frames; returns the start frame.

        ``align_frames`` forces the start onto that alignment (e.g. 512
        for 2 MB-aligned regions that can back huge pages); any leading
        slack stays on the free list.
        """
        if frames <= 0:
            raise ValueError("allocation must be at least one frame")
        if align_frames < 1 or align_frames & (align_frames - 1):
            raise ValueError("alignment must be a positive power of two")
        for i, (start, end) in enumerate(self._free):
            aligned = (start + align_frames - 1) & ~(align_frames - 1)
            if end - aligned >= frames:
                pieces = []
                if aligned > start:
                    pieces.append((start, aligned))
                if aligned + frames < end:
                    pieces.append((aligned + frames, end))
                self._free[i:i + 1] = pieces
                self._allocated_frames += frames
                self.stats.add("extent_allocs")
                self.stats.add("frames_allocated", frames)
                return aligned
        raise OutOfMemoryError(f"no contiguous extent of {frames} frames "
                               f"(alignment {align_frames})")

    def alloc_frame(self) -> int:
        """Allocate a single frame (demand paging / page-table nodes)."""
        return self.alloc_contiguous(1)

    def alloc_best_effort(self, frames: int, minimum: int = 1) -> List[Tuple[int, int]]:
        """Allocate ``frames`` total as few extents as possible.

        Falls back to smaller pieces (never below ``minimum``) when no
        single extent fits — this is what forces the OS to split one
        logical allocation into several segments under fragmentation.
        Returns ``[(start_frame, frame_count), ...]``.
        """
        pieces: List[Tuple[int, int]] = []
        remaining = frames
        try:
            while remaining > 0:
                largest = self.largest_free_extent()
                if largest == 0:
                    raise OutOfMemoryError("physical memory exhausted")
                take = min(remaining, largest)
                if take < minimum and remaining >= minimum:
                    raise OutOfMemoryError("free memory too fragmented")
                start = self.alloc_contiguous(take)
                pieces.append((start, take))
                remaining -= take
        except OutOfMemoryError:
            for start, count in pieces:
                self.free(start, count)
            raise
        return pieces

    def free(self, start_frame: int, frames: int) -> None:
        """Return an extent to the free list, coalescing with neighbours."""
        if frames <= 0:
            raise ValueError("free must cover at least one frame")
        new_start, new_end = start_frame, start_frame + frames
        insert_at = 0
        for i, (s, e) in enumerate(self._free):
            if s >= new_end:
                insert_at = i
                break
            if e > new_start:
                raise ValueError(f"double free of frames [{new_start}, {new_end})")
            insert_at = i + 1
        self._free.insert(insert_at, (new_start, new_end))
        self._coalesce(insert_at)
        self._allocated_frames -= frames
        self.stats.add("frames_freed", frames)

    def _coalesce(self, index: int) -> None:
        if index + 1 < len(self._free):
            s, e = self._free[index]
            ns, ne = self._free[index + 1]
            if e == ns:
                self._free[index] = (s, ne)
                del self._free[index + 1]
        if index > 0:
            ps, pe = self._free[index - 1]
            s, e = self._free[index]
            if pe == s:
                self._free[index - 1] = (ps, e)
                del self._free[index]

    # ------------------------------------------------------------------ #
    # Fragmentation & introspection
    # ------------------------------------------------------------------ #

    def fragment(self, max_extent_frames: int, rng) -> None:
        """Artificially shatter free space so no extent exceeds the cap.

        Implements the paper's external-fragmentation injection: holes are
        punched at random offsets inside oversized free extents, pinning
        one frame per cut (the pinned frames are leaked by design — they
        model memory held by other tenants).
        """
        shattered: List[Tuple[int, int]] = []
        for start, end in self._free:
            while end - start > max_extent_frames:
                cut_span = min(max_extent_frames, end - start - 1)
                cut = start + rng.randint(1, cut_span)
                shattered.append((start, cut))
                start = cut + 1  # pin one frame as the hole
                self._allocated_frames += 1
            if end > start:
                shattered.append((start, end))
        self._free = shattered
        self.stats.add("fragmentation_passes")

    def largest_free_extent(self) -> int:
        """Size (frames) of the largest free extent."""
        return max((e - s for s, e in self._free), default=0)

    def free_frames(self) -> int:
        return sum(e - s for s, e in self._free)

    def allocated_frames(self) -> int:
        return self._allocated_frames

    def free_extent_count(self) -> int:
        return len(self._free)

    def frame_to_pa(self, frame: int) -> int:
        """Byte address of a frame."""
        return frame << PAGE_SHIFT
