"""Four-level radix page table (x86-64 style).

Table nodes are backed by real frames from the :class:`FrameAllocator`, so
every PTE has a concrete physical address.  That matters: the page walker
charges PTE reads through the cache hierarchy, and the paper's results
depend on walk traffic competing with data in the caches.

Each leaf PTE records the frame number, permission bits, and the *sharing
bit* the paper adds to page-table entries (Section III-A footnote): the
bit that tells a false-positive TLB fill that the page is in fact a
non-synonym.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.address import PAGE_SHIFT, VA_BITS
from repro.osmodel.frames import FrameAllocator

LEVELS = 4
BITS_PER_LEVEL = 9
PTE_SIZE = 8

PERM_READ = 0x1
PERM_WRITE = 0x2
PERM_RW = PERM_READ | PERM_WRITE


class PageFault(Exception):
    """Raised when translating an unmapped virtual address."""

    def __init__(self, va: int) -> None:
        super().__init__(f"page fault at {va:#x}")
        self.va = va


HUGE_PAGE_SHIFT = 21
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT


@dataclass(slots=True)
class PageTableEntry:
    """Leaf mapping: frame, permissions, and the synonym ("sharing") bit.

    ``page_shift`` distinguishes 4 KB leaves (12) from 2 MB huge-page
    leaves (21) installed one level up the radix.
    """

    pfn: int
    permissions: int = PERM_RW
    shared: bool = False
    page_shift: int = PAGE_SHIFT

    @property
    def is_huge(self) -> bool:
        return self.page_shift != PAGE_SHIFT


class _Node:
    """One radix node: a frame-backed array of 512 slots."""

    __slots__ = ("pa", "slots")

    def __init__(self, pa: int) -> None:
        self.pa = pa
        self.slots: Dict[int, object] = {}


class PageTable:
    """Per-address-space 4-level radix table."""

    def __init__(self, frames: FrameAllocator) -> None:
        self._frames = frames
        self._node_frames: List[int] = []
        self._root = self._new_node()
        self._mapped_pages = 0
        self._released = False

    def _new_node(self) -> _Node:
        frame = self._frames.alloc_frame()
        self._node_frames.append(frame)
        return _Node(self._frames.frame_to_pa(frame))

    def release(self) -> int:
        """Free every radix-node frame (address-space teardown).

        Returns the number of frames released.  The table is unusable
        afterwards; releasing twice is a no-op.
        """
        if self._released:
            return 0
        for frame in self._node_frames:
            self._frames.free(frame, 1)
        released = len(self._node_frames)
        self._node_frames = []
        self._root = _Node(0)
        self._mapped_pages = 0
        self._released = True
        return released

    @staticmethod
    def _indices(va: int) -> List[int]:
        vpn = (va & ((1 << VA_BITS) - 1)) >> PAGE_SHIFT
        return [(vpn >> (BITS_PER_LEVEL * level)) & ((1 << BITS_PER_LEVEL) - 1)
                for level in reversed(range(LEVELS))]

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def map(self, va: int, pfn: int, permissions: int = PERM_RW,
            shared: bool = False) -> None:
        """Install a leaf mapping for the page containing ``va``."""
        node = self._root
        idx = self._indices(va)
        for level_index in idx[:-1]:
            child = node.slots.get(level_index)
            if child is None:
                child = self._new_node()
                node.slots[level_index] = child
            node = child  # type: ignore[assignment]
        if idx[-1] not in node.slots:
            self._mapped_pages += 1
        node.slots[idx[-1]] = PageTableEntry(pfn, permissions, shared)

    def map_huge(self, va: int, pfn: int, permissions: int = PERM_RW,
                 shared: bool = False) -> None:
        """Install a 2 MB leaf one level above the 4 KB leaves.

        ``va`` must be 2 MB-aligned and ``pfn`` the frame number of a
        2 MB-aligned physical region.
        """
        if va & (HUGE_PAGE_SIZE - 1):
            raise ValueError(f"huge mapping at unaligned VA {va:#x}")
        if (pfn << PAGE_SHIFT) & (HUGE_PAGE_SIZE - 1):
            raise ValueError("huge mapping needs a 2 MB-aligned frame")
        node = self._root
        idx = self._indices(va)
        for level_index in idx[:-2]:
            child = node.slots.get(level_index)
            if child is None:
                child = self._new_node()
                node.slots[level_index] = child
            node = child  # type: ignore[assignment]
        existing = node.slots.get(idx[-2])
        if isinstance(existing, _Node) and existing.slots:
            raise ValueError(f"huge mapping at {va:#x} would shadow "
                             f"existing 4 KB mappings")
        if not isinstance(existing, PageTableEntry):
            self._mapped_pages += HUGE_PAGE_SIZE // (1 << PAGE_SHIFT)
        node.slots[idx[-2]] = PageTableEntry(pfn, permissions, shared,
                                             page_shift=HUGE_PAGE_SHIFT)

    def unmap(self, va: int) -> Optional[PageTableEntry]:
        """Remove the leaf mapping (4 KB or 2 MB); returns it or None."""
        node = self._root
        idx = self._indices(va)
        for depth, level_index in enumerate(idx[:-1]):
            child = node.slots.get(level_index)
            if child is None:
                return None
            if isinstance(child, PageTableEntry):
                # Huge leaf encountered one level up.
                del node.slots[level_index]
                self._mapped_pages -= HUGE_PAGE_SIZE >> PAGE_SHIFT
                return child
            node = child  # type: ignore[assignment]
        entry = node.slots.pop(idx[-1], None)
        if entry is not None:
            self._mapped_pages -= 1
        return entry  # type: ignore[return-value]

    def set_permissions(self, va: int, permissions: int) -> None:
        """Rewrite a leaf's permission bits (CoW downgrades/promotions)."""
        self.entry(va).permissions = permissions

    def set_shared(self, va: int, shared: bool) -> None:
        """Flip the PTE sharing (synonym) bit."""
        self.entry(va).shared = shared

    # ------------------------------------------------------------------ #
    # Translation
    # ------------------------------------------------------------------ #

    def entry(self, va: int) -> PageTableEntry:
        """Return the leaf PTE (4 KB or 2 MB) or raise :class:`PageFault`."""
        node = self._root
        idx = self._indices(va)
        for level_index in idx[:-1]:
            child = node.slots.get(level_index)
            if child is None:
                raise PageFault(va)
            if isinstance(child, PageTableEntry):
                return child  # huge leaf
            node = child  # type: ignore[assignment]
        entry = node.slots.get(idx[-1])
        if entry is None:
            raise PageFault(va)
        return entry  # type: ignore[return-value]

    def translate(self, va: int) -> int:
        """VA → PA for a mapped address (any leaf size)."""
        entry = self.entry(va)
        return (entry.pfn << PAGE_SHIFT) | (va & ((1 << entry.page_shift) - 1))

    def is_mapped(self, va: int) -> bool:
        try:
            self.entry(va)
            return True
        except PageFault:
            return False

    def walk_path(self, va: int) -> List[int]:
        """Physical addresses of the PTEs a hardware walk reads, root→leaf.

        Unmapped upper levels still contribute the address that *would* be
        read (the walk discovers the fault by reading it).
        """
        path: List[int] = []
        node: Optional[_Node] = self._root
        for level_index in self._indices(va):
            assert node is not None
            path.append(node.pa + level_index * PTE_SIZE)
            nxt = node.slots.get(level_index)
            node = nxt if isinstance(nxt, _Node) else None
            if node is None:
                break
        return path

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages

    def iter_mappings(self) -> Iterator[Tuple[int, PageTableEntry]]:
        """Yield (va, entry) for every leaf mapping (OS bookkeeping)."""

        def recurse(node: _Node, prefix_vpn: int, level: int) -> Iterator[Tuple[int, PageTableEntry]]:
            for index, slot in node.slots.items():
                vpn = (prefix_vpn << BITS_PER_LEVEL) | index
                if isinstance(slot, _Node):
                    yield from recurse(slot, vpn, level + 1)
                else:
                    # Levels below this leaf contribute zero index bits.
                    shift = PAGE_SHIFT + BITS_PER_LEVEL * (LEVELS - 1 - level)
                    yield vpn << shift, slot  # type: ignore[misc]

        yield from recurse(self._root, 0, 0)
