"""The operating-system facade the simulated hardware talks to.

The kernel owns physical memory, processes, the system-wide segment table
and index tree, and the synonym bookkeeping the paper assigns to software:

* marking pages shared and updating per-process Bloom filters
  (Section III-B), including rebuilds past a saturation threshold;
* TLB shootdowns and cache flushes on remap/permission changes
  (Section III-A), delivered to registered hardware listeners;
* demand- and eager-segment-backed memory allocation (Section IV-B);
* copy-on-write resolution of permission faults on r/o content-shared
  pages (Section III-D).

The hardware-facing entry point is :meth:`translate`, which performs the
functional VA→PA mapping (resolving first-touch faults inline) and
returns the page's permissions and ground-truth synonym status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.address import PAGE_SHIFT, PAGE_SIZE, page_base
from repro.common.params import SynonymFilterConfig, SystemConfig
from repro.common.stats import StatGroup
from repro.osmodel.address_space import (
    POLICY_DEMAND,
    POLICY_EAGER,
    POLICY_SHARED,
    Process,
    Vma,
)
from repro.osmodel.frames import FrameAllocator
from repro.osmodel.index_tree import IndexTree
from repro.osmodel.pagetable import PERM_READ, PERM_RW, PageFault
from repro.osmodel.segments import OsSegmentTable

#: Listener signature for shootdowns: (asid, page_va) of the dead mapping.
ShootdownFn = Callable[[int, int], None]
#: Listener signature for per-page cache flushes: (asid, page_va, was_shared).
FlushFn = Callable[[int, int, bool], None]


class SegmentationViolation(Exception):
    """Access outside every VMA of the address space."""

    def __init__(self, asid: int, va: int) -> None:
        super().__init__(f"access outside address space: asid={asid} va={va:#x}")
        self.asid = asid
        self.va = va


@dataclass(slots=True)
class Translation:
    """Functional translation result handed to the hardware models."""

    pa: int
    permissions: int
    shared: bool       # ground-truth synonym status of the page


class Kernel:
    """System software model."""

    #: Filter fill ratio beyond which the OS rebuilds a process's filters.
    FILTER_REBUILD_THRESHOLD = 0.5

    def __init__(self, config: SystemConfig | None = None,
                 filter_config: SynonymFilterConfig | None = None,
                 segment_table_capacity: int = 2048,
                 transparent_huge_pages: bool = False) -> None:
        self.config = config or SystemConfig()
        self.filter_config = filter_config or self.config.synonym_filter
        self.stats = StatGroup("kernel")
        self.frames = FrameAllocator(self.config.physical_memory_bytes)
        self.segment_table = OsSegmentTable(capacity=segment_table_capacity)
        #: Transparent huge pages: eager allocations are 2 MB-aligned and
        #: first touches install 2 MB leaves where alignment permits.
        self.thp = transparent_huge_pages
        self.index_tree = IndexTree(self.frames)
        self._processes: Dict[int, Process] = {}
        self._next_asid = 1
        self._free_asids: List[int] = []
        self._shootdown_listeners: List[ShootdownFn] = []
        self._flush_listeners: List[FlushFn] = []
        self._permission_listeners: List[Callable[[int, int, int], None]] = []
        # Frames shared CoW by fork(): owned by more than one address
        # space, so per-process teardown must not free them.  (A full
        # refcount would reclaim them on last exit; this model documents
        # them as intentionally retained.)
        self._cow_frames: set = set()

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #

    def create_process(self, name: str, va_base: Optional[int] = None) -> Process:
        """Spawn a process with a fresh (or recycled) ASID.

        Heap bases are staggered per process (ASLR-style) by default.
        Beyond realism this matters to the hybrid design: the caches are
        virtually indexed, so identical layouts across processes would
        pile every process's hot set into the same cache sets.

        ASIDs are 16-bit (Section III-A: 65,536 address spaces).  Retired
        ASIDs are recycled in FIFO order; :meth:`destroy_process` already
        flushed all state under the old ASID, so reuse is safe.
        """
        if self._free_asids:
            asid = self._free_asids.pop(0)
            self.stats.add("asids_recycled")
        else:
            if self._next_asid > 0xFFFF:
                raise RuntimeError("ASID space exhausted (65,536 live "
                                   "address spaces)")
            asid = self._next_asid
            self._next_asid += 1
        if va_base is None:
            va_base = 0x1000_0000 + (asid % 64) * 0x37_F000
        process = Process(name, asid, self.frames, self.segment_table,
                          self.filter_config, va_base=va_base)
        if self.thp:
            process.segment_allocator.align_frames = 512  # 2 MB
        self._processes[asid] = process
        self.stats.add("processes_created")
        return process

    def destroy_process(self, process: Process) -> None:
        """Tear down an address space completely.

        Unmaps every VMA (flushing caches and shooting down TLBs page by
        page), releases the radix-table node frames, and retires the
        ASID for recycling.  After this the kernel holds no state for
        the process and its ASID may name a different address space.
        """
        for vma in process.vmas():
            self.munmap(process, vma)
        process.page_table.release()
        del self._processes[process.asid]
        self._free_asids.append(process.asid)
        self.stats.add("processes_destroyed")

    def process(self, asid: int) -> Process:
        return self._processes[asid]

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    # ------------------------------------------------------------------ #
    # Hardware listener registration
    # ------------------------------------------------------------------ #

    def on_shootdown(self, listener: ShootdownFn) -> None:
        """Register a TLB-like structure for shootdown delivery."""
        self._shootdown_listeners.append(listener)

    def on_page_flush(self, listener: FlushFn) -> None:
        """Register a cache hierarchy for per-page flush delivery."""
        self._flush_listeners.append(listener)

    def _shootdown(self, asid: int, page_va: int) -> None:
        self.stats.add("shootdowns")
        for listener in self._shootdown_listeners:
            listener(asid, page_va)

    def _flush_page(self, asid: int, page_va: int, was_shared: bool) -> None:
        self.stats.add("page_flushes")
        for listener in self._flush_listeners:
            listener(asid, page_va, was_shared)

    # ------------------------------------------------------------------ #
    # Memory mapping
    # ------------------------------------------------------------------ #

    def mmap(self, process: Process, size_bytes: int,
             policy: str = POLICY_DEMAND, permissions: int = PERM_RW) -> Vma:
        """Map fresh private anonymous memory.

        ``policy`` selects demand paging or eager segment backing; either
        way pages enter the page table on first touch so utilization and
        fault behaviour are measurable.
        """
        if policy not in (POLICY_DEMAND, POLICY_EAGER):
            raise ValueError(f"unknown mmap policy {policy!r}")
        if policy == POLICY_EAGER:
            segments = process.segment_allocator.allocate(size_bytes)
            vbase = segments[0].vbase
            length = sum(s.length for s in segments)
            # Keep the plain-VA cursor in sync with the segment cursor.
            process._va_cursor = max(process._va_cursor,
                                     process.segment_allocator._va_cursor)
            vma = Vma(vbase, length, POLICY_EAGER, permissions,
                      segments=segments)
        else:
            vbase = process.reserve_va(size_bytes)
            vma = Vma(vbase, ((size_bytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE,
                      POLICY_DEMAND, permissions)
        self.stats.add(f"mmap_{policy}")
        return process.add_vma(vma)

    def mmap_shared(self, participants: Iterable[Process], size_bytes: int,
                    permissions: int = PERM_RW) -> Dict[int, Vma]:
        """Create a r/w shared (synonym) region across several processes.

        One contiguous physical extent backs the region; every participant
        maps it at its own virtual address, creating true synonyms.  Each
        participant's Bloom filters are updated page by page — the paper's
        OS responsibility on the private→shared transition.
        """
        size_bytes = ((size_bytes + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
        frames_needed = size_bytes >> PAGE_SHIFT
        start_frame = self.frames.alloc_contiguous(frames_needed)
        pbase = start_frame << PAGE_SHIFT
        result: Dict[int, Vma] = {}
        for process in participants:
            vbase = process.reserve_va(size_bytes, area="mmap")
            vma = Vma(vbase, size_bytes, POLICY_SHARED, permissions,
                      shared=True, shared_pbase=pbase)
            process.add_vma(vma)
            for offset in range(0, size_bytes, PAGE_SIZE):
                process.record_shared_page(vbase + offset)
            self._maybe_rebuild_filter(process)
            result[process.asid] = vma
        self.stats.add("mmap_shared")
        return result

    def munmap(self, process: Process, vma: Vma) -> None:
        """Tear down a mapping: flush caches, shoot down TLBs, free memory."""
        for offset in range(0, vma.length, PAGE_SIZE):
            va = vma.vbase + offset
            entry = process.page_table.unmap(va)
            if entry is not None:
                self._flush_page(process.asid, va, vma.shared)
                self._shootdown(process.asid, va)
                if (vma.policy == POLICY_DEMAND
                        and entry.pfn not in self._cow_frames):
                    self.frames.free(entry.pfn, 1)
        if vma.policy == POLICY_EAGER:
            for seg in vma.segments:
                # Adjacency merging can grow one segment across several
                # eager VMAs; release it only with its last referencing VMA.
                if any(seg is other_seg
                       for other in process.vmas() if other is not vma
                       for other_seg in other.segments):
                    continue
                self.segment_table.remove(seg.seg_id)
                self.frames.free(seg.pbase >> PAGE_SHIFT, seg.length >> PAGE_SHIFT)
                process.segment_allocator.forget(seg)
        process.remove_vma(vma)
        self.stats.add("munmap")

    # ------------------------------------------------------------------ #
    # Synonym status transitions
    # ------------------------------------------------------------------ #

    def share_existing_pages(self, process: Process, vbase: int,
                             length: int) -> None:
        """Private→shared transition of an already-mapped range.

        Updates the Bloom filters and flushes the affected ASID+VA lines
        from the caches (they must re-enter under physical addresses), per
        Section III-A "Page Deallocation and Remap".
        """
        for offset in range(0, length, PAGE_SIZE):
            va = page_base(vbase + offset)
            try:
                entry = process.page_table.entry(va)
            except PageFault:
                continue
            entry.shared = True
            process.record_shared_page(va)
            self._flush_page(process.asid, va, False)
            self._shootdown(process.asid, va)
        vma = process.find_vma(vbase)
        if vma is not None:
            vma.shared = True
        self._maybe_rebuild_filter(process)
        self.stats.add("share_transitions")

    def share_readonly(self, processes_vas: List[Tuple[Process, int]],
                       pbase: int) -> None:
        """Content-based r/o sharing (Section III-D).

        The given (process, va) pages are remapped onto one physical page
        with read-only permissions.  No synonym-filter update is needed:
        r/o synonyms stay virtually addressed because they cannot create
        incoherence; cached copies are permission-downgraded instead.
        """
        for process, va in processes_vas:
            va = page_base(va)
            old = process.page_table.unmap(va)
            if old is not None and old.pfn != (pbase >> PAGE_SHIFT):
                self.frames.free(old.pfn, 1)
            process.page_table.map(va, pbase >> PAGE_SHIFT,
                                   permissions=PERM_READ, shared=False)
            self._shootdown(process.asid, va)
        self.stats.add("content_sharings")

    def fork(self, parent: Process, name: Optional[str] = None) -> Process:
        """Duplicate an address space with copy-on-write sharing.

        Every mapped page of the parent is re-mapped read-only in *both*
        address spaces, pointing at the same frame.  Under hybrid virtual
        caching this needs **no synonym-filter update**: the copies are
        read-only synonyms, which Section III-D explicitly allows to stay
        virtually addressed (r/o data cannot become incoherent).  The
        first write in either process raises a permission fault and
        :meth:`handle_cow_fault` privatizes the page.

        Demand VMAs are duplicated as CoW; eager-segment VMAs are *not*
        segment-shared (segments are per-ASID) — their already-touched
        pages become CoW 4 KB mappings and untouched parts are backed by
        fresh eager segments in the child.
        """
        child = self.create_process(name or f"{parent.name}-child")
        for vma in parent.vmas():
            if vma.policy == POLICY_SHARED:
                assert vma.shared_pbase is not None
                child_vma = Vma(child.reserve_va(vma.length, area="mmap"),
                                vma.length, POLICY_SHARED, vma.permissions,
                                shared=True, shared_pbase=vma.shared_pbase)
                child.add_vma(child_vma)
                for offset in range(0, vma.length, PAGE_SIZE):
                    child.record_shared_page(child_vma.vbase + offset)
                continue
            # Private mapping: same VAs in the child, CoW-shared frames.
            child_vma = Vma(vma.vbase, vma.length, POLICY_DEMAND,
                            vma.permissions)
            child.add_vma(child_vma)
            # Keep the child's heap cursor clear of inherited ranges.
            child._va_cursor = max(child._va_cursor, vma.vlimit)
            child.segment_allocator._va_cursor = max(
                child.segment_allocator._va_cursor, vma.vlimit)
            for offset in range(0, vma.length, PAGE_SIZE):
                va = vma.vbase + offset
                try:
                    entry = parent.page_table.entry(va)
                except PageFault:
                    continue
                if entry.is_huge or entry.shared:
                    continue  # huge/shared leaves keep their own handling
                ro = entry.permissions & ~0x2
                parent.page_table.set_permissions(va, ro)
                child.page_table.map(va, entry.pfn, ro, shared=False)
                self._cow_frames.add(entry.pfn)
                self._shootdown(parent.asid, va)
                for listener in self._permission_listeners:
                    listener(parent.asid, va, ro)
        self.stats.add("forks")
        return child

    def register_dma_region(self, process: Process, vbase: int,
                            length: int) -> None:
        """Mark pages used for device DMA as synonym pages.

        Section III-A: "The pages used for direct memory access (DMA) by
        I/O devices are also marked as synonym pages, and they are cached
        in physical address" — devices address memory physically, so the
        single-name rule requires the CPU side to use physical names too.
        """
        for offset in range(0, length, PAGE_SIZE):
            va = page_base(vbase + offset)
            try:
                entry = process.page_table.entry(va)
            except PageFault:
                # Fault it in first so DMA has a concrete frame.
                self.translate(process.asid, va)
                entry = process.page_table.entry(va)
            entry.shared = True
            process.record_shared_page(va)
            self._flush_page(process.asid, va, False)
            self._shootdown(process.asid, va)
        self._maybe_rebuild_filter(process)
        self.stats.add("dma_registrations")

    def change_permissions(self, process: Process, vbase: int, length: int,
                           permissions: int) -> None:
        """Change a mapped range's permissions (e.g. mprotect).

        Section III-A: "When the permission of a non-synonym page
        changes, the permission bits in cached copies must be updated
        along with the flush of the delayed translation TLB entry for
        the page."  Cached copies are downgraded in place via the
        permission-update listeners; TLB entries are shot down.
        """
        for offset in range(0, length, PAGE_SIZE):
            va = page_base(vbase + offset)
            try:
                entry = process.page_table.entry(va)
            except PageFault:
                continue
            entry.permissions = permissions
            self._shootdown(process.asid, va)
            for listener in self._permission_listeners:
                listener(process.asid, va, permissions)
        vma = process.find_vma(vbase)
        if vma is not None and vma.vbase == vbase and vma.length == length:
            vma.permissions = permissions
        self.stats.add("permission_changes")

    def on_permission_change(self, listener) -> None:
        """Register a cache hierarchy for in-place permission downgrades.

        Listener signature: ``(asid, page_va, new_permissions)``.
        """
        self._permission_listeners.append(listener)

    def handle_cow_fault(self, process: Process, va: int) -> int:
        """Copy-on-write: give a faulting writer its own r/w page.

        Returns the new physical page base.  Models the paper's permission
        -fault flow for content-shared pages: allocate, copy, remap r/w.
        """
        va = page_base(va)
        new_frame = self.frames.alloc_frame()
        process.page_table.unmap(va)
        process.page_table.map(va, new_frame, permissions=PERM_RW, shared=False)
        self._flush_page(process.asid, va, False)
        self._shootdown(process.asid, va)
        self.stats.add("cow_faults")
        return new_frame << PAGE_SHIFT

    def _maybe_rebuild_filter(self, process: Process) -> None:
        if process.synonym_filter.fill_ratio() > self.FILTER_REBUILD_THRESHOLD:
            process.rebuild_filter()
            self.stats.add("filter_rebuilds")

    # ------------------------------------------------------------------ #
    # Translation (the hardware's functional oracle)
    # ------------------------------------------------------------------ #

    def translate(self, asid: int, va: int) -> Translation:
        """VA→PA with inline first-touch fault handling."""
        process = self._processes[asid]
        table = process.page_table
        try:
            entry = table.entry(page_base(va))
        except PageFault:
            entry = self._handle_fault(process, va)
        offset_mask = (1 << entry.page_shift) - 1
        pa = (entry.pfn << PAGE_SHIFT) | (va & offset_mask)
        return Translation(pa, entry.permissions, entry.shared)

    def _handle_fault(self, process: Process, va: int):
        vma = process.find_vma(va)
        if vma is None:
            raise SegmentationViolation(process.asid, va)
        page_va = page_base(va)
        if vma.policy == POLICY_DEMAND:
            frame = self.frames.alloc_frame()
            process.page_table.map(page_va, frame, vma.permissions, shared=False)
            self.stats.add("demand_faults")
        elif vma.policy == POLICY_EAGER:
            segment = vma.segment_for(va)
            if segment is None:
                raise SegmentationViolation(process.asid, va)
            segment.touch(page_va)
            pa = segment.translate(page_va)
            if self.thp and self._try_map_huge(process, segment, va):
                self.stats.add("huge_first_touches")
            else:
                process.page_table.map(page_va, pa >> PAGE_SHIFT,
                                       vma.permissions, shared=False)
            self.stats.add("eager_first_touches")
        else:  # POLICY_SHARED
            assert vma.shared_pbase is not None
            pa = vma.shared_pbase + (page_va - vma.vbase)
            process.page_table.map(page_va, pa >> PAGE_SHIFT, vma.permissions,
                                   shared=True)
            self.stats.add("shared_first_touches")
        return process.page_table.entry(page_va)

    def _try_map_huge(self, process: Process, segment, va: int) -> bool:
        """Install a 2 MB leaf when alignment and coverage permit."""
        from repro.osmodel.pagetable import HUGE_PAGE_SIZE

        huge_base = va & ~(HUGE_PAGE_SIZE - 1)
        if not (segment.contains(huge_base)
                and segment.contains(huge_base + HUGE_PAGE_SIZE - 1)):
            return False
        pa_base = huge_base + segment.offset
        if pa_base & (HUGE_PAGE_SIZE - 1):
            return False
        process.page_table.map_huge(huge_base, pa_base >> PAGE_SHIFT,
                                    permissions=0x3, shared=False)
        # The whole huge page is now resident; count it as touched.
        for offset in range(0, HUGE_PAGE_SIZE, PAGE_SIZE):
            segment.touch(huge_base + offset)
        return True

    def pte_path(self, asid: int, va: int) -> List[int]:
        """Physical addresses a hardware page walk reads (root→leaf).

        Faults are resolved first so the walker always sees a full path —
        the fault cost itself is accounted by the caller via kernel stats.
        """
        self.translate(asid, va)
        return self._processes[asid].page_table.walk_path(va)

    def is_synonym_page(self, asid: int, va: int) -> bool:
        """Ground truth for filter false-positive accounting."""
        process = self._processes[asid]
        try:
            return process.page_table.entry(page_base(va)).shared
        except PageFault:
            vma = process.find_vma(va)
            return bool(vma and vma.shared)

    # ------------------------------------------------------------------ #
    # Segment-side services (delayed many-segment translation)
    # ------------------------------------------------------------------ #

    def current_index_tree(self) -> IndexTree:
        """The index tree, rebuilt if the segment table changed."""
        if self.index_tree.ensure_current(self.segment_table):
            self.stats.add("index_tree_rebuilds")
        return self.index_tree

    def segment_lookup(self, asid: int, va: int):
        """OS-path segment lookup (HW segment-table cold-miss interrupt)."""
        return self.segment_table.find(asid, va)

    def shootdown_page(self, asid: int, va: int) -> None:
        """Explicit shootdown request (tests / remap experiments)."""
        self._shootdown(asid, page_base(va))
