"""Fingerprint-keyed on-disk result cache.

Each entry is one ``repro.result/v1`` JSON document stored at
``<root>/<fingerprint>.json``, with the job's identity embedded so a
human can tell what produced it.  Loads verify the schema and the
recorded fingerprint; anything missing, corrupt, or mismatched is a
miss — a broken cache entry can cost a re-simulation, never a wrong
result.  Stores are atomic (temp file + rename) with per-writer temp
names — pid, thread id and a monotonic counter — so concurrent
processes, concurrent threads (two service workers racing on the same
fingerprint) and interrupted runs cannot leave half-written or
interleaved entries behind.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.exec.job import Job

if TYPE_CHECKING:
    from repro.sim.results import SimulationResult

#: Distinguishes same-process writers racing on one fingerprint.
_TMP_COUNTER = itertools.count()


def result_document(job: Job, result: "SimulationResult") -> Dict[str, Any]:
    """The ``repro.result/v1`` document a cache entry holds.

    The result's own JSON plus the additive provenance keys —
    ``fingerprint`` and the job ``identity`` (the schema keeps its
    version; see ``results.py``).  The simulation service serves this
    exact layout, so a body answered from a fresh run and one answered
    from a later cache hit are byte-identical.
    """
    doc = result.to_json_dict()
    doc["fingerprint"] = job.fingerprint()
    doc["identity"] = job.identity()
    return doc


def encode_document(doc: Dict[str, Any]) -> str:
    """Canonical on-disk/on-wire encoding of one result document."""
    return json.dumps(doc, indent=2) + "\n"


class ResultCache:
    """Opt-in persistent store of simulation results, keyed by
    :meth:`Job.fingerprint` (``--cache-dir`` on the CLI)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, job: Job) -> Path:
        return self.root / f"{job.fingerprint()}.json"

    def load(self, job: Job) -> "Optional[SimulationResult]":
        """The cached result for ``job``, or ``None`` on any miss."""
        from repro.sim.results import RESULT_SCHEMA, SimulationResult

        try:
            doc = json.loads(self.path(job).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
            self.misses += 1
            return None
        stored_fp = doc.get("fingerprint")
        if stored_fp is not None and stored_fp != job.fingerprint():
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_json_dict(doc)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, job: Job, result: "SimulationResult") -> Path:
        """Persist one result atomically; returns the entry's path.

        The temp name carries pid + thread id + a counter: two writers
        racing on the same fingerprint each write their own temp file
        and the last ``os.replace`` wins whole — a reader can never see
        a truncated or interleaved entry.  (Equal fingerprints mean
        equal results, so *which* writer wins is immaterial.)
        """
        doc = result_document(job, result)
        path = self.path(job)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}."
            f"{next(_TMP_COUNTER)}.tmp")
        try:
            tmp.write_text(encode_document(doc))
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)   # never leave temp litter behind
            raise
        self.stores += 1
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
