"""Fingerprint-keyed on-disk result cache.

Each entry is one ``repro.result/v1`` JSON document stored at
``<root>/<fingerprint>.json``, with the job's identity embedded so a
human can tell what produced it.  Loads verify the schema and the
recorded fingerprint; anything missing, corrupt, or mismatched is a
miss — a broken cache entry can cost a re-simulation, never a wrong
result.  Stores are atomic (temp file + rename) so concurrent workers
and interrupted runs cannot leave half-written entries behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.exec.job import Job

if TYPE_CHECKING:
    from repro.sim.results import SimulationResult


class ResultCache:
    """Opt-in persistent store of simulation results, keyed by
    :meth:`Job.fingerprint` (``--cache-dir`` on the CLI)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, job: Job) -> Path:
        return self.root / f"{job.fingerprint()}.json"

    def load(self, job: Job) -> "Optional[SimulationResult]":
        """The cached result for ``job``, or ``None`` on any miss."""
        from repro.sim.results import RESULT_SCHEMA, SimulationResult

        try:
            doc = json.loads(self.path(job).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
            self.misses += 1
            return None
        stored_fp = doc.get("fingerprint")
        if stored_fp is not None and stored_fp != job.fingerprint():
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_json_dict(doc)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, job: Job, result: "SimulationResult") -> Path:
        """Persist one result atomically; returns the entry's path."""
        doc = result.to_json_dict()
        doc["fingerprint"] = job.fingerprint()   # additive keys: schema keeps
        doc["identity"] = job.identity()         # its version (see results.py)
        path = self.path(job)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n")
        os.replace(tmp, path)
        self.stores += 1
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
