"""Job-based experiment execution engine.

Every data point the repo produces — ``run_workload``, the
``compare_configs``/``sweep_*`` helpers, the CLI subcommands, and the
``benchmarks/`` figure/table modules — is one frozen :class:`Job`.
Builders collect jobs into an :class:`ExperimentPlan` (which dedupes
identical fingerprints), and the plan hands the unique jobs to a
pluggable executor:

* :class:`SerialExecutor`  — in-process, one at a time; bit-identical
  to the historical hand-rolled loops (the default);
* :class:`ParallelExecutor` — fans independent jobs across a process
  pool (``--workers N`` on the CLI), returning outcomes in submission
  order so results stay deterministic.

A failing job never kills a sweep: executors capture the exception as a
structured :class:`JobError` and the other points complete.  An opt-in
:class:`ResultCache` (``--cache-dir``) persists ``repro.result/v1``
documents keyed by job fingerprint, so re-running a sweep only
simulates the points whose inputs changed.

See ``docs/execution.md`` for the full model.
"""

from repro.exec.cache import ResultCache, encode_document, result_document
from repro.exec.executors import ParallelExecutor, SerialExecutor, run_job
from repro.exec.job import (JOB_SCHEMA, CancelPulse, Job, JobCancelled,
                            JobError, JobFailedError)
from repro.exec.plan import ExperimentPlan, PlanResults

__all__ = [
    "JOB_SCHEMA",
    "Job",
    "JobCancelled",
    "JobError",
    "JobFailedError",
    "CancelPulse",
    "ExperimentPlan",
    "PlanResults",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "result_document",
    "encode_document",
    "run_job",
]
