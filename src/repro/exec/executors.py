"""Pluggable executors: serial (default) and process-pool parallel.

Every submission funnels through one place — :func:`_mark_run_start` —
which is now the single home of the ``run_start`` tracer mark that
``compare_configs`` and ``sweep_delayed_tlb`` used to duplicate.

Executors never raise for a failing job: each outcome is either a
``SimulationResult`` or a structured :class:`JobError`, so one
diverging point cannot kill an N-point sweep.

:class:`ParallelExecutor` fans jobs over a ``ProcessPoolExecutor``.
Outcomes are returned in submission order and every job seeds its own
fresh kernel, so parallel output is bit-identical to serial output
(pinned by the determinism test in ``tests/test_exec.py``).

Per-access tracing crosses the process boundary via *sharded sinks*: a
live ``Tracer`` holds an open file handle and is given only to in-
process (serial) execution, while a picklable
:class:`~repro.obs.tracer.TraceSpec` describes a family of per-job
shards — each worker opens ``<base>.<fingerprint>.jsonl`` itself, writes
a ``run_start`` mark, records its own job, and closes.  The shard set of
a parallel run is identical to that of a serial run of the same plan.

Live progress crosses the same boundary via a
:class:`~repro.obs.heartbeat.BeatSpec`: the worker builds a per-job
:class:`~repro.obs.heartbeat.HeartbeatPulse` from it, the simulator
fires the pulse every N timed accesses, and a terminal beat is emitted
when the job returns — whether it succeeded or not, so the parent's
monitor always sees closure.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Union

from repro.exec.job import CancelPulse, Job, JobError

if TYPE_CHECKING:
    from repro.obs.heartbeat import BeatSpec
    from repro.obs.tracer import Tracer, TraceSpec
    from repro.sim.results import SimulationResult

#: What one job yields: a result, or its captured failure.
Outcome = Union["SimulationResult", JobError]

#: Per-completion callback: ``on_done(job, outcome)``.  Serial executors
#: call it in submission order; parallel ones in completion order.
JobCallback = Callable[[Job, Outcome], None]


def _mark_run_start(tracer: "Optional[Tracer]", job: Job) -> None:
    """Bracket one job in a shared trace stream (single submission path)."""
    if tracer is not None and tracer.active:
        tracer.mark("run_start", **job.mark_detail())


def run_job(job: Job, tracer: "Optional[Tracer]" = None,
            trace_spec: "Optional[TraceSpec]" = None,
            beat: "Optional[BeatSpec]" = None,
            timeout: Optional[float] = None,
            cancel: Optional[Callable[[], bool]] = None) -> Outcome:
    """Run one job, capturing any failure as a :class:`JobError`.

    Module-level so :class:`ParallelExecutor` can pickle it into worker
    processes.  With a ``trace_spec``, the job records into its own
    shard — opened here, inside whichever process runs the job, and
    closed before the outcome is returned — bracketed by a ``run_start``
    mark so every shard is a self-describing single-run trace.  With a
    ``beat``, the job pushes periodic heartbeats plus one terminal beat
    (success or failure) over the spec's queue.

    ``timeout`` (seconds, measured from when this job *starts*
    executing, not from submission) and ``cancel`` (an in-process
    callable polled periodically) abort the simulation mid-run through
    a :class:`CancelPulse`; the outcome is a :class:`JobError` with
    ``error_type == "JobCancelled"``.
    """
    pulse = beat.pulse_for(job) if beat is not None else None
    if timeout is not None or cancel is not None:
        deadline = time.time() + timeout if timeout is not None else None
        pulse = CancelPulse(pulse, deadline=deadline, cancel=cancel)
    if trace_spec is not None:
        tracer = trace_spec.open(job.fingerprint())
        tracer.mark("run_start", **job.mark_detail())
    try:
        result = job.run(tracer=tracer, pulse=pulse)
    except Exception as exc:
        if pulse is not None:
            pulse.finish(0, 0, 0.0, ok=False)
        return JobError.from_exception(job, exc)
    else:
        if pulse is not None:
            pulse.finish(result.accesses, result.instructions,
                         result.cycles, ok=True)
        return result
    finally:
        if trace_spec is not None and tracer is not None:
            tracer.close()


class SerialExecutor:
    """In-process, one-job-at-a-time execution.

    Behavior-identical to the historical hand-rolled loops (same order,
    same tracer stream, same results); the default everywhere.
    """

    def __init__(self) -> None:
        #: Jobs actually handed to :func:`run_job` — cache hits never
        #: reach an executor, which is what the cache tests count.
        self.submitted = 0

    def run(self, jobs: Sequence[Job], tracer: "Optional[Tracer]" = None,
            on_done: Optional[JobCallback] = None,
            trace_spec: "Optional[TraceSpec]" = None,
            beat: "Optional[BeatSpec]" = None,
            timeout: Optional[float] = None,
            cancel: Optional[Callable[[], bool]] = None) -> List[Outcome]:
        outcomes: List[Outcome] = []
        for job in jobs:
            if trace_spec is None:
                _mark_run_start(tracer, job)   # shards self-describe
            self.submitted += 1
            outcome = run_job(job, tracer=None if trace_spec else tracer,
                              trace_spec=trace_spec, beat=beat,
                              timeout=timeout, cancel=cancel)
            outcomes.append(outcome)
            if on_done is not None:
                on_done(job, outcome)
        return outcomes


class ParallelExecutor:
    """Process-pool execution of independent jobs.

    ``workers`` caps the pool size (``None`` → ``os.cpu_count()``).
    Jobs are pickled to worker processes; outcomes come back in
    submission order regardless of completion order.  A worker that
    dies outright (killed, pool broken) yields a :class:`JobError` for
    its job rather than an exception.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.submitted = 0

    def run(self, jobs: Sequence[Job], tracer: "Optional[Tracer]" = None,
            on_done: Optional[JobCallback] = None,
            trace_spec: "Optional[TraceSpec]" = None,
            beat: "Optional[BeatSpec]" = None,
            timeout: Optional[float] = None,
            cancel: Optional[Callable[[], bool]] = None) -> List[Outcome]:
        jobs = list(jobs)
        if not jobs:
            return []
        outcomes: List[Optional[Outcome]] = [None] * len(jobs)
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers) as pool:
            futures = {}
            for index, job in enumerate(jobs):
                if trace_spec is None:
                    _mark_run_start(tracer, job)   # shards self-describe
                self.submitted += 1
                # ``timeout`` pickles as-is; ``cancel`` must be a
                # module-level (picklable) callable to cross the pool.
                futures[pool.submit(run_job, job,
                                    trace_spec=trace_spec,
                                    beat=beat, timeout=timeout,
                                    cancel=cancel)] = index
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                job = jobs[index]
                try:
                    outcome = future.result()
                except Exception as exc:
                    outcome = JobError.from_exception(job, exc)
                outcomes[index] = outcome
                if on_done is not None:
                    on_done(job, outcome)
        return list(outcomes)  # fully populated: every future completed
