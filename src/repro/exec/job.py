"""Frozen job descriptions: one simulation point each.

A :class:`Job` captures everything that determines a
:class:`~repro.sim.results.SimulationResult` — workload, MMU
configuration name, hardware config, access/warmup counts, seed,
interval — as a frozen, picklable value object.  :meth:`Job.fingerprint`
extends the :meth:`~repro.obs.manifest.RunManifest.identity` machinery:
two jobs with equal fingerprints must produce identical results, which
is what makes plan-level deduplication and the on-disk
:class:`~repro.exec.cache.ResultCache` sound.

``repro.sim`` is imported lazily so the engine sits *below* the
experiment helpers without an import cycle: ``repro.sim.runner`` builds
plans of jobs at module load, while a job's :meth:`run` only calls back
into the runner's ``build_mmu``/``lay_out`` primitives at execution
time.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback as tb
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

from repro.common.params import SystemConfig, config_from_dict
from repro.obs.manifest import MANIFEST_SCHEMA, config_fingerprint

if TYPE_CHECKING:  # avoid importing repro.sim at module load (cycle)
    from repro.obs.tracer import Tracer
    from repro.sim.results import SimulationResult
    from repro.workloads.spec import WorkloadSpec

#: Version tag of the :meth:`Job.to_json_dict` wire format — what the
#: simulation service accepts over HTTP (``POST /jobs``).
JOB_SCHEMA = "repro.job/v1"


@dataclass(frozen=True)
class Job:
    """One (workload, MMU, config) simulation point, ready to execute."""

    workload: "Union[str, WorkloadSpec]"
    mmu: str
    config: Optional[SystemConfig] = None
    accesses: int = 100_000
    warmup: int = 20_000
    seed: int = 42
    interval: Optional[int] = None
    reset_stats_after_warmup: bool = False
    #: Extra key/value pairs attached to the tracer's ``run_start`` mark
    #: (e.g. the swept parameter values).  Purely descriptive — tags do
    #: not influence the fingerprint.
    tags: Tuple[Tuple[str, Any], ...] = ()

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def identity(self) -> Dict[str, Any]:
        """Every deterministic input, in ``RunManifest.identity`` layout.

        Equal identities ⇒ equal results.  The manifest's environment
        fields (host, wall-clock, Python version) are exactly what this
        omits; the engine adds the fields the manifest predates —
        ``interval``, ``reset_stats_after_warmup``, and a hash of ad-hoc
        workload specs not named in the catalog.
        """
        from repro import __version__  # deferred: repro imports sim at load

        identity: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "workload": self.workload_name,
            "mmu": self.mmu,
            "config_hash": config_fingerprint(self.config or SystemConfig()),
            "seed": self.seed,
            "accesses": self.accesses,
            "warmup": self.warmup,
            "package_version": __version__,
            "interval": self.interval,
            "reset_stats_after_warmup": self.reset_stats_after_warmup,
        }
        if not isinstance(self.workload, str):
            identity["workload_spec_hash"] = config_fingerprint(self.workload)
        return identity

    def fingerprint(self) -> str:
        """Stable short hash of :meth:`identity` — the dedup/cache key."""
        text = json.dumps(self.identity(), sort_keys=True, default=str)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def to_json_dict(self) -> Dict[str, Any]:
        """This job as a ``repro.job/v1`` document (the service wire
        format).

        Only catalog-named workloads serialize — an ad-hoc
        :class:`~repro.workloads.spec.WorkloadSpec` has no stable wire
        form, so it raises rather than fingerprint-drifting silently.
        ``config`` is the nested plain-dict view (``None`` means the
        default :class:`SystemConfig`); ``tags`` must be
        JSON-representable pairs.
        """
        if not isinstance(self.workload, str):
            raise ValueError(
                "ad-hoc WorkloadSpec jobs have no repro.job/v1 form; "
                "submit a catalog workload name instead")
        return {
            "schema": JOB_SCHEMA,
            "workload": self.workload,
            "mmu": self.mmu,
            "config": self.config.to_dict() if self.config else None,
            "accesses": self.accesses,
            "warmup": self.warmup,
            "seed": self.seed,
            "interval": self.interval,
            "reset_stats_after_warmup": self.reset_stats_after_warmup,
            "tags": [[key, value] for key, value in self.tags],
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, Any]) -> "Job":
        """Inverse of :meth:`to_json_dict`.

        Round-trip invariant (pinned by the property suite):
        ``Job.from_json_dict(job.to_json_dict()) == job``, hence equal
        fingerprints.  Dict key order never matters — identity is built
        field by field and hashed over sorted keys.  Unknown keys are
        ignored for forward compatibility; missing required keys raise
        ``KeyError``, wrong shapes raise ``TypeError``/``ValueError``.
        """
        schema = doc.get("schema")
        if schema != JOB_SCHEMA:
            raise ValueError(
                f"expected a {JOB_SCHEMA} document, got {schema!r}")
        workload = doc["workload"]
        if not isinstance(workload, str):
            raise TypeError("workload must be a catalog name string")
        config_doc = doc.get("config")
        return cls(
            workload=workload,
            mmu=doc["mmu"],
            config=(config_from_dict(config_doc)
                    if config_doc is not None else None),
            accesses=int(doc.get("accesses", 100_000)),
            warmup=int(doc.get("warmup", 20_000)),
            seed=int(doc.get("seed", 42)),
            interval=(int(doc["interval"])
                      if doc.get("interval") is not None else None),
            reset_stats_after_warmup=bool(
                doc.get("reset_stats_after_warmup", False)),
            tags=tuple((str(key), value)
                       for key, value in doc.get("tags", ())),
        )

    def mark_detail(self) -> Dict[str, Any]:
        """Fields for the ``run_start`` tracer mark bracketing this job."""
        detail: Dict[str, Any] = {"workload": self.workload_name,
                                  "mmu": self.mmu}
        detail.update(dict(self.tags))
        return detail

    def run(self, tracer: "Optional[Tracer]" = None,
            pulse=None) -> "SimulationResult":
        """Execute this job on a fresh kernel (one independent system).

        ``baseline_thp`` runs on a transparent-huge-page kernel (2 MB-
        aligned eager allocations); every other configuration uses the
        standard one.  ``pulse`` is the simulator's periodic-progress
        hook (see :class:`~repro.obs.heartbeat.HeartbeatPulse`); it
        reports, never influences, the simulated outcome.
        """
        from repro.osmodel.kernel import Kernel
        from repro.sim.runner import build_mmu, lay_out
        from repro.sim.simulator import Simulator

        config = self.config or SystemConfig()
        kernel = Kernel(config,
                        transparent_huge_pages=self.mmu == "baseline_thp")
        laid_out = lay_out(self.workload, kernel, seed=self.seed)
        mmu = build_mmu(self.mmu, kernel, config)
        return Simulator(mmu).run(
            laid_out, self.accesses, warmup=self.warmup, seed=self.seed,
            reset_stats_after_warmup=self.reset_stats_after_warmup,
            interval=self.interval, tracer=tracer, pulse=pulse)


@dataclass(frozen=True)
class JobError:
    """Structured capture of one failed job — the rest of the sweep
    completes and the failure stays inspectable."""

    fingerprint: str
    workload: str
    mmu: str
    error_type: str
    message: str
    traceback: str

    @classmethod
    def from_exception(cls, job: Job, exc: BaseException) -> "JobError":
        return cls(
            fingerprint=job.fingerprint(),
            workload=job.workload_name,
            mmu=job.mmu,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(tb.format_exception(type(exc), exc,
                                                  exc.__traceback__)),
        )


class JobFailedError(RuntimeError):
    """Raised when a plan consumer demands the result of a failed job."""

    def __init__(self, error: JobError) -> None:
        super().__init__(f"job {error.workload}/{error.mmu} failed: "
                         f"{error.error_type}: {error.message}")
        self.error = error


class JobCancelled(RuntimeError):
    """A running job was aborted mid-simulation (timeout or explicit
    cancellation).  Captured like any failure — the outcome is a
    :class:`JobError` with ``error_type == "JobCancelled"`` — so one
    cancelled point never kills a batch."""


class CancelPulse:
    """The engine's cancellation hook, riding the simulator's pulse.

    The simulator already supports one periodic callback (the heartbeat
    protocol: an ``every`` attribute plus ``__call__(done, total,
    instructions, cycles)``), so cancellation costs nothing new on the
    hot path: this wraps an optional inner pulse, checks a wall-clock
    ``deadline`` (``time.time()``, picklable — it crosses into pool
    workers) and/or an in-process ``cancel`` callable every ``every``
    timed accesses, raises :class:`JobCancelled` when either trips, and
    otherwise delegates.  A simulation is abandoned within ``every``
    accesses of the trip, not at the end of the run.
    """

    #: Check cadence when no inner pulse dictates one.
    DEFAULT_EVERY = 1024

    def __init__(self, inner: Optional[Any] = None,
                 deadline: Optional[float] = None,
                 cancel: Optional[Callable[[], bool]] = None,
                 every: Optional[int] = None) -> None:
        inner_every = getattr(inner, "every", 0) if inner is not None else 0
        self.every = every or inner_every or self.DEFAULT_EVERY
        self._inner = inner
        self._deadline = deadline
        self._cancel = cancel

    def __call__(self, done: int, total: int, instructions: int,
                 cycles: float) -> None:
        if self._cancel is not None and self._cancel():
            raise JobCancelled(f"cancelled after {done} timed accesses")
        if self._deadline is not None and time.time() >= self._deadline:
            raise JobCancelled(
                f"deadline exceeded after {done} timed accesses")
        if self._inner is not None:
            self._inner(done, total, instructions, cycles)

    def finish(self, accesses: int, instructions: int, cycles: float,
               ok: bool = True) -> None:
        """Delegate the terminal beat (no-op without an inner pulse)."""
        if self._inner is not None:
            self._inner.finish(accesses, instructions, cycles, ok=ok)
