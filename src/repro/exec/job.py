"""Frozen job descriptions: one simulation point each.

A :class:`Job` captures everything that determines a
:class:`~repro.sim.results.SimulationResult` — workload, MMU
configuration name, hardware config, access/warmup counts, seed,
interval — as a frozen, picklable value object.  :meth:`Job.fingerprint`
extends the :meth:`~repro.obs.manifest.RunManifest.identity` machinery:
two jobs with equal fingerprints must produce identical results, which
is what makes plan-level deduplication and the on-disk
:class:`~repro.exec.cache.ResultCache` sound.

``repro.sim`` is imported lazily so the engine sits *below* the
experiment helpers without an import cycle: ``repro.sim.runner`` builds
plans of jobs at module load, while a job's :meth:`run` only calls back
into the runner's ``build_mmu``/``lay_out`` primitives at execution
time.
"""

from __future__ import annotations

import hashlib
import json
import traceback as tb
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

from repro.common.params import SystemConfig
from repro.obs.manifest import MANIFEST_SCHEMA, config_fingerprint

if TYPE_CHECKING:  # avoid importing repro.sim at module load (cycle)
    from repro.obs.tracer import Tracer
    from repro.sim.results import SimulationResult
    from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Job:
    """One (workload, MMU, config) simulation point, ready to execute."""

    workload: "Union[str, WorkloadSpec]"
    mmu: str
    config: Optional[SystemConfig] = None
    accesses: int = 100_000
    warmup: int = 20_000
    seed: int = 42
    interval: Optional[int] = None
    reset_stats_after_warmup: bool = False
    #: Extra key/value pairs attached to the tracer's ``run_start`` mark
    #: (e.g. the swept parameter values).  Purely descriptive — tags do
    #: not influence the fingerprint.
    tags: Tuple[Tuple[str, Any], ...] = ()

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def identity(self) -> Dict[str, Any]:
        """Every deterministic input, in ``RunManifest.identity`` layout.

        Equal identities ⇒ equal results.  The manifest's environment
        fields (host, wall-clock, Python version) are exactly what this
        omits; the engine adds the fields the manifest predates —
        ``interval``, ``reset_stats_after_warmup``, and a hash of ad-hoc
        workload specs not named in the catalog.
        """
        from repro import __version__  # deferred: repro imports sim at load

        identity: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "workload": self.workload_name,
            "mmu": self.mmu,
            "config_hash": config_fingerprint(self.config or SystemConfig()),
            "seed": self.seed,
            "accesses": self.accesses,
            "warmup": self.warmup,
            "package_version": __version__,
            "interval": self.interval,
            "reset_stats_after_warmup": self.reset_stats_after_warmup,
        }
        if not isinstance(self.workload, str):
            identity["workload_spec_hash"] = config_fingerprint(self.workload)
        return identity

    def fingerprint(self) -> str:
        """Stable short hash of :meth:`identity` — the dedup/cache key."""
        text = json.dumps(self.identity(), sort_keys=True, default=str)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def mark_detail(self) -> Dict[str, Any]:
        """Fields for the ``run_start`` tracer mark bracketing this job."""
        detail: Dict[str, Any] = {"workload": self.workload_name,
                                  "mmu": self.mmu}
        detail.update(dict(self.tags))
        return detail

    def run(self, tracer: "Optional[Tracer]" = None,
            pulse=None) -> "SimulationResult":
        """Execute this job on a fresh kernel (one independent system).

        ``baseline_thp`` runs on a transparent-huge-page kernel (2 MB-
        aligned eager allocations); every other configuration uses the
        standard one.  ``pulse`` is the simulator's periodic-progress
        hook (see :class:`~repro.obs.heartbeat.HeartbeatPulse`); it
        reports, never influences, the simulated outcome.
        """
        from repro.osmodel.kernel import Kernel
        from repro.sim.runner import build_mmu, lay_out
        from repro.sim.simulator import Simulator

        config = self.config or SystemConfig()
        kernel = Kernel(config,
                        transparent_huge_pages=self.mmu == "baseline_thp")
        laid_out = lay_out(self.workload, kernel, seed=self.seed)
        mmu = build_mmu(self.mmu, kernel, config)
        return Simulator(mmu).run(
            laid_out, self.accesses, warmup=self.warmup, seed=self.seed,
            reset_stats_after_warmup=self.reset_stats_after_warmup,
            interval=self.interval, tracer=tracer, pulse=pulse)


@dataclass(frozen=True)
class JobError:
    """Structured capture of one failed job — the rest of the sweep
    completes and the failure stays inspectable."""

    fingerprint: str
    workload: str
    mmu: str
    error_type: str
    message: str
    traceback: str

    @classmethod
    def from_exception(cls, job: Job, exc: BaseException) -> "JobError":
        return cls(
            fingerprint=job.fingerprint(),
            workload=job.workload_name,
            mmu=job.mmu,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(tb.format_exception(type(exc), exc,
                                                  exc.__traceback__)),
        )


class JobFailedError(RuntimeError):
    """Raised when a plan consumer demands the result of a failed job."""

    def __init__(self, error: JobError) -> None:
        super().__init__(f"job {error.workload}/{error.mmu} failed: "
                         f"{error.error_type}: {error.message}")
        self.error = error
