"""Experiment plans: collect jobs, dedupe, execute, cache.

:class:`ExperimentPlan` is the engine's front door.  Plan builders
(``compare_configs``, the sweeps, the CLI, the benchmarks) add frozen
jobs; identical fingerprints collapse to one execution, and
:meth:`ExperimentPlan.run` resolves every job against an optional
:class:`~repro.exec.cache.ResultCache` before handing only the cache
misses to the executor.  The returned :class:`PlanResults` maps each
fingerprint back to its outcome, however many duplicate adds pointed at
it.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Tuple, Union)

from repro.exec.executors import Outcome, SerialExecutor
from repro.exec.job import Job, JobError, JobFailedError

if TYPE_CHECKING:
    from repro.exec.cache import ResultCache
    from repro.obs.heartbeat import BeatSpec
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer, TraceSpec
    from repro.sim.results import SimulationResult

#: Progress callback: ``progress(done, total, job, status)`` with
#: ``status`` one of ``"ok"``, ``"cached"``, ``"error"``.
ProgressCallback = Callable[[int, int, Job, str], None]


class PlanResults:
    """Outcomes of one plan execution, keyed by job fingerprint."""

    def __init__(self, outcomes: Dict[str, Outcome], cached: int = 0) -> None:
        self._outcomes = outcomes
        #: Jobs served straight from the :class:`ResultCache` — these
        #: never reached the executor.
        self.cached = cached

    @staticmethod
    def _key(key: Union[Job, str]) -> str:
        return key.fingerprint() if isinstance(key, Job) else key

    def __len__(self) -> int:
        return len(self._outcomes)

    def __contains__(self, key: Union[Job, str]) -> bool:
        return self._key(key) in self._outcomes

    def outcome(self, key: Union[Job, str]) -> Outcome:
        """Raw outcome — a ``SimulationResult`` or a :class:`JobError`."""
        return self._outcomes[self._key(key)]

    def result(self, key: Union[Job, str]) -> "SimulationResult":
        """The result for a job/fingerprint; a captured failure re-raises
        as :class:`JobFailedError` at the point of use."""
        outcome = self.outcome(key)
        if isinstance(outcome, JobError):
            raise JobFailedError(outcome)
        return outcome

    def errors(self) -> List[JobError]:
        return [o for o in self._outcomes.values() if isinstance(o, JobError)]

    def results(self) -> List["SimulationResult"]:
        return [o for o in self._outcomes.values()
                if not isinstance(o, JobError)]


class ExperimentPlan:
    """An ordered, fingerprint-deduplicated collection of jobs."""

    def __init__(self, jobs: Iterable[Job] = ()) -> None:
        self._jobs: Dict[str, Job] = {}      # fingerprint -> job, in order
        #: Adds that collapsed onto an already-planned fingerprint.
        self.duplicates = 0
        for job in jobs:
            self.add(job)

    def add(self, job: Job) -> str:
        """Plan one job; identical fingerprints execute only once.

        Returns the fingerprint — the key to look the outcome up in
        :class:`PlanResults` (a :class:`Job` works as a key too).
        """
        fingerprint = job.fingerprint()
        if fingerprint in self._jobs:
            self.duplicates += 1
        else:
            self._jobs[fingerprint] = job
        return fingerprint

    def extend(self, jobs: Iterable[Job]) -> List[str]:
        return [self.add(job) for job in jobs]

    @property
    def jobs(self) -> Tuple[Job, ...]:
        """The unique jobs, in first-add order."""
        return tuple(self._jobs.values())

    def __len__(self) -> int:
        return len(self._jobs)

    def run(self, executor=None, cache: "Optional[ResultCache]" = None,
            tracer: "Optional[Tracer]" = None,
            progress: Optional[ProgressCallback] = None,
            trace_spec: "Optional[TraceSpec]" = None,
            metrics: "Optional[MetricsRegistry]" = None,
            beat: "Optional[BeatSpec]" = None) -> PlanResults:
        """Execute every unique job and return their outcomes.

        Cache hits are resolved first and never reach the executor, so a
        cache-warm rerun of a sweep performs zero new simulations.  Only
        successful results are written back to the cache.

        ``tracer`` records every executed job into one shared in-process
        stream (serial execution); ``trace_spec`` records each job into
        its own shard, which also works under a parallel executor (the
        shard is opened inside the worker).  Cache hits produce no trace
        either way — nothing was simulated.

        ``beat`` streams live heartbeats from whichever process runs a
        job; ``metrics`` receives the plan's **final** state via
        :func:`~repro.obs.metrics.fold_plan` once every outcome is in —
        a deterministic fold in plan order, so the end-of-plan registry
        snapshot is byte-identical between serial and parallel
        execution (live heartbeat gauges are wiped by the fold).
        """
        executor = executor or SerialExecutor()
        total = len(self._jobs)
        outcomes: Dict[str, Outcome] = {}
        pending: List[Job] = []
        cached_fingerprints: List[str] = []
        done = 0
        for fingerprint, job in self._jobs.items():
            hit = cache.load(job) if cache is not None else None
            if hit is not None:
                outcomes[fingerprint] = hit
                cached_fingerprints.append(fingerprint)
                done += 1
                if progress is not None:
                    progress(done, total, job, "cached")
            else:
                pending.append(job)

        def on_done(job: Job, outcome: Outcome) -> None:
            nonlocal done
            outcomes[job.fingerprint()] = outcome
            if cache is not None and not isinstance(outcome, JobError):
                cache.store(job, outcome)
            done += 1
            if progress is not None:
                progress(done, total, job,
                         "error" if isinstance(outcome, JobError) else "ok")

        executor.run(pending, tracer=tracer, on_done=on_done,
                     trace_spec=trace_spec, beat=beat)
        if metrics is not None and metrics.enabled:
            from repro.obs.metrics import fold_plan

            fold_plan(metrics, self._jobs.values(), outcomes,
                      cached_fingerprints)
        return PlanResults({fp: outcomes[fp] for fp in self._jobs},
                           cached=len(cached_fingerprints))
