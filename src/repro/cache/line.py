"""Cache line metadata with the paper's extended tags (Section III-A, Fig. 2).

Each tag entry carries, beyond the block name:

* a **synonym bit** — distinguishes physically addressed (synonym) lines
  from ASID+VA (non-synonym) lines.  In this model the bit is implied by
  the block key's namespace flag, and exposed as a property;
* **permission bits** (2) — checked on every access to a non-synonym line,
  since no TLB stands between the core and the data.  Writes to r/o lines
  raise a permission fault that the OS handles (e.g. copy-on-write for
  content-shared pages, Section III-D);
* a **coherence state** (MESI) — the paper's single-name-per-block rule
  makes ordinary coherence sufficient; no reverse maps are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.address import is_physical_key

STATE_INVALID = "I"
STATE_SHARED = "S"
STATE_EXCLUSIVE = "E"
STATE_MODIFIED = "M"

PERM_READ = 0x1
PERM_WRITE = 0x2
PERM_RW = PERM_READ | PERM_WRITE


class PermissionFault(Exception):
    """Raised when an access violates a cached line's permission bits."""

    def __init__(self, block_key: int, is_write: bool) -> None:
        super().__init__(f"permission fault on block {block_key:#x} "
                         f"({'write' if is_write else 'read'})")
        self.block_key = block_key
        self.is_write = is_write


@dataclass(slots=True)
class CacheLine:
    """One resident block: name, dirtiness, permissions, coherence state."""

    key: int
    dirty: bool = False
    permissions: int = PERM_RW
    state: str = STATE_EXCLUSIVE

    @property
    def is_synonym(self) -> bool:
        """The synonym tag bit: True for physically addressed lines."""
        return is_physical_key(self.key)

    def check_permission(self, is_write: bool) -> None:
        """Raise :class:`PermissionFault` when the access is not allowed."""
        needed = PERM_WRITE if is_write else PERM_READ
        if not (self.permissions & needed):
            raise PermissionFault(self.key, is_write)
