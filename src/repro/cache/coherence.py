"""Directory-based MESI coherence protocol engine.

The paper's synonym argument is a *coherence* argument: because every
physical block has exactly one name in the hierarchy (ASID+VA or PA),
the ordinary hardware coherence protocol keeps synonym data coherent
with no reverse maps, extra tags, or self-invalidation (Section III-A).
This module implements that ordinary protocol precisely — a home
directory per block plus per-core MESI caches exchanging an explicit
message vocabulary — so the claim can be tested against the protocol
itself rather than the simplified copy-set bookkeeping the performance
model uses.

Protocol summary (directory MESI, invalidation-based):

* ``GetS``  — read request.  Directory forwards from the owner (if M)
  or supplies data; requester ends Shared (or Exclusive if sole).
* ``GetM``  — write request.  Directory invalidates sharers / recalls
  the owner; requester ends Modified.
* ``PutM``  — owner write-back on eviction; directory becomes clean.
* ``Inv`` / ``Fwd-GetS`` / ``Fwd-GetM`` — directory-to-cache traffic.

The engine is functional (message counting, state machines) and
deliberately decoupled from the timing model: the hierarchy in
``repro.cache.hierarchy`` approximates its effects cheaply during
performance runs, while tests drive this engine directly to verify the
invariants (SWMR, data-value coherence via version numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.stats import StatGroup

STATE_I = "I"
STATE_S = "S"
STATE_E = "E"
STATE_M = "M"

MSG_GETS = "GetS"
MSG_GETM = "GetM"
MSG_PUTM = "PutM"
MSG_PUTS = "PutS"
MSG_INV = "Inv"
MSG_FWD_GETS = "Fwd-GetS"
MSG_FWD_GETM = "Fwd-GetM"
MSG_DATA = "Data"
MSG_INV_ACK = "Inv-Ack"


class CoherenceViolation(Exception):
    """An invariant (e.g. single-writer/multiple-reader) was broken."""


@dataclass
class DirectoryEntry:
    """Home-node state for one block."""

    owner: Optional[int] = None        # core holding M/E, if any
    sharers: Set[int] = field(default_factory=set)
    version: int = 0                   # abstract data version (for tests)

    @property
    def state(self) -> str:
        if self.owner is not None:
            return STATE_M
        if self.sharers:
            return STATE_S
        return STATE_I


@dataclass
class CoherentLine:
    """One block in a core's cache."""

    state: str = STATE_I
    version: int = 0


class CoherenceEngine:
    """A directory plus N core-side caches, driven by load/store/evict."""

    def __init__(self, cores: int, stats: StatGroup | None = None) -> None:
        if cores < 1:
            raise ValueError("at least one core required")
        self.cores = cores
        self.stats = stats or StatGroup("coherence")
        self._directory: Dict[int, DirectoryEntry] = {}
        self._caches: List[Dict[int, CoherentLine]] = [dict() for _ in range(cores)]
        self._messages: List[Tuple[str, int, int]] = []  # (type, core, block)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _entry(self, block: int) -> DirectoryEntry:
        if block not in self._directory:
            self._directory[block] = DirectoryEntry()
        return self._directory[block]

    def _line(self, core: int, block: int) -> CoherentLine:
        cache = self._caches[core]
        if block not in cache:
            cache[block] = CoherentLine()
        return cache[block]

    def _send(self, msg_type: str, core: int, block: int) -> None:
        self._messages.append((msg_type, core, block))
        self.stats.add(f"msg_{msg_type}")
        self.stats.add("messages")

    # ------------------------------------------------------------------ #
    # Core-visible operations
    # ------------------------------------------------------------------ #

    def load(self, core: int, block: int) -> int:
        """Read a block; returns the data version observed."""
        self.stats.add("loads")
        line = self._line(core, block)
        if line.state in (STATE_M, STATE_E, STATE_S):
            self.stats.add("load_hits")
            return line.version
        entry = self._entry(block)
        self._send(MSG_GETS, core, block)
        if entry.owner is not None:
            # Forward from the M/E owner, who downgrades to Shared.
            owner_line = self._line(entry.owner, block)
            self._send(MSG_FWD_GETS, entry.owner, block)
            entry.version = owner_line.version
            owner_line.state = STATE_S
            entry.sharers.add(entry.owner)
            entry.owner = None
        self._send(MSG_DATA, core, block)
        if entry.sharers:
            line.state = STATE_S
            entry.sharers.add(core)
        else:
            # Sole copy: Exclusive, tracked as the directory's owner.
            line.state = STATE_E
            entry.owner = core
        line.version = entry.version
        return line.version

    def store(self, core: int, block: int) -> int:
        """Write a block; returns the new data version."""
        self.stats.add("stores")
        line = self._line(core, block)
        entry = self._entry(block)
        if line.state == STATE_M:
            self.stats.add("store_hits")
            line.version += 1
            return line.version
        if line.state == STATE_E:
            # Silent E->M upgrade; the directory already records us as
            # the owner, so no traffic is needed.
            assert entry.owner == core
            self.stats.add("silent_upgrades")
            line.state = STATE_M
            line.version += 1
            return line.version
        self._send(MSG_GETM, core, block)
        if entry.owner is not None and entry.owner != core:
            owner_line = self._line(entry.owner, block)
            self._send(MSG_FWD_GETM, entry.owner, block)
            entry.version = owner_line.version
            owner_line.state = STATE_I
            entry.owner = None
        for sharer in list(entry.sharers):
            if sharer != core:
                self._send(MSG_INV, sharer, block)
                self._line(sharer, block).state = STATE_I
                self._send(MSG_INV_ACK, core, block)
        base_version = max(entry.version, line.version)
        entry.sharers.clear()
        entry.owner = core
        line.state = STATE_M
        line.version = base_version + 1
        self._send(MSG_DATA, core, block)
        return line.version

    def evict(self, core: int, block: int) -> None:
        """Drop a block from a core's cache (capacity/conflict victim)."""
        cache = self._caches[core]
        line = cache.get(block)
        if line is None or line.state == STATE_I:
            return
        entry = self._entry(block)
        if line.state == STATE_M:
            self._send(MSG_PUTM, core, block)
            entry.version = line.version
            entry.owner = None
            self.stats.add("writebacks")
        elif line.state == STATE_E:
            # Clean exclusive copy: tell the home it is gone.
            self._send(MSG_PUTS, core, block)
            entry.version = max(entry.version, line.version)
            if entry.owner == core:
                entry.owner = None
        else:
            self._send(MSG_PUTS, core, block)
            entry.sharers.discard(core)
        del cache[block]

    # ------------------------------------------------------------------ #
    # Invariants & inspection
    # ------------------------------------------------------------------ #

    def state_of(self, core: int, block: int) -> str:
        line = self._caches[core].get(block)
        return line.state if line else STATE_I

    def directory_state(self, block: int) -> str:
        return self._entry(block).state

    def check_invariants(self) -> None:
        """Raise :class:`CoherenceViolation` on any broken invariant.

        * SWMR: at most one M/E copy; no S copies coexist with an M copy.
        * Directory accuracy: owner/sharer lists match cache states.
        * Version coherence: every S copy holds the latest version.
        """
        blocks = set(self._directory)
        for cache in self._caches:
            blocks.update(cache)
        for block in blocks:
            entry = self._entry(block)
            owners = [c for c in range(self.cores)
                      if self.state_of(c, block) in (STATE_M, STATE_E)]
            sharers = [c for c in range(self.cores)
                       if self.state_of(c, block) == STATE_S]
            if len(owners) > 1:
                raise CoherenceViolation(
                    f"block {block:#x}: multiple owners {owners}")
            if owners and sharers:
                raise CoherenceViolation(
                    f"block {block:#x}: owner {owners} with sharers {sharers}")
            if owners and self.state_of(owners[0], block) == STATE_M:
                if entry.owner != owners[0]:
                    raise CoherenceViolation(
                        f"block {block:#x}: directory owner {entry.owner} "
                        f"but cache owner {owners[0]}")
            for sharer in sharers:
                if sharer not in entry.sharers:
                    raise CoherenceViolation(
                        f"block {block:#x}: sharer {sharer} unknown to "
                        f"the directory")
                line = self._caches[sharer][block]
                latest = self._latest_version(block)
                if line.version != latest:
                    raise CoherenceViolation(
                        f"block {block:#x}: sharer {sharer} holds stale "
                        f"version {line.version} != {latest}")

    def _latest_version(self, block: int) -> int:
        entry = self._entry(block)
        latest = entry.version
        for cache in self._caches:
            line = cache.get(block)
            if line and line.state != STATE_I:
                latest = max(latest, line.version)
        return latest

    def message_log(self) -> List[Tuple[str, int, int]]:
        return list(self._messages)
