"""Virtually/physically addressed cache hierarchy with extended tags."""

from repro.cache.coherence import (
    CoherenceEngine,
    CoherenceViolation,
    DirectoryEntry,
)
from repro.cache.hierarchy import CacheAccessResult, CacheHierarchy, page_block_keys
from repro.cache.line import (
    CacheLine,
    PERM_READ,
    PERM_RW,
    PERM_WRITE,
    PermissionFault,
    STATE_EXCLUSIVE,
    STATE_INVALID,
    STATE_MODIFIED,
    STATE_SHARED,
)
from repro.cache.setassoc import SetAssociativeCache

__all__ = [
    "CoherenceEngine",
    "CoherenceViolation",
    "DirectoryEntry",
    "CacheAccessResult",
    "CacheHierarchy",
    "page_block_keys",
    "CacheLine",
    "PERM_READ",
    "PERM_RW",
    "PERM_WRITE",
    "PermissionFault",
    "STATE_EXCLUSIVE",
    "STATE_INVALID",
    "STATE_MODIFIED",
    "STATE_SHARED",
    "SetAssociativeCache",
]
