"""Generic set-associative, write-back, LRU cache over packed block keys.

Indexing uses the low bits of the block key, which are the block-address
bits of either namespace — so non-synonym lines are indexed by virtual
address and synonym lines by physical address, as the hybrid design
requires.  The ASID/namespace bits live in the upper key bits and act as
tag extensions, matching the paper's Figure 2 layout.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.cache.line import CacheLine, PERM_RW, STATE_EXCLUSIVE
from repro.common.params import CacheConfig
from repro.common.stats import StatGroup

EvictionCallback = Callable[[CacheLine], None]


class SetAssociativeCache:
    """One cache level.  Sets are insertion-ordered dicts (LRU order)."""

    def __init__(self, config: CacheConfig, name: str = "cache",
                 stats: StatGroup | None = None) -> None:
        self.config = config
        self.name = name
        self.stats = stats or StatGroup(name)
        sets = config.sets
        if sets & (sets - 1):
            raise ValueError(f"{name}: set count {sets} must be a power of two")
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(sets)]
        self._set_mask = sets - 1
        self._eviction_callback: Optional[EvictionCallback] = None

    @property
    def latency(self) -> int:
        return self.config.latency

    def on_eviction(self, callback: EvictionCallback) -> None:
        """Register a callback invoked with every evicted line.

        The hierarchy uses this for inclusive back-invalidation (LLC
        evictions purge inner copies) and for dirty write-back routing.
        """
        self._eviction_callback = callback

    def _set_for(self, key: int) -> Dict[int, CacheLine]:
        return self._sets[key & self._set_mask]

    def lookup(self, key: int, is_write: bool = False) -> Optional[CacheLine]:
        """Probe for a block; on hit, refresh LRU and set dirty for writes."""
        self.stats.add("lookups")
        cache_set = self._set_for(key)
        line = cache_set.get(key)
        if line is None:
            self.stats.add("misses")
            return None
        del cache_set[key]
        cache_set[key] = line
        if is_write:
            line.dirty = True
        self.stats.add("hits")
        return line

    def probe(self, key: int) -> Optional[CacheLine]:
        """Residence check without LRU or counter side effects."""
        return self._set_for(key).get(key)

    def fill(self, line: CacheLine) -> Optional[CacheLine]:
        """Install a line, evicting LRU if the set is full.

        Returns the victim (after the eviction callback has seen it).
        """
        cache_set = self._set_for(line.key)
        victim = None
        if line.key in cache_set:
            del cache_set[line.key]
        elif len(cache_set) >= self.config.ways:
            oldest_key = next(iter(cache_set))
            victim = cache_set.pop(oldest_key)
            self.stats.add("evictions")
            if victim.dirty:
                self.stats.add("writebacks")
            if self._eviction_callback is not None:
                self._eviction_callback(victim)
        cache_set[line.key] = line
        self.stats.add("fills")
        return victim

    def insert(self, key: int, dirty: bool = False, permissions: int = PERM_RW,
               state: str = STATE_EXCLUSIVE) -> Optional[CacheLine]:
        """Convenience fill from raw fields."""
        return self.fill(CacheLine(key=key, dirty=dirty, permissions=permissions,
                                   state=state))

    def invalidate(self, key: int) -> Optional[CacheLine]:
        """Remove one block (coherence invalidation / page flush)."""
        cache_set = self._set_for(key)
        line = cache_set.pop(key, None)
        if line is not None:
            self.stats.add("invalidations")
        return line

    def invalidate_many(self, keys: Iterable[int]) -> int:
        """Remove several blocks; returns how many were resident."""
        return sum(1 for key in keys if self.invalidate(key) is not None)

    def update_permissions(self, key: int, permissions: int) -> bool:
        """Rewrite a resident line's permission bits (Section III-D downgrades)."""
        line = self.probe(key)
        if line is None:
            return False
        line.permissions = permissions
        self.stats.add("permission_updates")
        return True

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_keys(self) -> List[int]:
        """All resident block keys (test/inspection helper)."""
        return [key for cache_set in self._sets for key in cache_set]

    def __contains__(self, key: int) -> bool:
        return self.probe(key) is not None
