"""Three-level cache hierarchy: private L1/L2 per core, shared inclusive LLC.

All levels store blocks under packed namespace keys, so one hierarchy
serves the physically addressed baseline (keys are always physical) and
the hybrid design (ASID+VA keys for non-synonyms, PA keys for synonyms)
without change — precisely the paper's point that a block has one name.

Coherence follows from the single-name property: a directory of private
copies keyed by block name invalidates remote copies on writes.  The LLC
is inclusive; its evictions back-invalidate inner copies so the OS's
per-page flushes only have to visit the hierarchy once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.cache.line import (
    CacheLine,
    PERM_RW,
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_SHARED,
)
from repro.cache.setassoc import SetAssociativeCache
from repro.common.address import BLOCK_SIZE, PAGE_SIZE
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.obs.events import STAGE_CACHE
from repro.obs.tracer import NULL_TRACER


@dataclass(slots=True)
class CacheAccessResult:
    """Outcome of one hierarchy access."""

    hit_level: str          # "l1" | "l2" | "llc" | "memory"
    latency: int            # cycles spent in the cache levels probed
    llc_miss: bool          # True when the request must go to memory
    writeback: bool = False  # a dirty LLC victim went to memory


class CacheHierarchy:
    """Per-core L1/L2 + shared inclusive LLC with copy-set coherence."""

    def __init__(self, config: SystemConfig, stats: StatGroup | None = None) -> None:
        self.config = config
        self.stats = stats or StatGroup("cache_hierarchy")
        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1, f"l1_core{c}") for c in range(config.cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l2, f"l2_core{c}") for c in range(config.cores)
        ]
        self.llc = SetAssociativeCache(config.llc, "llc")
        self.llc.on_eviction(self._back_invalidate)
        # Directory of private-cache copies: block key -> cores holding it.
        self._copies: Dict[int, Set[int]] = {}
        # Installed by MmuBase.attach_tracer; the null tracer never records.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------ #
    # Coherence plumbing
    # ------------------------------------------------------------------ #

    def _back_invalidate(self, victim: CacheLine) -> None:
        """Inclusive LLC eviction: purge every inner copy of the victim."""
        holders = self._copies.pop(victim.key, None)
        if not holders:
            return
        for core in holders:
            self.l1[core].invalidate(victim.key)
            self.l2[core].invalidate(victim.key)
        self.stats.add("back_invalidations", len(holders))

    def _invalidate_remote_copies(self, key: int, writer: int) -> None:
        """Write by ``writer``: invalidate all other cores' private copies."""
        holders = self._copies.get(key)
        if not holders:
            return
        remote = [core for core in holders if core != writer]
        for core in remote:
            self.l1[core].invalidate(key)
            self.l2[core].invalidate(key)
            holders.discard(core)
        if remote:
            self.stats.add("coherence_invalidations", len(remote))

    def _note_copy(self, key: int, core: int) -> None:
        self._copies.setdefault(key, set()).add(core)

    # ------------------------------------------------------------------ #
    # The access path
    # ------------------------------------------------------------------ #

    def access(self, core: int, key: int, is_write: bool,
               permissions: int = PERM_RW) -> CacheAccessResult:
        """Look up a block through L1 → L2 → LLC, filling on the way back.

        ``permissions`` are the page permissions installed on a memory
        fill (the delayed translation supplies them for non-synonym lines,
        Section III-A).  Permission *checking* is the caller's job via the
        returned/probed line, because the fault semantics differ per MMU.
        """
        result = self._access(core, key, is_write, permissions)
        if self.tracer.recording:
            self.tracer.stage(STAGE_CACHE, cycles=result.latency,
                              hit_level=result.hit_level, write=is_write)
        return result

    def _access(self, core: int, key: int, is_write: bool,
                permissions: int) -> CacheAccessResult:
        self.stats.add("accesses")
        latency = 0
        shared_state = STATE_MODIFIED if is_write else STATE_SHARED

        l1 = self.l1[core]
        latency += l1.latency
        line = l1.lookup(key, is_write)
        if line is not None:
            if is_write:
                line.state = STATE_MODIFIED
                self._invalidate_remote_copies(key, core)
            return CacheAccessResult("l1", latency, llc_miss=False)

        l2 = self.l2[core]
        latency += l2.latency
        line = l2.lookup(key, is_write)
        if line is not None:
            l1.fill(CacheLine(key, line.dirty, line.permissions, shared_state))
            if is_write:
                self._invalidate_remote_copies(key, core)
            self._note_copy(key, core)
            return CacheAccessResult("l2", latency, llc_miss=False)

        latency += self.llc.latency
        line = self.llc.lookup(key, is_write)
        if line is not None:
            perms = line.permissions
            l2.fill(CacheLine(key, False, perms, shared_state))
            l1.fill(CacheLine(key, is_write, perms, shared_state))
            if is_write:
                self._invalidate_remote_copies(key, core)
            self._note_copy(key, core)
            return CacheAccessResult("llc", latency, llc_miss=False)

        # Memory fill: install in all levels (inclusive).
        self.stats.add("llc_misses")
        victim = self.llc.fill(CacheLine(key, is_write, permissions, STATE_EXCLUSIVE))
        writeback = victim is not None and victim.dirty
        if writeback:
            self.stats.add("memory_writebacks")
        l2.fill(CacheLine(key, False, permissions, shared_state))
        l1.fill(CacheLine(key, is_write, permissions, shared_state))
        if is_write:
            self._invalidate_remote_copies(key, core)
        self._note_copy(key, core)
        return CacheAccessResult("memory", latency, llc_miss=True, writeback=writeback)

    def probe_line(self, core: int, key: int) -> Optional[CacheLine]:
        """Return the closest resident copy of a block without side effects."""
        return (self.l1[core].probe(key) or self.l2[core].probe(key)
                or self.llc.probe(key))

    # ------------------------------------------------------------------ #
    # OS-directed maintenance
    # ------------------------------------------------------------------ #

    def flush_blocks(self, keys: Iterable[int]) -> int:
        """Invalidate blocks everywhere (page remap / deallocation /
        synonym-status change, Section III-A).  Returns lines dropped."""
        dropped = 0
        for key in keys:
            holders = self._copies.pop(key, set())
            for core in holders:
                if self.l1[core].invalidate(key) is not None:
                    dropped += 1
                if self.l2[core].invalidate(key) is not None:
                    dropped += 1
            if self.llc.invalidate(key) is not None:
                dropped += 1
        self.stats.add("page_flush_lines", dropped)
        return dropped

    def downgrade_blocks(self, keys: Iterable[int], permissions: int) -> int:
        """Rewrite permissions on resident copies (r/o sharing, Section III-D)."""
        changed = 0
        for key in keys:
            for core in self._copies.get(key, set()):
                self.l1[core].update_permissions(key, permissions)
                self.l2[core].update_permissions(key, permissions)
            if self.llc.update_permissions(key, permissions):
                changed += 1
        return changed

    def total_latency_floor(self) -> int:
        """L1+L2+LLC probe latency — the cycles an LLC miss has already paid."""
        return self.l1[0].latency + self.l2[0].latency + self.llc.latency


def page_block_keys(block_key_of_base: int, page_size: int = PAGE_SIZE,
                    block_size: int = BLOCK_SIZE) -> List[int]:
    """Enumerate the packed keys of every block in a page.

    ``block_key_of_base`` must be the packed key of the page's first block;
    consecutive blocks in a page differ by 1 in the packed representation
    (both namespaces place block-address bits in the low bits).
    """
    return [block_key_of_base + i for i in range(page_size // block_size)]
