"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``workloads``  — list the calibrated workload catalog;
* ``configs``    — list MMU configurations (proposed + baselines + prior);
* ``run``        — simulate one (workload, configuration) point;
* ``compare``    — one workload across several configurations;
* ``sweep``      — delayed-TLB size sweep (Figure 4 style);
* ``profile``    — per-stage cycle attribution and latency histograms,
  for one point or an aggregated ``--sizes`` sweep;
* ``trace``      — the trace-analysis surface: ``trace view`` analyzes
  recorded JSONL event traces offline, ``trace workload`` profiles a
  workload's address stream (``analyze`` remains as an alias);
* ``bench``      — benchmark baselines: ``record`` / ``check`` /
  ``migrate`` (the regression gate);
* ``db``         — the cross-run metrics store: ``ingest`` recorded
  JSON documents into a SQLite history, ``query`` and ``trend`` it;
* ``report``     — the self-contained HTML report: ``report build``
  folds recorded JSON documents (+ optional trace shards and a ``--db``
  history) into one static page with the paper-fidelity scorecard,
  ``report bench`` renders a ``repro.bench.report/v1`` gate report;
* ``serve``      — the long-lived simulation service: accepts
  ``repro.job/v1`` submissions over HTTP, coalesces duplicate in-flight
  requests by fingerprint, serves cache hits from ``--cache-dir``, and
  applies admission control on a bounded queue; SIGTERM drains
  in-flight jobs before exit (see ``docs/serving.md``);
* ``experiments``— map paper artifacts to their benchmark modules.

``run``/``compare``/``sweep``/``profile`` share the observability flags:
``--json`` (schema-stable document), ``--interval N`` (windowed stat
time series), ``--trace-out FILE`` (JSONL pipeline events) and
``--sample-every N`` (trace sampling).  See ``docs/observability.md``.

``run``/``compare``/``sweep``/``profile`` additionally take the
execution-engine flags: ``--workers N`` fans the independent simulation
points across a process pool, and ``--cache-dir DIR`` reuses
fingerprint-keyed results from earlier invocations so only changed
points are re-simulated.  With ``--workers N`` a ``--trace-out BASE``
becomes a family of per-job shards (``BASE.<fingerprint>.jsonl``, each
opened inside its worker); ``repro trace view BASE.*.jsonl`` merges
them.  See ``docs/execution.md``.

Live telemetry (``docs/observability.md``, "Live telemetry"): the same
four subcommands take ``--live`` (in-place stderr status line fed by
worker heartbeats: jobs done, throughput, ETA, stale workers),
``--metrics-port N`` (a stdlib HTTP ``/metrics`` endpoint in Prometheus
text format for the duration of the run; port 0 binds an ephemeral
port, printed to stderr) and ``--metrics-out FILE`` (JSONL registry
snapshots, appended periodically and once more after the deterministic
end-of-plan fold).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.common.params import SystemConfig
from repro.common.stats import mpki
from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
from repro.obs.aggregate import PROFILE_SCHEMA, aggregate_results
from repro.obs.heartbeat import (BeatSpec, HeartbeatMonitor, LiveStatus,
                                 StaleWorker, open_beat_channel)
from repro.obs.metrics import MetricsRegistry, MetricsServer, SnapshotLog
from repro.obs.tracer import Tracer, TraceSpec
from repro.obs.traceview import read_trace
from repro.sim import (
    MMU_CONFIGS,
    PRIOR_CONFIGS,
    compare_configs,
    run_workload,
    sweep_config,
    sweep_delayed_tlb,
)
from repro.sim.report import (
    breakdown_chart,
    cycle_attribution,
    histogram_chart,
    horizontal_bars,
    markdown_table,
    series_table,
)
from repro.workloads import all_specs, analyze as analyze_trace, names

EXPERIMENTS = (
    ("Table I", "benchmarks/test_table1_sharing.py",
     "r/w shared area and access ratios"),
    ("Table II", "benchmarks/test_table2_synonym_filter.py",
     "synonym-filter false positives, TLB access/miss reduction"),
    ("Figure 4", "benchmarks/test_fig4_delayed_tlb_mpki.py",
     "delayed-TLB MPKI vs. size"),
    ("Table III", "benchmarks/test_table3_segments.py",
     "segments, RMM MPKI, utilization"),
    ("Figure 7", "benchmarks/test_fig7_index_cache.py",
     "index-cache size sensitivity"),
    ("Figure 9", "benchmarks/test_fig9_native_performance.py",
     "native performance"),
    ("Figure 10*", "benchmarks/test_fig10_virtualization.py",
     "virtualized performance"),
    ("Figure 11*", "benchmarks/test_fig11_energy.py",
     "translation energy"),
    ("Ablations", "benchmarks/test_ablations.py",
     "filter granularity, SC size, allocation policy"),
    ("Prior schemes", "benchmarks/test_prior_schemes.py",
     "direct segment / RMM / Enigma comparison"),
)


def _system_config(args) -> SystemConfig:
    config = SystemConfig()
    if getattr(args, "llc_mb", None):
        config = config.with_llc_size(args.llc_mb * 1024 * 1024)
    if getattr(args, "delayed_entries", None):
        config = config.with_delayed_tlb_entries(args.delayed_entries)
    return config


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _trace_setup(args):
    """``(tracer, trace_spec)`` from the ``--trace-out`` family of flags.

    Serial execution records into one shared stream (byte-identical to
    the historical behavior); with ``--workers N > 1`` each job gets its
    own shard, ``<out>.<fingerprint>.jsonl``, opened inside the worker.
    """
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return None, None
    sample_every = getattr(args, "sample_every", 1) or 1
    if (getattr(args, "workers", None) or 1) > 1:
        return None, TraceSpec(base=trace_out, sample_every=sample_every)
    try:
        return Tracer(sample_every=sample_every, sink=trace_out), None
    except OSError as exc:
        raise SystemExit(f"repro: cannot open trace sink {trace_out!r}: {exc}")


def _finish_trace(tracer: Optional[Tracer],
                  trace_spec: Optional[TraceSpec]) -> None:
    """Close a shared tracer / report where the shards landed."""
    if tracer is not None:
        tracer.close()
    if trace_spec is not None:
        shards = trace_spec.shards()
        print(f"repro: {len(shards)} trace shard(s) at "
              f"{trace_spec.base}.<fingerprint>.jsonl "
              f"(merge with: repro trace view {trace_spec.base}.*.jsonl)",
              file=sys.stderr)


def _executor(args):
    """Engine executor from ``--workers`` (serial unless N > 1)."""
    workers = getattr(args, "workers", None) or 1
    if workers > 1:
        return ParallelExecutor(workers=workers)
    return SerialExecutor()


def _cache(args) -> Optional[ResultCache]:
    cache_dir = getattr(args, "cache_dir", None)
    return ResultCache(cache_dir) if cache_dir else None


class _ProgressReporter:
    """Stderr progress lines plus a final one-line summary.

    Per-job lines say what actually happened — ``ran`` (simulated),
    ``cached`` (reused) or ``error`` — and once the last job resolves a
    single summary line totals them.  Under ``--live`` the in-place
    status line replaces the per-job lines and the summary is deferred
    to telemetry teardown (after the live line's terminal newline).
    """

    _LABELS = {"ok": "ran", "cached": "cached", "error": "error"}

    def __init__(self, live: Optional[LiveStatus] = None) -> None:
        self.ran = 0
        self.cached = 0
        self.failed = 0
        self._live = live
        self._summarized = False

    def __call__(self, done, total, job, status) -> None:
        if status == "cached":
            self.cached += 1
        elif status == "error":
            self.failed += 1
        else:
            self.ran += 1
        if self._live is not None:
            self._live.job_done(done, total, status)
            self._live.update()
        else:
            print(f"[{done}/{total}] {job.workload_name}/{job.mmu} "
                  f"{self._LABELS.get(status, status)}", file=sys.stderr)
            if done == total:
                self.summarize()

    def summarize(self) -> None:
        if self._summarized:
            return
        self._summarized = True
        print(f"repro: {self.ran} ran, {self.cached} cached, "
              f"{self.failed} failed", file=sys.stderr)


def _progress(args, telemetry: "Optional[_Telemetry]" = None):
    """Progress callback — engine flags or live telemetry turn it on;
    the default serial path stays byte-identical with ``None``."""
    live = telemetry.live_status if telemetry is not None else None
    if live is None \
            and (getattr(args, "workers", None) or 1) <= 1 \
            and not getattr(args, "cache_dir", None):
        return None
    reporter = _ProgressReporter(live=live)
    if telemetry is not None:
        telemetry.reporter = reporter
    return reporter


class _Telemetry:
    """One lifecycle for ``--live`` / ``--metrics-port`` / ``--metrics-out``.

    Inert (every attribute ``None``) unless one of the flags is set.
    When active it owns the metrics registry, the heartbeat channel
    (manager included under ``--workers``), the monitor thread, the
    optional ``/metrics`` server and the optional JSONL snapshot log;
    :meth:`finish` tears all of it down in the right order and appends
    the final post-fold snapshot so the log always ends on the
    deterministic end-of-plan state.
    """

    def __init__(self, args) -> None:
        self.registry: Optional[MetricsRegistry] = None
        self.beat: Optional[BeatSpec] = None
        self.live_status: Optional[LiveStatus] = None
        self.reporter: Optional[_ProgressReporter] = None
        self._monitor: Optional[HeartbeatMonitor] = None
        self._manager = None
        self._server: Optional[MetricsServer] = None
        self._log: Optional[SnapshotLog] = None
        live = bool(getattr(args, "live", False))
        port = getattr(args, "metrics_port", None)
        out = getattr(args, "metrics_out", None)
        self.active = live or port is not None or bool(out)
        if not self.active:
            return
        self.registry = MetricsRegistry()
        queue, self._manager = open_beat_channel(
            parallel=(getattr(args, "workers", None) or 1) > 1)
        self.beat = BeatSpec(queue=queue)
        if live:
            self.live_status = LiveStatus()
        if out:
            try:
                self._log = SnapshotLog(out)
            except OSError as exc:
                raise SystemExit(
                    f"repro: cannot open metrics log {out!r}: {exc}")
        self._monitor = HeartbeatMonitor(
            queue, registry=self.registry, on_stale=self._report_stale,
            live=self.live_status, snapshot_log=self._log)
        if port is not None:
            try:
                self._server = MetricsServer(self.registry,
                                             port=port).start()
            except OSError as exc:
                raise SystemExit(
                    f"repro: cannot serve /metrics on port {port}: {exc}")
            print(f"repro: serving /metrics on "
                  f"http://{self._server.host}:{self._server.port}/metrics",
                  file=sys.stderr)
        self._monitor.start()

    def _report_stale(self, finding: StaleWorker) -> None:
        status = finding.status
        print(f"\nrepro: stale worker: {status.workload}/{status.mmu} "
              f"({status.job[:12]}, pid {status.pid}) silent for "
              f"{finding.silent_s:.0f}s at "
              f"{status.done}/{status.total} accesses", file=sys.stderr)

    def finish(self) -> None:
        """Stop the monitor, close the channel, flush the final state."""
        if not self.active:
            return
        if self._monitor is not None:
            self._monitor.stop()
        if self.live_status is not None:
            self.live_status.finish(self._monitor)
        if self.reporter is not None and self.live_status is not None:
            self.reporter.summarize()
        if self._log is not None:
            self._log.append(self.registry)
            print(f"repro: {self._log.appended} metrics snapshot(s) "
                  f"appended", file=sys.stderr)
            self._log.close()
        if self._server is not None:
            self._server.close()
        if self._manager is not None:
            self._manager.shutdown()


def _write_report_out(args, *docs, label: str) -> None:
    """``--report-out FILE``: fold this command's documents into a
    self-contained HTML report (see ``repro report build``)."""
    out = getattr(args, "report_out", None)
    if not out:
        return
    from repro.report import ReportBundle, build_report

    bundle = ReportBundle()
    for doc in docs:
        bundle.add_doc(doc, source=label)
    try:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(build_report(bundle))
    except OSError as exc:
        raise SystemExit(f"repro: cannot write report {out!r}: {exc}")
    print(f"repro: HTML report written to {out}", file=sys.stderr)


def _json_interval(args) -> Optional[int]:
    """Interval for machine-readable output: explicit flag, or a tenth
    of the timed window so ``--json`` documents always carry a series."""
    if getattr(args, "interval", None):
        return args.interval
    if getattr(args, "json", False):
        return max(1, args.accesses // 10)
    return None


def cmd_workloads(_args) -> None:
    rows = []
    for s in all_specs():
        sharing = (f"{s.sharing.processes}p/"
                   f"{100 * s.sharing.area_fraction:.0f}%area"
                   if s.sharing else "-")
        patterns = "+".join(m.kind for m in s.patterns)
        rows.append([s.name, f"{s.footprint_bytes // (1 << 20)}MB", patterns,
                     f"{s.mem_ratio:.2f}", f"{s.mlp:.1f}", sharing])
    print(markdown_table(
        ["workload", "footprint", "patterns", "mem ratio", "MLP", "sharing"],
        rows))


def cmd_configs(_args) -> None:
    descriptions = {
        "baseline": "conventional two-level TLBs, physical caches",
        "ideal": "no-TLB-miss upper bound",
        "hybrid_tlb": "hybrid virtual caching + delayed TLB",
        "hybrid_segments": "hybrid + many-segment translation (with SC)",
        "hybrid_segments_nosc": "many-segment without the segment cache",
        "direct_segment": "one range + paging (Basu et al.)",
        "rmm": "32 core-side ranges (Karakostas et al.)",
        "enigma": "intermediate addresses + delayed page TLB (Zhang et al.)",
        "baseline_thp": "conventional MMU + transparent 2 MB huge pages",
    }
    rows = [[name, descriptions.get(name, "")]
            for name in MMU_CONFIGS + PRIOR_CONFIGS]
    print(markdown_table(["configuration", "description"], rows))


def cmd_run(args) -> None:
    telemetry = _Telemetry(args)
    tracer, trace_spec = _trace_setup(args)
    try:
        result = run_workload(args.workload, args.config,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=_json_interval(args), tracer=tracer,
                              trace_spec=trace_spec,
                              executor=_executor(args), cache=_cache(args),
                              progress=_progress(args, telemetry),
                              metrics=telemetry.registry,
                              beat=telemetry.beat)
    finally:
        _finish_trace(tracer, trace_spec)
        telemetry.finish()
    doc = result.to_json_dict()
    doc["config"] = args.config
    _write_report_out(args, doc, label=f"run {args.workload}/{args.config}")
    if args.json:
        print(json.dumps(doc, indent=2))
        return
    print(f"workload={result.workload} config={result.mmu}")
    print(f"instructions={result.instructions} accesses={result.accesses}")
    print(f"cycles={result.cycles:.0f} ipc={result.ipc:.4f} "
          f"llc_miss_rate={result.llc_miss_rate():.3f}")
    hybrid = result.group("hybrid")
    if hybrid:
        total = hybrid.get("accesses", 0)
        bypass = hybrid.get("tlb_bypasses", 0)
        print(f"tlb_bypass_rate={bypass / total:.3f}" if total else "")
    delayed = result.group("delayed_tlb")
    if delayed:
        print(f"delayed_tlb_mpki={mpki(delayed.get('misses', 0), result.instructions):.2f}")


def cmd_compare(args) -> None:
    configs = args.configs.split(",") if args.configs else list(MMU_CONFIGS)
    telemetry = _Telemetry(args)
    tracer, trace_spec = _trace_setup(args)
    try:
        row = compare_configs(args.workload, mmu_names=configs,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=_json_interval(args), tracer=tracer,
                              trace_spec=trace_spec,
                              executor=_executor(args), cache=_cache(args),
                              progress=_progress(args, telemetry),
                              metrics=telemetry.registry,
                              beat=telemetry.beat)
    finally:
        _finish_trace(tracer, trace_spec)
        telemetry.finish()
    normalized = row.normalized(configs[0])
    doc = {"schema": "repro.compare/v1",
           "workload": args.workload,
           "normalized_to": configs[0],
           "speedups": normalized,
           "results": {name: r.to_json_dict()
                       for name, r in row.results.items()}}
    _write_report_out(args, doc, label=f"compare {args.workload}")
    if args.json:
        print(json.dumps(doc, indent=2))
        return
    print(f"{args.workload}: performance normalized to {configs[0]}")
    print(horizontal_bars(normalized, reference=1.0))


def cmd_sweep(args) -> None:
    sizes = [int(s) for s in args.sizes.split(",")]
    telemetry = _Telemetry(args)
    tracer, trace_spec = _trace_setup(args)
    try:
        results = sweep_delayed_tlb(args.workload, sizes,
                                    accesses=args.accesses, warmup=args.warmup,
                                    seed=args.seed,
                                    interval=_json_interval(args),
                                    tracer=tracer, trace_spec=trace_spec,
                                    executor=_executor(args),
                                    cache=_cache(args),
                                    progress=_progress(args, telemetry),
                                    metrics=telemetry.registry,
                                    beat=telemetry.beat)
    finally:
        _finish_trace(tracer, trace_spec)
        telemetry.finish()
    mpkis = [r.tlb_mpki() for r in results]
    doc = {"schema": "repro.sweep/v1",
           "workload": args.workload,
           "sizes": sizes,
           "delayed_tlb_mpki": mpkis,
           "results": [r.to_json_dict() for r in results]}
    _write_report_out(args, doc, label=f"sweep {args.workload}")
    if args.json:
        print(json.dumps(doc, indent=2))
        return
    series = {args.workload: mpkis}
    print("delayed-TLB MPKI by entry count")
    print(series_table(series, [str(s) for s in sizes]))


def cmd_profile(args) -> None:
    """Per-stage cycle attribution + latency histograms.

    Without ``--sizes`` this profiles one (workload, config) point.  With
    ``--sizes A,B,...`` it sweeps ``delayed_tlb.entries`` across those
    values (optionally on ``--workers N`` processes) and renders the
    plan-level aggregate — per-stage histograms merged across every
    point, cycle breakdowns summed — which is identical however the
    points were scheduled.
    """
    if getattr(args, "sizes", None):
        _profile_sweep(args)
        return
    telemetry = _Telemetry(args)
    tracer, trace_spec = _trace_setup(args)
    try:
        result = run_workload(args.workload, args.config,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=args.interval or max(1, args.accesses // 10),
                              tracer=tracer, trace_spec=trace_spec,
                              executor=_executor(args), cache=_cache(args),
                              progress=_progress(args, telemetry),
                              metrics=telemetry.registry,
                              beat=telemetry.beat)
    finally:
        _finish_trace(tracer, trace_spec)
        telemetry.finish()
    if args.json:
        doc = result.to_json_dict()
        doc["config"] = args.config
        print(json.dumps(doc, indent=2))
        return
    manifest = result.manifest
    print(f"workload={result.workload} config={args.config} "
          f"seed={manifest.seed if manifest else args.seed}")
    if manifest:
        print(f"config_hash={manifest.config_hash} "
              f"repro={manifest.package_version} "
              f"duration={manifest.duration_s:.2f}s")
    print(f"instructions={result.instructions} accesses={result.accesses} "
          f"ipc={result.ipc:.4f}")
    print()
    print("cycle attribution by pipeline stage")
    print(cycle_attribution(result.cycle_breakdown))
    print()
    print(breakdown_chart(result.cycle_breakdown))
    for name in sorted(result.histograms):
        snap = result.histograms[name]
        if not snap.get("count"):
            continue
        print()
        print(f"histogram: {name}")
        print(histogram_chart(snap))
    if result.intervals:
        print()
        print("per-interval IPC "
              f"({result.interval} accesses per window)")
        ipcs = [s["ipc"] for s in result.intervals]
        print(series_table({"ipc": ipcs},
                           [str(s["index"]) for s in result.intervals],
                           fmt="{:8.3f}", first_header="window"))


PROFILE_SWEEP_FIELD = "delayed_tlb.entries"


def _profile_sweep(args) -> None:
    """``profile --sizes``: aggregated sweep over delayed-TLB entries."""
    sizes = [int(s) for s in args.sizes.split(",")]
    telemetry = _Telemetry(args)
    tracer, trace_spec = _trace_setup(args)
    try:
        by_size = sweep_config(args.workload, args.config,
                               PROFILE_SWEEP_FIELD, sizes,
                               base_config=_system_config(args),
                               accesses=args.accesses, warmup=args.warmup,
                               seed=args.seed,
                               interval=args.interval
                               or max(1, args.accesses // 10),
                               tracer=tracer, trace_spec=trace_spec,
                               executor=_executor(args), cache=_cache(args),
                               progress=_progress(args, telemetry),
                               metrics=telemetry.registry,
                               beat=telemetry.beat)
    finally:
        _finish_trace(tracer, trace_spec)
        telemetry.finish()
    results = [by_size[size] for size in sizes]
    aggregate = aggregate_results(results)
    if args.json:
        print(json.dumps({
            "schema": PROFILE_SCHEMA,
            "workload": args.workload,
            "config": args.config,
            "param": PROFILE_SWEEP_FIELD,
            "sizes": sizes,
            "points": [{"size": size,
                        "ipc": by_size[size].ipc,
                        "cycles": by_size[size].cycles}
                       for size in sizes],
            "aggregate": aggregate.to_json_dict(),
        }, indent=2))
        return
    print(f"workload={args.workload} config={args.config} "
          f"{PROFILE_SWEEP_FIELD}={args.sizes} seed={args.seed}")
    print(f"points={aggregate.points} "
          f"instructions={aggregate.instructions} "
          f"accesses={aggregate.accesses} ipc={aggregate.ipc:.4f}")
    print()
    print("per-point IPC")
    print(series_table({"ipc": [by_size[size].ipc for size in sizes]},
                       [str(size) for size in sizes],
                       fmt="{:8.3f}", first_header="entries"))
    print()
    print("aggregate cycle attribution by pipeline stage")
    print(cycle_attribution(aggregate.cycle_breakdown))
    print()
    print(breakdown_chart(aggregate.cycle_breakdown))
    for name in sorted(aggregate.histograms):
        snap = aggregate.histograms[name]
        if not snap.get("count"):
            continue
        print()
        print(f"histogram: {name} (merged across {aggregate.points} points)")
        print(histogram_chart(snap))


def cmd_analyze(args) -> None:
    from repro.osmodel import Kernel
    from repro.sim import lay_out

    kernel = Kernel(_system_config(args))
    workload = lay_out(args.workload, kernel, seed=args.seed)
    profile = analyze_trace(workload.trace(args.accesses))
    print(f"workload={args.workload} accesses={profile.accesses}")
    print(f"distinct pages={profile.distinct_pages} "
          f"blocks={profile.distinct_blocks} "
          f"write_fraction={profile.write_fraction:.2f}")
    print("page-popularity coverage (≈ perfect-TLB hit-rate bound):")
    for entries, share in profile.page_coverage:
        print(f"  top {entries:>6} pages -> {100 * share:5.1f}% of accesses")


def _render_run_summary(summary, heading: str) -> None:
    """Text rendering of one traceview :class:`RunSummary`."""
    print(heading)
    print(f"accesses={summary.accesses} timed={summary.timed_accesses} "
          f"total_cycles={summary.total_cycles}")
    attribution = summary.attribution()
    if any(attribution.values()):
        print()
        print("cycle attribution by phase")
        print(cycle_attribution(attribution))
    if summary.hit_levels:
        print()
        print("hit-level mix")
        total = sum(summary.hit_levels.values())
        print(horizontal_bars(
            {level: count / total
             for level, count in sorted(summary.hit_levels.items())},
            fmt="{:6.3f}"))
    for name in sorted(summary.stage_histograms):
        snap = summary.stage_histograms[name].snapshot()
        if not snap.get("count"):
            continue
        print()
        print(f"stage latency histogram: {name}")
        print(histogram_chart(snap))
    if summary.slowest:
        print()
        print(f"slowest {len(summary.slowest)} accesses")
        rows = [[record.seq, f"0x{record.va:x}",
                 "w" if record.is_write else "r",
                 record.hit_level or "-", record.total_cycles,
                 " ".join(f"{phase}={cycles}" for phase, cycles
                          in record.phase_cycles.items() if cycles)]
                for record in summary.slowest]
        print(markdown_table(
            ["seq", "va", "rw", "hit", "cycles", "phases"], rows))


def cmd_trace(args) -> Optional[int]:
    """``repro trace view|workload`` — the trace-analysis surface."""
    if args.trace_command == "workload":
        return cmd_analyze(args)
    try:
        view = read_trace(args.files, top_n=args.top)
    except OSError as exc:
        raise SystemExit(f"repro: cannot read trace: {exc}")
    if args.json:
        print(json.dumps(view.to_json_dict(args.files), indent=2))
        return None
    print(f"files={len(args.files)} events={view.events_seen} "
          f"runs={len(view.runs)}"
          + (f" skipped_lines={view.skipped_lines}"
             if view.skipped_lines else ""))
    for index, run in enumerate(view.runs):
        print()
        _render_run_summary(run, f"run {index}: {run.label}")
    if len(view.runs) > 1:
        print()
        _render_run_summary(view.overall(),
                            f"overall ({len(view.runs)} runs combined)")
    return None


def cmd_bench(args) -> Optional[int]:
    """``repro bench record|check|migrate`` — the regression gate."""
    from repro import bench

    if args.bench_command == "record":
        jobs = bench.suite_jobs(
            accesses=(args.accesses if args.accesses is not None
                      else bench.DEFAULT_ACCESSES),
            warmup=(args.warmup if args.warmup is not None
                    else bench.DEFAULT_WARMUP),
            seed=args.seed if args.seed is not None else bench.DEFAULT_SEED)
        entries = bench.run_suite(jobs, executor=_executor(args),
                                  cache=_cache(args),
                                  progress=_progress(args))
        doc = bench.make_baseline(entries)
        path = bench.save_baseline(doc, args.out)
        print(f"recorded {len(entries)} benchmark(s) -> {path}")
        for entry in entries:
            metrics = " ".join(f"{k}={v:.6g}"
                               for k, v in sorted(entry["metrics"].items()))
            print(f"  {entry['name']}: {metrics}")
        return None

    if args.bench_command == "migrate":
        status = 0
        for path in args.files:
            try:
                rewritten = bench.migrate_file(path)
            except (OSError, ValueError) as exc:
                print(f"repro: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
            print(f"{path}: {'migrated to v2' if rewritten else 'already v2'}")
        return status

    # check
    try:
        baseline = bench.load_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: cannot load baseline: {exc}")
    if args.current:
        try:
            current = bench.load_baseline(args.current)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: cannot load current document: {exc}")
    else:
        jobs = bench.jobs_from_baseline(baseline)
        if not jobs:
            raise SystemExit(
                "repro: baseline has no re-runnable benchmarks (no job "
                "parameters recorded); pass --current to compare against "
                "a pre-recorded document")
        entries = bench.run_suite(jobs, executor=_executor(args),
                                  cache=_cache(args),
                                  progress=_progress(args))
        current = bench.make_baseline(entries)
    report = bench.compare_baselines(
        baseline, current, threshold_pct=args.threshold,
        seconds_threshold_pct=args.seconds_threshold)
    if getattr(args, "db", None):
        from repro.obs.store import MetricsStore

        with MetricsStore(args.db) as store:
            # History first (prior runs only), then record this run.
            bench.attach_history(report, current, store)
            store.ingest(current, source="bench check")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown() + "\n")
    _write_report_out(args, report.to_json_dict(), current,
                      label="bench check")
    if args.json_report:
        with open(args.json_report, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        print(report.to_markdown())
    return 0 if report.ok else 1


def cmd_db(args) -> Optional[int]:
    """``repro db ingest|query|trend`` — the cross-run metrics store."""
    from repro.obs.store import MetricsStore, format_runs, format_trend

    with MetricsStore(args.db) as store:
        if args.db_command == "ingest":
            status = 0
            total = 0
            for path in args.files:
                try:
                    with open(path, encoding="utf-8") as handle:
                        doc = json.load(handle)
                    keys = store.ingest(doc, source=path)
                except (OSError, ValueError, json.JSONDecodeError) as exc:
                    print(f"repro: {path}: {exc}", file=sys.stderr)
                    status = 1
                    continue
                total += len(keys)
                print(f"{path}: {len(keys)} run(s)")
            print(f"ingested {total} run(s) -> {args.db} "
                  f"({len(store)} total)")
            return status

        if args.db_command == "query":
            rows = store.query(workload=args.workload, mmu=args.mmu,
                               metric=args.metric)
            if args.json:
                print(json.dumps([{
                    "run_key": r.run_key, "workload": r.workload,
                    "mmu": r.mmu, "package_version": r.package_version,
                    "started_at": r.started_at, "source": r.source,
                    "metrics": r.metrics} for r in rows], indent=2))
            else:
                print(format_runs(rows, metric=args.metric))
            return None

        # trend
        if args.metric is None:
            names_known = store.metric_names()
            raise SystemExit("repro: db trend needs --metric; recorded: "
                             + (", ".join(names_known) or "(none)"))
        history = store.trend(args.metric, workload=args.workload,
                              mmu=args.mmu, limit=args.limit)
        if args.json:
            print(json.dumps([{
                "run_key": run.run_key, "workload": run.workload,
                "mmu": run.mmu, "value": value,
                "started_at": run.started_at} for run, value in history],
                indent=2))
        else:
            print(format_trend(history, args.metric))
        return None


def cmd_report(args) -> Optional[int]:
    """``repro report build|bench`` — the HTML report generator."""
    from repro.report import (build_bench_report_page, build_report,
                              load_bundle)

    if args.report_command == "bench":
        try:
            with open(args.file, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"repro: cannot read gate report: {exc}")
        if doc.get("schema") != "repro.bench.report/v1":
            raise SystemExit(
                f"repro: expected a repro.bench.report/v1 document, "
                f"got {doc.get('schema')!r}")
        page = build_bench_report_page(doc, source=args.file)
        return _emit_report(page, args.out)

    # build
    try:
        bundle = load_bundle(args.files, trace_paths=args.trace or (),
                             db_path=args.db,
                             workers=getattr(args, "workers", 1) or 1)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"repro: cannot build report: {exc}")
    if not len(bundle) and not bundle.history:
        print("repro: warning: no inputs — the report will carry an "
              "all-no-data scorecard", file=sys.stderr)
    page = build_report(bundle, title=args.title)
    return _emit_report(page, args.out)


def _emit_report(page: str, out: Optional[str]) -> Optional[int]:
    if not out:
        print(page, end="")
        return None
    try:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(page)
    except OSError as exc:
        raise SystemExit(f"repro: cannot write report {out!r}: {exc}")
    print(f"repro: HTML report written to {out}", file=sys.stderr)
    return None


def cmd_serve(args) -> int:
    """``repro serve`` — the long-lived simulation service."""
    import signal
    import threading

    from repro.serve import JobService, ServeServer

    executor = (ParallelExecutor(workers=args.workers)
                if args.workers > 1 else SerialExecutor())
    service = JobService(cache=_cache(args), executor=executor,
                         max_queue=args.max_queue,
                         batch_max=args.batch_max,
                         job_timeout=args.timeout)
    try:
        server = ServeServer(service, host=args.host,
                             port=args.port).start()
    except OSError as exc:
        service.close()
        raise SystemExit(
            f"repro: cannot serve on {args.host}:{args.port}: {exc}")
    metrics_server = None
    if args.metrics_port is not None:
        try:
            metrics_server = MetricsServer(service.registry,
                                           port=args.metrics_port,
                                           host=args.host).start()
        except OSError as exc:
            server.close()
            service.close()
            raise SystemExit(f"repro: cannot serve /metrics on port "
                             f"{args.metrics_port}: {exc}")
        print(f"repro: serving /metrics on http://{metrics_server.host}:"
              f"{metrics_server.port}/metrics", file=sys.stderr)
    print(f"repro: serving jobs on {server.url}/jobs "
          f"(workers={args.workers}, max-queue={args.max_queue}, "
          f"batch-max={args.batch_max}"
          + (f", cache={args.cache_dir}" if args.cache_dir else "")
          + ")", file=sys.stderr, flush=True)

    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        print("repro: draining (no new submissions)...", file=sys.stderr,
              flush=True)
        drained = service.drain(timeout=args.drain_timeout)
        server.close()
        if metrics_server is not None:
            metrics_server.close()
        service.close()
        counts = service.counts()
        print(f"repro: {'drained' if drained else 'drain timed out'}: "
              f"{counts['done']} done, {counts['error']} failed",
              file=sys.stderr, flush=True)
    return 0 if drained else 1


def cmd_experiments(_args) -> None:
    print(markdown_table(["artifact", "benchmark", "what it shows"],
                         EXPERIMENTS))
    print("\nRun them with: pytest benchmarks/ --benchmark-only -s")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid virtual caching (ISCA 2016) reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalog")
    sub.add_parser("configs", help="list MMU configurations")
    sub.add_parser("experiments", help="map paper artifacts to benchmarks")

    def add_common(p):
        p.add_argument("workload", choices=names())
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument("--warmup", type=int, default=10_000)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--llc-mb", type=int, dest="llc_mb",
                       help="override LLC size (MiB)")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
        p.add_argument("--interval", type=_positive_int,
                       help="record stat snapshots every N timed accesses")
        p.add_argument("--trace-out", dest="trace_out", metavar="FILE",
                       help="write per-access pipeline events (JSONL)")
        p.add_argument("--sample-every", type=_positive_int,
                       dest="sample_every", default=1, metavar="N",
                       help="trace every Nth access (default: 1)")

    def add_exec(p):
        p.add_argument("--workers", type=_positive_int, default=1,
                       metavar="N",
                       help="run independent points on N processes "
                            "(default: 1, serial)")
        p.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                       help="reuse fingerprint-keyed results from DIR; "
                            "only changed points are re-simulated")

    def add_report_out(p):
        p.add_argument("--report-out", dest="report_out", metavar="FILE",
                       help="also write a self-contained HTML report of "
                            "this command's results (scorecard included)")

    def add_telemetry(p):
        p.add_argument("--live", action="store_true",
                       help="in-place stderr status line fed by worker "
                            "heartbeats (throughput, ETA, stale workers)")
        p.add_argument("--metrics-port", type=int, dest="metrics_port",
                       metavar="PORT",
                       help="serve Prometheus text format on "
                            "http://127.0.0.1:PORT/metrics for the "
                            "duration of the run (0 = ephemeral port)")
        p.add_argument("--metrics-out", dest="metrics_out", metavar="FILE",
                       help="append JSONL registry snapshots to FILE "
                            "(last line = deterministic end-of-plan state)")

    run_parser = sub.add_parser("run", help="simulate one configuration")
    add_common(run_parser)
    add_exec(run_parser)
    add_telemetry(run_parser)
    add_report_out(run_parser)
    run_parser.add_argument("config",
                            choices=MMU_CONFIGS + PRIOR_CONFIGS)
    run_parser.add_argument("--delayed-entries", type=int,
                            dest="delayed_entries")

    profile_parser = sub.add_parser(
        "profile", help="per-stage cycle attribution + latency histograms",
        description="Per-stage cycle attribution table, latency histograms "
                    "and per-interval IPC for one (workload, config) point, "
                    "or the merged aggregate of a --sizes sweep.")
    add_common(profile_parser)
    add_exec(profile_parser)
    add_telemetry(profile_parser)
    profile_parser.add_argument("config",
                                choices=MMU_CONFIGS + PRIOR_CONFIGS)
    profile_parser.add_argument("--delayed-entries", type=int,
                                dest="delayed_entries")
    profile_parser.add_argument(
        "--sizes", metavar="A,B,...",
        help="sweep delayed_tlb.entries across these values and render "
             "the aggregated profile (merged histograms, summed cycles)")

    compare_parser = sub.add_parser("compare",
                                    help="compare configurations")
    add_common(compare_parser)
    add_exec(compare_parser)
    add_telemetry(compare_parser)
    add_report_out(compare_parser)
    compare_parser.add_argument("--configs",
                                help="comma-separated configuration names")

    sweep_parser = sub.add_parser("sweep", help="delayed-TLB size sweep")
    add_common(sweep_parser)
    add_exec(sweep_parser)
    add_telemetry(sweep_parser)
    add_report_out(sweep_parser)
    sweep_parser.add_argument("--sizes", default="1024,4096,16384,65536")

    trace_parser = sub.add_parser(
        "trace", help="trace analytics: view recorded JSONL, profile "
                      "a workload's address stream")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    view_parser = trace_sub.add_parser(
        "view", help="analyze recorded --trace-out JSONL files",
        description="Stream one or many JSONL trace files (a single "
                    "--trace-out stream or the BASE.<fingerprint>.jsonl "
                    "shards of a parallel run), split on run_start marks "
                    "and report per-run cycle attribution, stage latency "
                    "histograms, hit-level mix and the slowest accesses.")
    view_parser.add_argument("files", nargs="+", metavar="TRACE",
                             help="JSONL trace file(s); shell globs of "
                                  "shard families work as-is")
    view_parser.add_argument("--top", type=_positive_int, default=5,
                             metavar="N",
                             help="slowest accesses to keep (default: 5)")
    view_parser.add_argument("--json", action="store_true",
                             help="emit the repro.trace/v1 document")
    workload_parser = trace_sub.add_parser(
        "workload", help="profile a workload's address stream")
    add_common(workload_parser)

    # Deprecated spelling of `trace workload`, kept for compatibility.
    analyze_parser = sub.add_parser("analyze", help="profile a trace "
                                    "(alias of `trace workload`)")
    add_common(analyze_parser)

    bench_parser = sub.add_parser(
        "bench", help="benchmark baselines and the regression gate")
    bench_sub = bench_parser.add_subparsers(dest="bench_command",
                                            required=True)
    record_parser = bench_sub.add_parser(
        "record", help="run the canonical suite and write a baseline",
        description="Run the canonical model-metric suite and write a "
                    "repro.bench/v2 baseline document; every entry is "
                    "self-describing so `bench check` can re-run it.")
    record_parser.add_argument("--out", required=True, metavar="FILE",
                               help="baseline JSON to write")
    record_parser.add_argument("--accesses", type=int, default=None)
    record_parser.add_argument("--warmup", type=int, default=None)
    record_parser.add_argument("--seed", type=int, default=None)
    add_exec(record_parser)
    check_parser = bench_sub.add_parser(
        "check", help="re-run the suite and gate against a baseline",
        description="Re-run the benchmarks a baseline describes (or load "
                    "--current) and compare metric by metric; exits "
                    "non-zero when any gated metric regressed past the "
                    "threshold.")
    check_parser.add_argument("--baseline", required=True, metavar="FILE")
    check_parser.add_argument("--current", metavar="FILE",
                              help="compare this pre-recorded document "
                                   "instead of re-running the suite")
    check_parser.add_argument("--threshold", type=float, default=10.0,
                              metavar="PCT",
                              help="model-metric regression threshold in "
                                   "percent (default: 10)")
    check_parser.add_argument("--seconds-threshold", type=float,
                              default=None, dest="seconds_threshold",
                              metavar="PCT",
                              help="also gate wall-clock seconds at this "
                                   "threshold (default: report only)")
    check_parser.add_argument("--report", metavar="FILE",
                              help="write the markdown report here")
    check_parser.add_argument("--json-report", dest="json_report",
                              metavar="FILE",
                              help="write the repro.bench.report/v1 "
                                   "JSON document here")
    check_parser.add_argument("--json", action="store_true",
                              help="print the JSON report to stdout "
                                   "instead of markdown")
    check_parser.add_argument("--db", metavar="FILE",
                              help="cross-run metrics store: annotate the "
                                   "report with each metric's recorded "
                                   "history, then ingest this run")
    add_exec(check_parser)
    add_report_out(check_parser)
    migrate_parser = bench_sub.add_parser(
        "migrate", help="rewrite v1 baseline files in the v2 layout")
    migrate_parser.add_argument("files", nargs="+", metavar="FILE")

    db_parser = sub.add_parser(
        "db", help="cross-run metrics store: ingest, query, trend")
    db_sub = db_parser.add_subparsers(dest="db_command", required=True)
    ingest_parser = db_sub.add_parser(
        "ingest", help="ingest recorded JSON documents into the store",
        description="Ingest repro.result/v1, repro.compare/v1, "
                    "repro.sweep/v1 or repro.bench/v2 documents; "
                    "re-ingesting the same run upserts (run keys are "
                    "deterministic).")
    ingest_parser.add_argument("--db", required=True, metavar="FILE",
                               help="SQLite store (created if missing)")
    ingest_parser.add_argument("files", nargs="+", metavar="JSON")
    query_parser = db_sub.add_parser(
        "query", help="list ingested runs and their metrics")
    query_parser.add_argument("--db", required=True, metavar="FILE")
    query_parser.add_argument("--workload", help="filter by workload")
    query_parser.add_argument("--mmu", help="filter by MMU configuration")
    query_parser.add_argument("--metric", metavar="NAME",
                              help="show only this metric (drops runs "
                                   "that never recorded it)")
    query_parser.add_argument("--json", action="store_true")
    trend_parser = db_sub.add_parser(
        "trend", help="one metric's history across ingested runs")
    trend_parser.add_argument("--db", required=True, metavar="FILE")
    trend_parser.add_argument("--metric", metavar="NAME",
                              help="metric name (see `db query`)")
    trend_parser.add_argument("--workload", help="filter by workload")
    trend_parser.add_argument("--mmu", help="filter by MMU configuration")
    trend_parser.add_argument("--limit", type=_positive_int, default=None,
                              metavar="N",
                              help="only the last N runs")
    trend_parser.add_argument("--json", action="store_true")

    serve_parser = sub.add_parser(
        "serve", help="long-lived simulation service over HTTP",
        description="Accept repro.job/v1 submissions on POST /jobs, "
                    "coalesce duplicate in-flight requests by job "
                    "fingerprint, serve cache hits from --cache-dir, "
                    "and run misses in batches on the execution engine "
                    "behind a bounded queue (429 + Retry-After when "
                    "full). GET /jobs/<fingerprint> polls status and "
                    "results; /healthz and /metrics are mounted on the "
                    "same port. SIGTERM drains in-flight jobs before "
                    "exit.")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8787,
                              help="listen port (0 = ephemeral, printed "
                                   "to stderr; default: 8787)")
    serve_parser.add_argument("--workers", type=_positive_int, default=1,
                              metavar="N",
                              help="fan each batch across N processes "
                                   "(default: 1, in-thread)")
    serve_parser.add_argument("--cache-dir", dest="cache_dir",
                              metavar="DIR",
                              help="serve repeated jobs from this "
                                   "fingerprint-keyed result cache and "
                                   "store new results into it")
    serve_parser.add_argument("--max-queue", type=_positive_int,
                              dest="max_queue", default=16, metavar="N",
                              help="bounded admission queue size "
                                   "(default: 16)")
    serve_parser.add_argument("--batch-max", type=_positive_int,
                              dest="batch_max", default=8, metavar="N",
                              help="max jobs per executor batch "
                                   "(default: 8)")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              metavar="S",
                              help="per-job wall-clock timeout in "
                                   "seconds (default: none)")
    serve_parser.add_argument("--metrics-port", type=int,
                              dest="metrics_port", metavar="PORT",
                              help="also serve /metrics on a separate "
                                   "port (0 = ephemeral)")
    serve_parser.add_argument("--drain-timeout", type=float,
                              dest="drain_timeout", default=60.0,
                              metavar="S",
                              help="max seconds to wait for in-flight "
                                   "jobs on SIGTERM (default: 60)")

    report_parser = sub.add_parser(
        "report", help="self-contained HTML reports with the "
                       "paper-fidelity scorecard")
    report_sub = report_parser.add_subparsers(dest="report_command",
                                              required=True)
    build_parser_ = report_sub.add_parser(
        "build", help="fold recorded JSON documents into one HTML page",
        description="Fold result/compare/sweep/profile/bench/fidelity "
                    "JSON documents (plus optional JSONL trace shards "
                    "and a --db history) into one self-contained static "
                    "HTML report: inline CSS, inline SVG charts, zero "
                    "external requests, byte-identical for identical "
                    "inputs.")
    build_parser_.add_argument("files", nargs="*", metavar="JSON",
                               help="recorded machine-readable documents "
                                    "(dispatched on their schema key)")
    build_parser_.add_argument("--trace", nargs="+", metavar="FILE",
                               help="JSONL trace shards to analyze into "
                                    "a trace-analytics section")
    build_parser_.add_argument("--db", metavar="FILE",
                               help="metrics store: add cross-run "
                                    "sparkline history")
    build_parser_.add_argument("--out", metavar="FILE",
                               help="write the page here (default: "
                                    "stdout)")
    build_parser_.add_argument("--title",
                               default="Hybrid virtual caching — "
                                       "reproduction report")
    build_parser_.add_argument("--workers", type=_positive_int, default=1,
                               metavar="N",
                               help="parse inputs on N threads (output "
                                    "is byte-identical to serial)")
    bench_report_parser = report_sub.add_parser(
        "bench", help="render a repro.bench.report/v1 gate report as "
                      "HTML")
    bench_report_parser.add_argument("file", metavar="REPORT.json",
                                     help="a --json-report document from "
                                          "`repro bench check`")
    bench_report_parser.add_argument("--out", metavar="FILE",
                                     help="write the page here "
                                          "(default: stdout)")
    return parser


HANDLERS = {
    "workloads": cmd_workloads,
    "configs": cmd_configs,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "bench": cmd_bench,
    "db": cmd_db,
    "report": cmd_report,
    "serve": cmd_serve,
    "analyze": cmd_analyze,
    "experiments": cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return HANDLERS[args.command](args) or 0


if __name__ == "__main__":
    raise SystemExit(main())
