"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``workloads``  — list the calibrated workload catalog;
* ``configs``    — list MMU configurations (proposed + baselines + prior);
* ``run``        — simulate one (workload, configuration) point;
* ``compare``    — one workload across several configurations;
* ``sweep``      — delayed-TLB size sweep (Figure 4 style);
* ``profile``    — per-stage cycle attribution and latency histograms;
* ``analyze``    — address-stream profile of a workload trace;
* ``experiments``— map paper artifacts to their benchmark modules.

``run``/``compare``/``sweep``/``profile`` share the observability flags:
``--json`` (schema-stable document), ``--interval N`` (windowed stat
time series), ``--trace-out FILE`` (JSONL pipeline events) and
``--sample-every N`` (trace sampling).  See ``docs/observability.md``.

``run``/``compare``/``sweep`` additionally take the execution-engine
flags: ``--workers N`` fans the independent simulation points across a
process pool, and ``--cache-dir DIR`` reuses fingerprint-keyed results
from earlier invocations so only changed points are re-simulated.  See
``docs/execution.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.params import SystemConfig
from repro.common.stats import mpki
from repro.exec import ParallelExecutor, ResultCache, SerialExecutor
from repro.obs.tracer import Tracer
from repro.sim import (
    MMU_CONFIGS,
    PRIOR_CONFIGS,
    compare_configs,
    run_workload,
    sweep_delayed_tlb,
)
from repro.sim.report import (
    breakdown_chart,
    cycle_attribution,
    histogram_chart,
    horizontal_bars,
    markdown_table,
    series_table,
)
from repro.workloads import all_specs, analyze as analyze_trace, names, spec

EXPERIMENTS = (
    ("Table I", "benchmarks/test_table1_sharing.py",
     "r/w shared area and access ratios"),
    ("Table II", "benchmarks/test_table2_synonym_filter.py",
     "synonym-filter false positives, TLB access/miss reduction"),
    ("Figure 4", "benchmarks/test_fig4_delayed_tlb_mpki.py",
     "delayed-TLB MPKI vs. size"),
    ("Table III", "benchmarks/test_table3_segments.py",
     "segments, RMM MPKI, utilization"),
    ("Figure 7", "benchmarks/test_fig7_index_cache.py",
     "index-cache size sensitivity"),
    ("Figure 9", "benchmarks/test_fig9_native_performance.py",
     "native performance"),
    ("Figure 10*", "benchmarks/test_fig10_virtualization.py",
     "virtualized performance"),
    ("Figure 11*", "benchmarks/test_fig11_energy.py",
     "translation energy"),
    ("Ablations", "benchmarks/test_ablations.py",
     "filter granularity, SC size, allocation policy"),
    ("Prior schemes", "benchmarks/test_prior_schemes.py",
     "direct segment / RMM / Enigma comparison"),
)


def _system_config(args) -> SystemConfig:
    config = SystemConfig()
    if getattr(args, "llc_mb", None):
        config = config.with_llc_size(args.llc_mb * 1024 * 1024)
    if getattr(args, "delayed_entries", None):
        config = config.with_delayed_tlb_entries(args.delayed_entries)
    return config


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _make_tracer(args) -> Optional[Tracer]:
    """Build a tracer when ``--trace-out`` was given, else None."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return None
    try:
        return Tracer(sample_every=getattr(args, "sample_every", 1) or 1,
                      sink=trace_out)
    except OSError as exc:
        raise SystemExit(f"repro: cannot open trace sink {trace_out!r}: {exc}")


def _executor(args):
    """Engine executor from ``--workers`` (serial unless N > 1)."""
    workers = getattr(args, "workers", None) or 1
    if workers > 1:
        if getattr(args, "trace_out", None):
            raise SystemExit(
                "repro: --trace-out records per-access events in-process "
                "and requires serial execution; drop --workers")
        return ParallelExecutor(workers=workers)
    return SerialExecutor()


def _cache(args) -> Optional[ResultCache]:
    cache_dir = getattr(args, "cache_dir", None)
    return ResultCache(cache_dir) if cache_dir else None


def _progress(args):
    """Stderr progress callback — only when the engine flags are in play,
    so default serial output stays byte-identical."""
    if (getattr(args, "workers", None) or 1) <= 1 \
            and not getattr(args, "cache_dir", None):
        return None

    def report(done, total, job, status):
        print(f"[{done}/{total}] {job.workload_name}/{job.mmu} {status}",
              file=sys.stderr)
    return report


def _json_interval(args) -> Optional[int]:
    """Interval for machine-readable output: explicit flag, or a tenth
    of the timed window so ``--json`` documents always carry a series."""
    if getattr(args, "interval", None):
        return args.interval
    if getattr(args, "json", False):
        return max(1, args.accesses // 10)
    return None


def cmd_workloads(_args) -> None:
    rows = []
    for s in all_specs():
        sharing = (f"{s.sharing.processes}p/"
                   f"{100 * s.sharing.area_fraction:.0f}%area"
                   if s.sharing else "-")
        patterns = "+".join(m.kind for m in s.patterns)
        rows.append([s.name, f"{s.footprint_bytes // (1 << 20)}MB", patterns,
                     f"{s.mem_ratio:.2f}", f"{s.mlp:.1f}", sharing])
    print(markdown_table(
        ["workload", "footprint", "patterns", "mem ratio", "MLP", "sharing"],
        rows))


def cmd_configs(_args) -> None:
    descriptions = {
        "baseline": "conventional two-level TLBs, physical caches",
        "ideal": "no-TLB-miss upper bound",
        "hybrid_tlb": "hybrid virtual caching + delayed TLB",
        "hybrid_segments": "hybrid + many-segment translation (with SC)",
        "hybrid_segments_nosc": "many-segment without the segment cache",
        "direct_segment": "one range + paging (Basu et al.)",
        "rmm": "32 core-side ranges (Karakostas et al.)",
        "enigma": "intermediate addresses + delayed page TLB (Zhang et al.)",
        "baseline_thp": "conventional MMU + transparent 2 MB huge pages",
    }
    rows = [[name, descriptions.get(name, "")]
            for name in MMU_CONFIGS + PRIOR_CONFIGS]
    print(markdown_table(["configuration", "description"], rows))


def cmd_run(args) -> None:
    tracer = _make_tracer(args)
    try:
        result = run_workload(args.workload, args.config,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=_json_interval(args), tracer=tracer,
                              executor=_executor(args), cache=_cache(args),
                              progress=_progress(args))
    finally:
        if tracer is not None:
            tracer.close()
    if args.json:
        doc = result.to_json_dict()
        doc["config"] = args.config
        print(json.dumps(doc, indent=2))
        return
    print(f"workload={result.workload} config={result.mmu}")
    print(f"instructions={result.instructions} accesses={result.accesses}")
    print(f"cycles={result.cycles:.0f} ipc={result.ipc:.4f} "
          f"llc_miss_rate={result.llc_miss_rate():.3f}")
    hybrid = result.group("hybrid")
    if hybrid:
        total = hybrid.get("accesses", 0)
        bypass = hybrid.get("tlb_bypasses", 0)
        print(f"tlb_bypass_rate={bypass / total:.3f}" if total else "")
    delayed = result.group("delayed_tlb")
    if delayed:
        print(f"delayed_tlb_mpki={mpki(delayed.get('misses', 0), result.instructions):.2f}")


def cmd_compare(args) -> None:
    configs = args.configs.split(",") if args.configs else list(MMU_CONFIGS)
    tracer = _make_tracer(args)
    try:
        row = compare_configs(args.workload, mmu_names=configs,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=_json_interval(args), tracer=tracer,
                              executor=_executor(args), cache=_cache(args),
                              progress=_progress(args))
    finally:
        if tracer is not None:
            tracer.close()
    normalized = row.normalized(configs[0])
    if args.json:
        print(json.dumps({"schema": "repro.compare/v1",
                          "workload": args.workload,
                          "normalized_to": configs[0],
                          "speedups": normalized,
                          "results": {name: r.to_json_dict()
                                      for name, r in row.results.items()}},
                         indent=2))
        return
    print(f"{args.workload}: performance normalized to {configs[0]}")
    print(horizontal_bars(normalized, reference=1.0))


def cmd_sweep(args) -> None:
    sizes = [int(s) for s in args.sizes.split(",")]
    tracer = _make_tracer(args)
    try:
        results = sweep_delayed_tlb(args.workload, sizes,
                                    accesses=args.accesses, warmup=args.warmup,
                                    seed=args.seed,
                                    interval=_json_interval(args),
                                    tracer=tracer,
                                    executor=_executor(args),
                                    cache=_cache(args),
                                    progress=_progress(args))
    finally:
        if tracer is not None:
            tracer.close()
    mpkis = [r.tlb_mpki() for r in results]
    if args.json:
        print(json.dumps({"schema": "repro.sweep/v1",
                          "workload": args.workload,
                          "sizes": sizes,
                          "delayed_tlb_mpki": mpkis,
                          "results": [r.to_json_dict() for r in results]},
                         indent=2))
        return
    series = {args.workload: mpkis}
    print("delayed-TLB MPKI by entry count")
    print(series_table(series, [str(s) for s in sizes]))


def cmd_profile(args) -> None:
    """Per-stage cycle attribution + latency histograms for one point."""
    tracer = _make_tracer(args)
    try:
        result = run_workload(args.workload, args.config,
                              accesses=args.accesses, warmup=args.warmup,
                              config=_system_config(args), seed=args.seed,
                              interval=args.interval or max(1, args.accesses // 10),
                              tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    if args.json:
        doc = result.to_json_dict()
        doc["config"] = args.config
        print(json.dumps(doc, indent=2))
        return
    manifest = result.manifest
    print(f"workload={result.workload} config={args.config} "
          f"seed={manifest.seed if manifest else args.seed}")
    if manifest:
        print(f"config_hash={manifest.config_hash} "
              f"repro={manifest.package_version} "
              f"duration={manifest.duration_s:.2f}s")
    print(f"instructions={result.instructions} accesses={result.accesses} "
          f"ipc={result.ipc:.4f}")
    print()
    print("cycle attribution by pipeline stage")
    print(cycle_attribution(result.cycle_breakdown))
    print()
    print(breakdown_chart(result.cycle_breakdown))
    for name in sorted(result.histograms):
        snap = result.histograms[name]
        if not snap.get("count"):
            continue
        print()
        print(f"histogram: {name}")
        print(histogram_chart(snap))
    if result.intervals:
        print()
        print("per-interval IPC "
              f"({result.interval} accesses per window)")
        ipcs = [s["ipc"] for s in result.intervals]
        print(series_table({"ipc": ipcs},
                           [str(s["index"]) for s in result.intervals],
                           fmt="{:8.3f}", first_header="window"))


def cmd_analyze(args) -> None:
    from repro.osmodel import Kernel
    from repro.sim import lay_out

    kernel = Kernel(_system_config(args))
    workload = lay_out(args.workload, kernel, seed=args.seed)
    profile = analyze_trace(workload.trace(args.accesses))
    print(f"workload={args.workload} accesses={profile.accesses}")
    print(f"distinct pages={profile.distinct_pages} "
          f"blocks={profile.distinct_blocks} "
          f"write_fraction={profile.write_fraction:.2f}")
    print("page-popularity coverage (≈ perfect-TLB hit-rate bound):")
    for entries, share in profile.page_coverage:
        print(f"  top {entries:>6} pages -> {100 * share:5.1f}% of accesses")


def cmd_experiments(_args) -> None:
    print(markdown_table(["artifact", "benchmark", "what it shows"],
                         EXPERIMENTS))
    print("\nRun them with: pytest benchmarks/ --benchmark-only -s")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid virtual caching (ISCA 2016) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalog")
    sub.add_parser("configs", help="list MMU configurations")
    sub.add_parser("experiments", help="map paper artifacts to benchmarks")

    def add_common(p):
        p.add_argument("workload", choices=names())
        p.add_argument("--accesses", type=int, default=30_000)
        p.add_argument("--warmup", type=int, default=10_000)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--llc-mb", type=int, dest="llc_mb",
                       help="override LLC size (MiB)")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
        p.add_argument("--interval", type=_positive_int,
                       help="record stat snapshots every N timed accesses")
        p.add_argument("--trace-out", dest="trace_out", metavar="FILE",
                       help="write per-access pipeline events (JSONL)")
        p.add_argument("--sample-every", type=_positive_int,
                       dest="sample_every", default=1, metavar="N",
                       help="trace every Nth access (default: 1)")

    def add_exec(p):
        p.add_argument("--workers", type=_positive_int, default=1,
                       metavar="N",
                       help="run independent points on N processes "
                            "(default: 1, serial)")
        p.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                       help="reuse fingerprint-keyed results from DIR; "
                            "only changed points are re-simulated")

    run_parser = sub.add_parser("run", help="simulate one configuration")
    add_common(run_parser)
    add_exec(run_parser)
    run_parser.add_argument("config",
                            choices=MMU_CONFIGS + PRIOR_CONFIGS)
    run_parser.add_argument("--delayed-entries", type=int,
                            dest="delayed_entries")

    profile_parser = sub.add_parser(
        "profile", help="per-stage cycle attribution + latency histograms",
        description="Per-stage cycle attribution table, latency histograms "
                    "and per-interval IPC for one (workload, config) point.")
    add_common(profile_parser)
    profile_parser.add_argument("config",
                                choices=MMU_CONFIGS + PRIOR_CONFIGS)
    profile_parser.add_argument("--delayed-entries", type=int,
                                dest="delayed_entries")

    compare_parser = sub.add_parser("compare",
                                    help="compare configurations")
    add_common(compare_parser)
    add_exec(compare_parser)
    compare_parser.add_argument("--configs",
                                help="comma-separated configuration names")

    sweep_parser = sub.add_parser("sweep", help="delayed-TLB size sweep")
    add_common(sweep_parser)
    add_exec(sweep_parser)
    sweep_parser.add_argument("--sizes", default="1024,4096,16384,65536")

    analyze_parser = sub.add_parser("analyze", help="profile a trace")
    add_common(analyze_parser)
    return parser


HANDLERS = {
    "workloads": cmd_workloads,
    "configs": cmd_configs,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "profile": cmd_profile,
    "analyze": cmd_analyze,
    "experiments": cmd_experiments,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    HANDLERS[args.command](args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
