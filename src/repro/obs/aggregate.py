"""Plan-level aggregation of per-job observability output.

A parallel plan produces one :class:`~repro.sim.results.SimulationResult`
per job, each carrying its own histogram snapshots and interval series.
This module folds them into a single profile view: histograms are
rebuilt from their snapshots (:meth:`Histogram.from_snapshot` is
lossless) and merged with :meth:`Histogram.merge`, cycle breakdowns are
summed, and interval snapshots are concatenated in plan order with a
``point`` tag.  Because every step is a sum over a deterministic result
set, the aggregate of a parallel run is identical to the aggregate of
the same plan run serially — the property ``repro profile --workers N``
is pinned on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.obs.histogram import Histogram

if TYPE_CHECKING:
    from repro.sim.results import SimulationResult

#: Version tag of the ``repro profile --json`` multi-point document.
PROFILE_SCHEMA = "repro.profile/v1"


@dataclass
class ProfileAggregate:
    """Observability totals across every result of one plan."""

    points: int = 0
    instructions: int = 0
    accesses: int = 0
    cycles: float = 0.0
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)  # snapshots
    intervals: List[dict] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "points": self.points,
            "instructions": self.instructions,
            "accesses": self.accesses,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "cycle_breakdown": dict(self.cycle_breakdown),
            "histograms": dict(self.histograms),
            "intervals": list(self.intervals),
        }


def aggregate_results(results: "Sequence[SimulationResult]"
                      ) -> ProfileAggregate:
    """Fold many results into one profile (order = plan order).

    A single-result aggregate reproduces that result's own histogram
    snapshots and intervals exactly, so the CLI can render every profile
    through this one path.
    """
    aggregate = ProfileAggregate()
    merged: Dict[str, Histogram] = {}
    for point, result in enumerate(results):
        aggregate.points += 1
        aggregate.instructions += result.instructions
        aggregate.accesses += result.accesses
        aggregate.cycles += result.cycles
        for stage, cycles in result.cycle_breakdown.items():
            aggregate.cycle_breakdown[stage] = (
                aggregate.cycle_breakdown.get(stage, 0.0) + cycles)
        for name, snapshot in result.histograms.items():
            histogram = merged.get(name)
            if histogram is None:
                histogram = merged[name] = Histogram(name)
            histogram.merge(Histogram.from_snapshot(name, snapshot))
        for window in result.intervals:
            tagged = dict(window)
            tagged["index"] = len(aggregate.intervals)
            tagged["point"] = point
            aggregate.intervals.append(tagged)
    aggregate.histograms = {name: histogram.snapshot()
                            for name, histogram in merged.items()}
    return aggregate
