"""Low-overhead pipeline tracer with sampling and a JSONL sink.

Instrumentation sites test ``tracer.recording`` (a plain attribute) before
building any event, so the disabled path — :data:`NULL_TRACER`, whose
``active``/``recording`` are always ``False`` — costs one attribute fetch
and one branch per site.  A :class:`Tracer` samples whole accesses: every
``sample_every``-th access records all of its stage events; the rest
record nothing.

Events land in a bounded ring buffer (oldest dropped first) and, when a
sink is configured, are also streamed as JSON Lines — one event object
per line — so a run can be post-processed without holding the trace in
memory.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (IO, Any, Deque, Dict, Iterable, Iterator, List, Optional,
                    Tuple, Union)

from repro.obs.events import STAGE_ACCESS, STAGE_MARK, TraceEvent


class NullTracer:
    """The disabled tracer: every probe site sees ``recording == False``."""

    active = False
    recording = False

    def begin_access(self, core: int, asid: int, va: int,
                     is_write: bool) -> bool:
        return False

    def stage(self, stage: str, cycles: int = 0, **detail: Any) -> None:
        return None

    def end_access(self, outcome: Any, timed: bool = True) -> None:
        return None

    def mark(self, label: str, **detail: Any) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared do-nothing tracer installed on every structure by default.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects typed pipeline events for sampled accesses."""

    active = True

    def __init__(self, sample_every: int = 1, buffer_size: int = 65536,
                 sink: Union[str, Path, IO[str], None] = None) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.events: Deque[TraceEvent] = deque(maxlen=buffer_size)
        self.recording = False
        self.closed = False
        self._seq = -1
        self._sampled = 0
        self._emitted = 0
        #: Buffered events grouped by ``seq`` (insertion order preserved),
        #: kept in lockstep with the ring buffer so :meth:`events_for` is
        #: O(events-of-that-access) instead of O(buffer).
        self._by_seq: Dict[int, List[TraceEvent]] = {}
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        if sink is not None:
            if isinstance(sink, (str, Path)):
                self._sink = open(sink, "w", encoding="utf-8")
                self._owns_sink = True
            else:
                self._sink = sink

    # ------------------------------------------------------------------ #
    # Emission protocol
    # ------------------------------------------------------------------ #

    def begin_access(self, core: int, asid: int, va: int,
                     is_write: bool) -> bool:
        """Open the next access; returns True when it is sampled."""
        self._seq += 1
        self.recording = self._seq % self.sample_every == 0
        if self.recording:
            self._sampled += 1
            self._pending = {"core": core, "asid": asid, "va": va,
                             "is_write": is_write}
        return self.recording

    def stage(self, stage: str, cycles: int = 0, **detail: Any) -> None:
        """Record one pipeline-stage event of the current sampled access."""
        if not self.recording:
            return
        self._emit(TraceEvent(self._seq, stage, cycles, detail))

    def end_access(self, outcome: Any, timed: bool = True) -> None:
        """Close the current access with its phase-decomposed summary."""
        if not self.recording:
            return
        detail = dict(self._pending)
        detail.update(
            hit_level=outcome.hit_level,
            front_cycles=outcome.front_cycles,
            cache_cycles=outcome.cache_cycles,
            delayed_cycles=outcome.delayed_cycles,
            dram_cycles=outcome.dram_cycles,
            timed=timed,
        )
        total = (outcome.front_cycles + outcome.cache_cycles
                 + outcome.delayed_cycles + outcome.dram_cycles)
        self._emit(TraceEvent(self._seq, STAGE_ACCESS, total, detail))
        self.recording = False

    def mark(self, label: str, **detail: Any) -> None:
        """Out-of-band annotation (e.g. a run boundary in a shared sink)."""
        d = {"label": label}
        d.update(detail)
        self._emit(TraceEvent(-1, STAGE_MARK, 0, d))

    def _emit(self, event: TraceEvent) -> None:
        self._emitted += 1
        if len(self.events) == self.events.maxlen:
            dropped = self.events.popleft()   # oldest-first ring semantics
            group = self._by_seq.get(dropped.seq)
            if group is not None:
                group.pop(0)                  # dropped is always its oldest
                if not group:
                    del self._by_seq[dropped.seq]
        self.events.append(event)
        self._by_seq.setdefault(event.seq, []).append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict()) + "\n")

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    @property
    def accesses_seen(self) -> int:
        return self._seq + 1

    @property
    def accesses_sampled(self) -> int:
        return self._sampled

    @property
    def events_emitted(self) -> int:
        """Total emitted events, including ones the ring buffer dropped."""
        return self._emitted

    def events_for(self, seq: int) -> Iterable[TraceEvent]:
        """Buffered events of one access (marks under ``seq == -1``)."""
        return list(self._by_seq.get(seq, ()))

    def accesses(self) -> Iterator[Tuple[int, List[TraceEvent]]]:
        """Buffered ``(seq, events)`` groups in arrival order, marks
        excluded — the grouped view :mod:`repro.obs.traceview` consumes
        when analyzing an in-memory buffer."""
        for seq, events in self._by_seq.items():
            if seq >= 0:
                yield seq, list(events)

    def close(self) -> None:
        """Flush and (when owned) close the sink.  Idempotent: the
        ``with``-statement ``__exit__`` and an explicit call may both
        run without a double-close reaching the underlying file."""
        if self.closed:
            return
        self.closed = True
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass(frozen=True)
class TraceSpec:
    """Picklable recipe for *sharded* trace capture.

    A live :class:`Tracer` holds an open file handle and cannot cross a
    process boundary, so parallel execution ships this value object
    instead: each worker calls :meth:`open` with its job's fingerprint
    and records into its own shard — ``<base>.<fingerprint>.jsonl`` —
    with no cross-process coordination.  Every shard starts with a
    ``run_start`` mark (the executor emits it), so a shard is a complete,
    self-describing single-run trace and any set of shards can be fed
    together to :mod:`repro.obs.traceview`.
    """

    base: Union[str, Path]
    sample_every: int = 1
    buffer_size: int = 65536

    def shard_path(self, key: str) -> Path:
        """Where the shard for ``key`` (a job fingerprint) lands."""
        return Path(f"{self.base}.{key}.jsonl")

    def open(self, key: str) -> Tracer:
        """Open a fresh tracer writing the shard for ``key``."""
        return Tracer(sample_every=self.sample_every,
                      buffer_size=self.buffer_size,
                      sink=self.shard_path(key))

    def shards(self) -> List[Path]:
        """Existing shard files for this spec's base path, sorted."""
        base = Path(self.base)
        return sorted(base.parent.glob(f"{base.name}.*.jsonl"))
