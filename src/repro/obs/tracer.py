"""Low-overhead pipeline tracer with sampling and a JSONL sink.

Instrumentation sites test ``tracer.recording`` (a plain attribute) before
building any event, so the disabled path — :data:`NULL_TRACER`, whose
``active``/``recording`` are always ``False`` — costs one attribute fetch
and one branch per site.  A :class:`Tracer` samples whole accesses: every
``sample_every``-th access records all of its stage events; the rest
record nothing.

Events land in a bounded ring buffer (oldest dropped first) and, when a
sink is configured, are also streamed as JSON Lines — one event object
per line — so a run can be post-processed without holding the trace in
memory.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Any, Deque, Iterable, Optional, Union

from repro.obs.events import STAGE_ACCESS, STAGE_MARK, TraceEvent


class NullTracer:
    """The disabled tracer: every probe site sees ``recording == False``."""

    active = False
    recording = False

    def begin_access(self, core: int, asid: int, va: int,
                     is_write: bool) -> bool:
        return False

    def stage(self, stage: str, cycles: int = 0, **detail: Any) -> None:
        return None

    def end_access(self, outcome: Any, timed: bool = True) -> None:
        return None

    def mark(self, label: str, **detail: Any) -> None:
        return None

    def close(self) -> None:
        return None


#: Shared do-nothing tracer installed on every structure by default.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects typed pipeline events for sampled accesses."""

    active = True

    def __init__(self, sample_every: int = 1, buffer_size: int = 65536,
                 sink: Union[str, Path, IO[str], None] = None) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.events: Deque[TraceEvent] = deque(maxlen=buffer_size)
        self.recording = False
        self._seq = -1
        self._sampled = 0
        self._emitted = 0
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        if sink is not None:
            if isinstance(sink, (str, Path)):
                self._sink = open(sink, "w", encoding="utf-8")
                self._owns_sink = True
            else:
                self._sink = sink

    # ------------------------------------------------------------------ #
    # Emission protocol
    # ------------------------------------------------------------------ #

    def begin_access(self, core: int, asid: int, va: int,
                     is_write: bool) -> bool:
        """Open the next access; returns True when it is sampled."""
        self._seq += 1
        self.recording = self._seq % self.sample_every == 0
        if self.recording:
            self._sampled += 1
            self._pending = {"core": core, "asid": asid, "va": va,
                             "is_write": is_write}
        return self.recording

    def stage(self, stage: str, cycles: int = 0, **detail: Any) -> None:
        """Record one pipeline-stage event of the current sampled access."""
        if not self.recording:
            return
        self._emit(TraceEvent(self._seq, stage, cycles, detail))

    def end_access(self, outcome: Any, timed: bool = True) -> None:
        """Close the current access with its phase-decomposed summary."""
        if not self.recording:
            return
        detail = dict(self._pending)
        detail.update(
            hit_level=outcome.hit_level,
            front_cycles=outcome.front_cycles,
            cache_cycles=outcome.cache_cycles,
            delayed_cycles=outcome.delayed_cycles,
            dram_cycles=outcome.dram_cycles,
            timed=timed,
        )
        total = (outcome.front_cycles + outcome.cache_cycles
                 + outcome.delayed_cycles + outcome.dram_cycles)
        self._emit(TraceEvent(self._seq, STAGE_ACCESS, total, detail))
        self.recording = False

    def mark(self, label: str, **detail: Any) -> None:
        """Out-of-band annotation (e.g. a run boundary in a shared sink)."""
        d = {"label": label}
        d.update(detail)
        self._emit(TraceEvent(-1, STAGE_MARK, 0, d))

    def _emit(self, event: TraceEvent) -> None:
        self._emitted += 1
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict()) + "\n")

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    @property
    def accesses_seen(self) -> int:
        return self._seq + 1

    @property
    def accesses_sampled(self) -> int:
        return self._sampled

    @property
    def events_emitted(self) -> int:
        """Total emitted events, including ones the ring buffer dropped."""
        return self._emitted

    def events_for(self, seq: int) -> Iterable[TraceEvent]:
        return [e for e in self.events if e.seq == seq]

    def close(self) -> None:
        """Flush and (when owned) close the sink."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
