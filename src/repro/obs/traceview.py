"""Offline analytics over JSONL pipeline traces.

The tracer (:mod:`repro.obs.tracer`) streams one flat JSON object per
event; this module is the read side: it consumes one or many trace files
(a single ``--trace-out`` stream, or the per-job shards a parallel run
writes), splits them on ``run_start`` marks, reconstructs per-access
records from the stage events sharing a ``seq``, and folds everything
into per-run :class:`RunSummary` objects:

* **cycle attribution** — the paper's front/cache/delayed/DRAM phase
  split, summed from each access's closing summary event;
* **per-stage latency histograms** — a log2 :class:`Histogram` of the
  ``cycles`` carried by every raw stage event (``filter_probe``,
  ``cache``, ``delayed_tlb``, ``segment_walk``, ``page_walk``);
* **hit-level mix** — where accesses were served (l1/l2/llc/memory);
* **top-N slowest accesses** — complete records, with their stage
  events, of the tail the delayed-translation argument is about.

Everything is streaming: files are read line by line and only the
currently-open access groups plus a bounded top-N heap are held, so a
multi-gigabyte trace analyzes in constant memory.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.events import STAGE_ACCESS, STAGE_MARK
from repro.obs.histogram import Histogram

#: Version tag of the ``repro trace view --json`` document.
TRACE_SCHEMA = "repro.trace/v1"

#: The four phases of an access's closing summary, in pipeline order.
PHASES = ("front_cycles", "cache_cycles", "delayed_cycles", "dram_cycles")

PathLike = Union[str, Path]


@dataclass
class AccessRecord:
    """One reconstructed access: its summary plus its stage events."""

    seq: int
    core: int = 0
    asid: int = 0
    va: int = 0
    is_write: bool = False
    hit_level: Optional[str] = None
    timed: bool = True
    total_cycles: int = 0
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    stages: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_events(cls, closing: Dict[str, Any],
                    stages: List[Dict[str, Any]]) -> "AccessRecord":
        return cls(
            seq=closing.get("seq", -1),
            core=closing.get("core", 0),
            asid=closing.get("asid", 0),
            va=closing.get("va", 0),
            is_write=bool(closing.get("is_write", False)),
            hit_level=closing.get("hit_level"),
            timed=bool(closing.get("timed", True)),
            total_cycles=closing.get("cycles", 0),
            phase_cycles={p: closing.get(p, 0) for p in PHASES},
            stages=stages,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq, "core": self.core, "asid": self.asid,
            "va": self.va, "is_write": self.is_write,
            "hit_level": self.hit_level, "timed": self.timed,
            "total_cycles": self.total_cycles,
            "phase_cycles": dict(self.phase_cycles),
            "stages": [{"stage": s.get("stage"), "cycles": s.get("cycles", 0)}
                       for s in self.stages],
        }


@dataclass
class RunSummary:
    """Aggregated view of one run segment (or a whole trace)."""

    detail: Dict[str, Any] = field(default_factory=dict)
    accesses: int = 0
    timed_accesses: int = 0
    total_cycles: int = 0
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    stage_events: Dict[str, int] = field(default_factory=dict)
    stage_histograms: Dict[str, Histogram] = field(default_factory=dict)
    hit_levels: Dict[str, int] = field(default_factory=dict)
    slowest: List[AccessRecord] = field(default_factory=list)

    @property
    def label(self) -> str:
        workload = self.detail.get("workload", "?")
        mmu = self.detail.get("mmu", "?")
        extra = {k: v for k, v in self.detail.items()
                 if k not in ("workload", "mmu", "label")}
        suffix = (" " + " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
                  if extra else "")
        return f"{workload}/{mmu}{suffix}"

    def attribution(self) -> Dict[str, int]:
        """Phase → cycles, in pipeline order (the Figure 9 split)."""
        return {p.removesuffix("_cycles"): self.phase_cycles.get(p, 0)
                for p in PHASES}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "detail": dict(self.detail),
            "accesses": self.accesses,
            "timed_accesses": self.timed_accesses,
            "total_cycles": self.total_cycles,
            "cycle_attribution": self.attribution(),
            "stage_events": dict(self.stage_events),
            "stage_histograms": {name: h.snapshot()
                                 for name, h in self.stage_histograms.items()},
            "hit_levels": dict(self.hit_levels),
            "slowest": [record.to_dict() for record in self.slowest],
        }


class TraceView:
    """Streaming accumulator: feed parsed events, read run summaries."""

    def __init__(self, top_n: int = 10) -> None:
        self.top_n = top_n
        self.runs: List[RunSummary] = []
        self.events_seen = 0
        self.skipped_lines = 0
        self._current: Optional[RunSummary] = None
        self._pending: Dict[int, List[Dict[str, Any]]] = {}
        # (total_cycles, tiebreak) min-heap of the N slowest accesses.
        self._heap: List[tuple] = []
        self._heap_tick = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def feed(self, event: Dict[str, Any]) -> None:
        """Fold one parsed JSONL event into the current run.

        Documented fallback for orphan events: a stream whose first
        line is *not* a ``run_start`` mark (a shard torn at the front,
        or a hand-concatenated tail) opens an **implicit run** with an
        empty detail block — its label renders as ``?/?`` — rather than
        dropping the events or raising.  A later ``run_start`` mark
        closes the implicit run and opens a labeled one as usual.
        """
        self.events_seen += 1
        stage = event.get("stage")
        if stage == STAGE_MARK:
            if event.get("label") == "run_start":
                self._open_run(event)
            return
        run = self._current
        if run is None:
            run = self._open_run(None)  # headerless stream: implicit run
        if stage == STAGE_ACCESS:
            self._close_access(run, event)
        elif stage is not None:
            self._pending.setdefault(event.get("seq", -1), []).append(event)
            run.stage_events[stage] = run.stage_events.get(stage, 0) + 1
            histogram = run.stage_histograms.get(stage)
            if histogram is None:
                histogram = run.stage_histograms[stage] = Histogram(stage)
            histogram.record(event.get("cycles", 0))

    def _open_run(self, mark: Optional[Dict[str, Any]]) -> RunSummary:
        self._finish_current()
        detail = {}
        if mark is not None:
            detail = {k: v for k, v in mark.items()
                      if k not in ("seq", "stage", "cycles", "label")}
        self._current = RunSummary(detail=detail)
        self.runs.append(self._current)
        return self._current

    def _close_access(self, run: RunSummary, event: Dict[str, Any]) -> None:
        seq = event.get("seq", -1)
        record = AccessRecord.from_events(event, self._pending.pop(seq, []))
        run.accesses += 1
        if record.timed:
            run.timed_accesses += 1
        run.total_cycles += record.total_cycles
        for phase, cycles in record.phase_cycles.items():
            run.phase_cycles[phase] = run.phase_cycles.get(phase, 0) + cycles
        if record.hit_level is not None:
            run.hit_levels[record.hit_level] = (
                run.hit_levels.get(record.hit_level, 0) + 1)
        if self.top_n > 0:
            self._heap_tick += 1
            entry = (record.total_cycles, self._heap_tick, record, run)
            if len(self._heap) < self.top_n:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def _finish_current(self) -> None:
        """Events of never-closed accesses (truncated file) are dropped."""
        self._pending.clear()

    def finish(self) -> "TraceView":
        """Distribute the top-N heap back onto the per-run summaries."""
        self._finish_current()
        for run in self.runs:
            run.slowest = []
        for cycles, _, record, run in sorted(self._heap, reverse=True):
            run.slowest.append(record)
        return self

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #

    def overall(self) -> RunSummary:
        """All runs combined into one summary (histograms merged)."""
        return combine_summaries(self.runs, top_n=self.top_n)

    def to_json_dict(self, files: Iterable[PathLike] = ()) -> Dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "files": [str(f) for f in files],
            "events": self.events_seen,
            "skipped_lines": self.skipped_lines,
            "runs": [run.to_dict() for run in self.runs],
            "overall": self.overall().to_dict(),
        }


def combine_summaries(summaries: Iterable[RunSummary],
                      top_n: int = 10) -> RunSummary:
    """Merge run summaries: sums for counters, :meth:`Histogram.merge`
    for distributions, a re-ranked union for the slowest accesses."""
    combined = RunSummary(detail={"label": "overall"})
    slowest: List[AccessRecord] = []
    runs = 0
    for summary in summaries:
        runs += 1
        combined.accesses += summary.accesses
        combined.timed_accesses += summary.timed_accesses
        combined.total_cycles += summary.total_cycles
        for phase, cycles in summary.phase_cycles.items():
            combined.phase_cycles[phase] = (
                combined.phase_cycles.get(phase, 0) + cycles)
        for stage, count in summary.stage_events.items():
            combined.stage_events[stage] = (
                combined.stage_events.get(stage, 0) + count)
        for name, histogram in summary.stage_histograms.items():
            merged = combined.stage_histograms.get(name)
            if merged is None:
                merged = combined.stage_histograms[name] = Histogram(name)
            merged.merge(histogram)
        for level, count in summary.hit_levels.items():
            combined.hit_levels[level] = (
                combined.hit_levels.get(level, 0) + count)
        slowest.extend(summary.slowest)
    combined.detail["runs"] = runs
    slowest.sort(key=lambda r: r.total_cycles, reverse=True)
    combined.slowest = slowest[:top_n]
    return combined


def iter_trace_events(paths: Iterable[PathLike],
                      view: Optional[TraceView] = None
                      ) -> Iterator[Dict[str, Any]]:
    """Yield parsed events from JSONL files, in file order.

    Malformed lines (e.g. the torn tail of a killed run) are skipped,
    counted on ``view.skipped_lines`` when a view is given — a truncated
    shard costs its last event, never the analysis.
    """
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    if view is not None:
                        view.skipped_lines += 1
                    continue
                if isinstance(event, dict):
                    yield event
                elif view is not None:
                    view.skipped_lines += 1


def read_trace(paths: Union[PathLike, Iterable[PathLike]],
               top_n: int = 10) -> TraceView:
    """Stream one or many trace files into a finished :class:`TraceView`."""
    if isinstance(paths, (str, Path)):
        paths = [paths]
    view = TraceView(top_n=top_n)
    for event in iter_trace_events(paths, view=view):
        view.feed(event)
    return view.finish()
