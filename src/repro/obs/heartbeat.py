"""Worker heartbeats: live progress, a status line, stale detection.

Long plans used to run dark — a wedged worker looked exactly like a
slow one.  This module closes that gap:

* workers (or the serial executor, same path) push :class:`Heartbeat`
  records over a queue every ``every`` timed accesses — job
  fingerprint, accesses completed, running IPC, wall-time;
* the parent's :class:`HeartbeatMonitor` thread drains the queue, folds
  the beats into the live :class:`~repro.obs.metrics.MetricsRegistry`
  as ``repro_worker_*`` gauges, drives the optional in-place stderr
  status line (:class:`LiveStatus`), and flags **stale** workers — a
  job that produced a beat but then went silent for ``stale_after``
  seconds gets reported instead of hanging the run silently.

The channel is a ``multiprocessing`` manager queue under a parallel
executor (proxies pickle across the pool) and a plain ``queue.Queue``
in-process; :func:`open_beat_channel` picks.  The beats feed *live*
state only — the final registry snapshot is rebuilt deterministically
by :func:`~repro.obs.metrics.fold_plan`, so live jitter never leaks
into recorded metrics.
"""

from __future__ import annotations

import os
import queue as queue_mod
import sys
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    TextIO, Tuple)

if TYPE_CHECKING:
    from repro.exec.job import Job

#: Timed accesses between two heartbeats of one job (cheap: one counter
#: decrement per access while a beat is attached, nothing otherwise).
DEFAULT_BEAT_EVERY = 2048

#: Seconds of silence after which a started, unfinished job is stale.
DEFAULT_STALE_AFTER = 30.0


@dataclass
class Heartbeat:
    """One progress report from whichever process runs a job."""

    job: str                  # fingerprint
    workload: str
    mmu: str
    done: int                 # timed accesses completed
    total: int                # timed accesses planned
    instructions: int
    cycles: float
    wall_s: float             # seconds since the job started
    final: bool = False      # last beat of this job
    ok: bool = True          # final beats: did the job succeed?
    pid: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


class HeartbeatPulse:
    """The per-job sender: callable the simulator invokes periodically.

    Satisfies the simulator's pulse protocol — an ``every`` attribute
    plus ``__call__(done, total, instructions, cycles)`` — and adds
    :meth:`finish` for the terminal beat the executor emits once the
    job returns.  A full queue never blocks simulation: beats are
    advisory, so an undrained channel silently drops them.
    """

    def __init__(self, queue: Any, job: "Job",
                 every: int = DEFAULT_BEAT_EVERY) -> None:
        self._queue = queue
        self.every = every
        self._job = job.fingerprint()
        self._workload = job.workload_name
        self._mmu = job.mmu
        self._t0 = time.perf_counter()

    def _put(self, beat: Heartbeat) -> None:
        try:
            self._queue.put_nowait(beat)
        except (queue_mod.Full, OSError, ValueError):
            pass                           # advisory; never stall the job

    def __call__(self, done: int, total: int, instructions: int,
                 cycles: float) -> None:
        self._put(Heartbeat(
            job=self._job, workload=self._workload, mmu=self._mmu,
            done=done, total=total, instructions=instructions,
            cycles=cycles, wall_s=time.perf_counter() - self._t0,
            pid=os.getpid()))

    def finish(self, accesses: int, instructions: int, cycles: float,
               ok: bool = True) -> None:
        """Emit the terminal beat (job finished or failed)."""
        self._put(Heartbeat(
            job=self._job, workload=self._workload, mmu=self._mmu,
            done=accesses, total=accesses, instructions=instructions,
            cycles=cycles, wall_s=time.perf_counter() - self._t0,
            final=True, ok=ok, pid=os.getpid()))


@dataclass
class BeatSpec:
    """Picklable recipe handed down to executors and workers.

    Carries the queue (a manager proxy pickles into pool workers; a
    plain ``queue.Queue`` works in-process) and the beat cadence;
    :meth:`pulse_for` builds the per-job sender inside whichever
    process runs the job.
    """

    queue: Any
    every: int = DEFAULT_BEAT_EVERY

    def pulse_for(self, job: "Job") -> HeartbeatPulse:
        return HeartbeatPulse(self.queue, job, every=self.every)


def open_beat_channel(parallel: bool) -> Tuple[Any, Optional[Any]]:
    """``(queue, manager)`` for a heartbeat channel.

    In-process channels use ``queue.Queue`` (no extra process); a
    parallel plan needs a ``multiprocessing`` manager queue whose proxy
    survives pickling into pool workers.  The caller owns the returned
    manager (``None`` in-process) and must ``shutdown()`` it.
    """
    if not parallel:
        return queue_mod.Queue(), None
    import multiprocessing

    manager = multiprocessing.Manager()
    return manager.Queue(), manager


# ---------------------------------------------------------------------- #
# Parent side: the monitor
# ---------------------------------------------------------------------- #

@dataclass
class WorkerStatus:
    """Last-known state of one job, as seen through its heartbeats."""

    job: str
    workload: str
    mmu: str
    done: int = 0
    total: int = 0
    ipc: float = 0.0
    wall_s: float = 0.0
    pid: int = 0
    last_seen: float = 0.0    # monitor clock, not wall time
    final: bool = False
    ok: bool = True
    stale: bool = False


@dataclass
class StaleWorker:
    """One staleness finding: which job went silent, and for how long."""

    status: WorkerStatus
    silent_s: float


class HeartbeatMonitor:
    """Drains a beat channel; tracks per-job progress and staleness.

    Runs its own daemon thread (:meth:`start`/:meth:`stop`) but every
    piece of logic — :meth:`ingest`, :meth:`check_stale`,
    :meth:`throughput` — is callable synchronously with an injected
    ``now``, which is how the tests exercise staleness without real
    waiting.  Beats update ``repro_worker_*`` gauges in the given
    registry; the deterministic end-of-plan fold wipes them.
    """

    def __init__(self, queue: Any, registry: Any = None,
                 stale_after: float = DEFAULT_STALE_AFTER,
                 on_stale: Optional[Callable[[StaleWorker], None]] = None,
                 live: "Optional[LiveStatus]" = None,
                 clock: Callable[[], float] = time.monotonic,
                 poll_s: float = 0.2,
                 snapshot_log: Any = None,
                 snapshot_every_s: float = 5.0) -> None:
        from repro.obs.metrics import NULL_METRICS

        self._queue = queue
        self._registry = registry if registry is not None else NULL_METRICS
        self.stale_after = stale_after
        self._on_stale = on_stale
        self._live = live
        self._clock = clock
        self._poll_s = poll_s
        self._snapshot_log = snapshot_log
        self._snapshot_every_s = snapshot_every_s
        self._last_snapshot = clock()
        self.statuses: Dict[str, WorkerStatus] = {}
        self.beats_seen = 0
        self._started_at = clock()
        self._thread = None
        self._stop = False

    # -- pure logic (thread-free, injectable clock) --------------------- #

    def ingest(self, beat: Heartbeat, now: Optional[float] = None) -> None:
        """Fold one beat into the per-job status table and the registry."""
        now = self._clock() if now is None else now
        self.beats_seen += 1
        status = self.statuses.get(beat.job)
        if status is None:
            status = self.statuses[beat.job] = WorkerStatus(
                job=beat.job, workload=beat.workload, mmu=beat.mmu)
        status.done = beat.done
        status.total = beat.total
        status.ipc = beat.ipc
        status.wall_s = beat.wall_s
        status.pid = beat.pid
        status.last_seen = now
        status.final = beat.final
        status.ok = beat.ok
        status.stale = False            # any beat un-stales a job
        registry = self._registry
        if registry.enabled:
            labels = {"job": beat.job, "workload": beat.workload,
                      "mmu": beat.mmu}
            registry.gauge("repro_worker_accesses",
                           "timed accesses completed, live").set(
                beat.done, **labels)
            registry.gauge("repro_worker_ipc",
                           "running IPC, live").set(beat.ipc, **labels)
            registry.gauge("repro_worker_wall_seconds",
                           "seconds a job has been running").set(
                beat.wall_s, **labels)
            registry.gauge("repro_jobs_running",
                           "jobs with a live heartbeat").set(
                sum(1 for s in self.statuses.values() if not s.final))

    def check_stale(self, now: Optional[float] = None) -> List[StaleWorker]:
        """Jobs that beat at least once, have not finished, and have
        been silent past ``stale_after`` — flagged once each (a later
        beat clears the flag, so a recovered worker can re-trip it)."""
        now = self._clock() if now is None else now
        found: List[StaleWorker] = []
        for status in self.statuses.values():
            if status.final or status.stale:
                continue
            silent = now - status.last_seen
            if silent >= self.stale_after:
                status.stale = True
                finding = StaleWorker(status=status, silent_s=silent)
                found.append(finding)
                if self._on_stale is not None:
                    self._on_stale(finding)
        return found

    def throughput(self, now: Optional[float] = None) -> float:
        """Aggregate timed accesses per second across all seen jobs."""
        now = self._clock() if now is None else now
        elapsed = now - self._started_at
        if elapsed <= 0:
            return 0.0
        return sum(s.done for s in self.statuses.values()) / elapsed

    def running(self) -> List[WorkerStatus]:
        return [s for s in self.statuses.values() if not s.final]

    def maybe_snapshot(self, now: Optional[float] = None) -> bool:
        """Append a registry snapshot to the log once per period.

        The periodic lines are the *live* view (they include the
        transient ``repro_worker_*`` gauges); the CLI appends one more
        snapshot after the deterministic fold, so the file always ends
        on the reproducible end-of-plan state."""
        if self._snapshot_log is None:
            return False
        now = self._clock() if now is None else now
        if now - self._last_snapshot < self._snapshot_every_s:
            return False
        self._last_snapshot = now
        self._snapshot_log.append(self._registry)
        return True

    # -- thread plumbing ------------------------------------------------ #

    def drain(self, now: Optional[float] = None) -> int:
        """Ingest every queued beat without blocking; returns the count."""
        drained = 0
        while True:
            try:
                beat = self._queue.get_nowait()
            except queue_mod.Empty:
                return drained
            except (OSError, EOFError, ValueError):   # channel torn down
                return drained
            self.ingest(beat, now=now)
            drained += 1

    def _loop(self) -> None:
        while not self._stop:
            try:
                beat = self._queue.get(timeout=self._poll_s)
            except queue_mod.Empty:
                beat = None
            except (OSError, EOFError, ValueError):
                break
            if beat is not None:
                self.ingest(beat)
                self.drain()
            self.check_stale()
            self.maybe_snapshot()
            if self._live is not None:
                self._live.update(self)

    def start(self) -> "HeartbeatMonitor":
        import threading

        self._thread = threading.Thread(target=self._loop,
                                        name="repro-heartbeats", daemon=True)
        self._thread.start()
        return self

    #: Families the monitor writes; wiped on stop so late-draining beats
    #: never leak past the deterministic end-of-plan fold.
    LIVE_FAMILIES = ("repro_worker_accesses", "repro_worker_ipc",
                     "repro_worker_wall_seconds", "repro_jobs_running")

    def stop(self) -> None:
        """Stop the thread, ingest any queued beats, wipe live gauges.

        The status table keeps every beat's information (the CLI's
        summary and staleness reporting still read it); only the
        registry's transient per-worker gauges are removed, so the
        post-stop registry state is exactly what the fold produced.
        """
        self._stop = True
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.drain()
        for name in self.LIVE_FAMILIES:
            self._registry.remove(name)


# ---------------------------------------------------------------------- #
# The --live status line
# ---------------------------------------------------------------------- #

def _format_count(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:.0f}"


@dataclass
class LiveStatus:
    """In-place one-line plan status on stderr.

    Fed from two sides — the plan's progress callback (jobs finishing:
    ran / cached / failed) and the heartbeat monitor (throughput, ETA,
    stale flags).  Rendering is carriage-return in-place; callers must
    :meth:`finish` before printing anything else to the stream.
    """

    stream: TextIO = field(default_factory=lambda: sys.stderr)
    clock: Callable[[], float] = time.monotonic
    total_jobs: int = 0
    done_jobs: int = 0
    cached_jobs: int = 0
    failed_jobs: int = 0
    enabled: bool = True

    def __post_init__(self) -> None:
        self._last_len = 0
        self._finished = False

    def job_done(self, done: int, total: int, status: str) -> None:
        """Plan-progress hook: one job resolved (ran/cached/error)."""
        self.done_jobs = done
        self.total_jobs = total
        if status == "cached":
            self.cached_jobs += 1
        elif status == "error":
            self.failed_jobs += 1

    def line(self, monitor: Optional[HeartbeatMonitor] = None) -> str:
        parts = [f"jobs {self.done_jobs}/{self.total_jobs}"]
        if self.cached_jobs:
            parts.append(f"{self.cached_jobs} cached")
        if self.failed_jobs:
            parts.append(f"{self.failed_jobs} failed")
        if monitor is not None:
            running = monitor.running()
            if running:
                parts.append(f"{len(running)} running")
            rate = monitor.throughput()
            if rate > 0:
                parts.append(f"{_format_count(rate)} acc/s")
                remaining = sum(max(s.total - s.done, 0)
                                for s in monitor.statuses.values())
                if remaining and self.done_jobs < self.total_jobs:
                    parts.append(f"eta {remaining / rate:.0f}s")
            stale = [s for s in monitor.statuses.values() if s.stale]
            if stale:
                parts.append(f"{len(stale)} STALE")
        return "repro: " + " · ".join(parts)

    def update(self, monitor: Optional[HeartbeatMonitor] = None) -> None:
        if not self.enabled or self._finished:
            return
        text = self.line(monitor)
        pad = " " * max(self._last_len - len(text), 0)
        self.stream.write("\r" + text + pad)
        self.stream.flush()
        self._last_len = len(text)

    def finish(self, monitor: Optional[HeartbeatMonitor] = None) -> None:
        """Terminal render plus a newline; further updates are no-ops."""
        if not self.enabled or self._finished:
            return
        self.update(monitor)
        self.stream.write("\n")
        self.stream.flush()
        self._finished = True
