"""Live metrics: a labeled registry, Prometheus exposition, snapshots.

The :class:`MetricsRegistry` is the pull-based side of the telemetry
layer: structures and the execution engine *update* counters, gauges and
log2 histograms (each series addressed by a metric name plus a frozen
label set), and consumers *read* consistent snapshots — as a nested
dict, as Prometheus text format (:func:`render_prometheus`), as
appended JSONL (:class:`SnapshotLog`), or over HTTP
(:class:`MetricsServer`, a stdlib ``http.server`` on ``/metrics``).

Overhead discipline mirrors the tracer: every probe site checks
``metrics.enabled`` (a plain attribute) before doing any work, and
:data:`NULL_METRICS` keeps the disabled path to one attribute fetch and
one branch.  The hot loop never touches the registry per access — the
simulator batches into plain locals and publishes at pulse boundaries.

Determinism: the **final** registry contents for a plan are produced by
:func:`fold_plan`, a pure function of the plan's outcomes applied in
plan (first-add) order.  Live mid-run values — in-process publishes
during serial execution, heartbeat-fed gauges during parallel execution
— are wiped by the fold, so the final snapshot is byte-identical
however the jobs were scheduled (pinned by ``tests/test_metrics.py``).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import (IO, Any, Dict, Iterable, List, Mapping, Optional, Tuple,
                    Union)

from repro.obs.histogram import Histogram

#: Version tag of the JSONL snapshot document layout.
METRICS_SCHEMA = "repro.metrics/v1"

#: A frozen, sorted label set — the per-series key within a family.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Series:
    """One (family, label-set) time series."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: LabelKey) -> None:
        self.labels = labels
        self.value: Union[int, float] = 0


class MetricFamily:
    """A named metric plus its per-label-set children.

    Families are created through the registry (:meth:`MetricsRegistry.
    counter` / ``gauge`` / ``histogram``) and share its lock; the
    update methods — :meth:`inc`, :meth:`set`, :meth:`observe`,
    :meth:`merge_snapshot` — take it for the duration of one update, so
    concurrent writers (the heartbeat monitor thread, the main thread)
    never interleave half-applied values.
    """

    def __init__(self, name: str, kind: str, help: str,
                 lock: threading.Lock) -> None:
        self.name = name
        self.kind = kind                   # "counter" | "gauge" | "histogram"
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, Any] = {}

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        """Add ``amount`` to the counter child for ``labels``."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(key)
            series.value += amount

    def set(self, value: Union[int, float], **labels: Any) -> None:
        """Set the gauge child for ``labels`` to ``value``."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(key)
            series.value = value

    def observe(self, value: int, **labels: Any) -> None:
        """Record one sample into the histogram child for ``labels``."""
        key = _label_key(labels)
        with self._lock:
            hist = self._series.get(key)
            if hist is None:
                hist = self._series[key] = Histogram(self.name)
            hist.record(value)

    def merge_snapshot(self, snapshot: Dict[str, Any],
                       **labels: Any) -> None:
        """Merge a :meth:`Histogram.snapshot` dict into the child for
        ``labels`` — how per-job result histograms fold into the plan's
        live registry without replaying every sample."""
        key = _label_key(labels)
        incoming = Histogram.from_snapshot(self.name, snapshot)
        with self._lock:
            hist = self._series.get(key)
            if hist is None:
                self._series[key] = incoming
            else:
                hist.merge(incoming)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def get(self, **labels: Any) -> Union[int, float]:
        """Current value of one counter/gauge child (0 when absent)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.value if series is not None else 0

    def series(self) -> List[Tuple[LabelKey, Any]]:
        """``(labels, value-or-histogram)`` pairs in sorted label order.

        Histograms come back as **copies taken under the lock**: a
        scraper rendering buckets/sum/count while workers keep
        observing would otherwise read torn state (a bucket increment
        without its ``count``), and the Prometheus invariant
        ``le="+Inf" == _count`` would flicker.  Counter/gauge values
        are plain numbers, immutable once read.
        """
        with self._lock:
            items = sorted(self._series.items())
            if self.kind == "histogram":
                return [(key, hist.copy()) for key, hist in items]
            return [(key, series.value) for key, series in items]

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


class MetricsRegistry:
    """Thread-safe collection of metric families, pull-based.

    One lock guards the whole registry: updates are single dict/int
    operations, so contention is negligible next to simulation work,
    and a snapshot taken under the lock is a consistent cut across
    every family.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------ #
    # Family constructors (idempotent)
    # ------------------------------------------------------------------ #

    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, self._lock)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        """A monotonically increasing metric (``inc``)."""
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        """A set-to-current-value metric (``set``)."""
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "") -> MetricFamily:
        """A log2-bucketed distribution metric (``observe``)."""
        return self._family(name, "histogram", help)

    # ------------------------------------------------------------------ #
    # Reads / lifecycle
    # ------------------------------------------------------------------ #

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic nested-dict view of every family.

        Layout: ``{name: {"kind", "help", "series": [{"labels", "value"}
        | {"labels", "histogram"}]}}`` with families and label sets in
        sorted order, so two registries with equal contents snapshot to
        byte-identical JSON.
        """
        out: Dict[str, Any] = {}
        for family in self.families():
            rows: List[Dict[str, Any]] = []
            for labels, value in family.series():
                row: Dict[str, Any] = {"labels": dict(labels)}
                if family.kind == "histogram":
                    row["histogram"] = value.snapshot()
                else:
                    row["value"] = value
                rows.append(row)
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "series": rows}
        return out

    def reset(self) -> None:
        """Drop every family and series (the fold starts from here)."""
        with self._lock:
            self._families.clear()

    def remove(self, name: str) -> None:
        """Drop one family if present — how the heartbeat monitor wipes
        its transient ``repro_worker_*`` gauges on stop, so beats that
        drain after the deterministic fold cannot leak into the final
        snapshot."""
        with self._lock:
            self._families.pop(name, None)


class NullMetrics:
    """The disabled registry: probe sites see ``enabled == False`` and
    every update is a no-op, so telemetry-off runs pay one attribute
    check per site (same discipline as :data:`~repro.obs.tracer.
    NULL_TRACER`)."""

    enabled = False

    def counter(self, name: str, help: str = "") -> "NullMetrics":
        return self

    gauge = counter
    histogram = counter

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        return None

    def set(self, value: Union[int, float], **labels: Any) -> None:
        return None

    def observe(self, value: int, **labels: Any) -> None:
        return None

    def merge_snapshot(self, snapshot: Dict[str, Any],
                       **labels: Any) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def reset(self) -> None:
        return None

    def remove(self, name: str) -> None:
        return None


#: Shared do-nothing registry, the default everywhere.
NULL_METRICS = NullMetrics()


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #

def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text format: backslash, quote, newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _render_labels(labels: Iterable[Tuple[str, str]],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4).

    Families sorted by name, series by label set; histograms expose
    cumulative ``_bucket{le=...}`` series on the log2 upper bounds plus
    ``_sum`` and ``_count``.  Deterministic: equal registries render to
    byte-identical text.
    """
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in family.series():
            if family.kind != "histogram":
                lines.append(f"{family.name}{_render_labels(labels)} "
                             f"{_format_value(value)}")
                continue
            cumulative = 0
            for i, count in enumerate(value.counts):
                if not count:
                    continue
                cumulative += count
                hi = Histogram.bucket_bounds(i)[1]
                lines.append(
                    f"{family.name}_bucket"
                    f"{_render_labels(labels, (('le', str(hi)),))} "
                    f"{cumulative}")
            lines.append(
                f"{family.name}_bucket"
                f"{_render_labels(labels, (('le', '+Inf'),))} {value.count}")
            lines.append(f"{family.name}_sum{_render_labels(labels)} "
                         f"{value.total}")
            lines.append(f"{family.name}_count{_render_labels(labels)} "
                         f"{value.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- #
# JSONL snapshot log
# ---------------------------------------------------------------------- #

class SnapshotLog:
    """Appends timestamped registry snapshots as JSON Lines.

    One line per :meth:`append` call: ``{"schema", "ts", "metrics"}``.
    The heartbeat monitor drives this periodically during a live run;
    the CLI appends one final snapshot after the fold, so the last line
    of the file is always the deterministic end-of-plan state.
    """

    def __init__(self, sink: Union[str, Path, IO[str]]) -> None:
        if isinstance(sink, (str, Path)):
            self._sink: Optional[IO[str]] = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self.appended = 0

    def append(self, registry: MetricsRegistry,
               ts: Optional[float] = None) -> None:
        if self._sink is None:
            return
        doc = {"schema": METRICS_SCHEMA,
               "ts": time.time() if ts is None else ts,
               "metrics": registry.snapshot()}
        self._sink.write(json.dumps(doc, sort_keys=True) + "\n")
        self._sink.flush()
        self.appended += 1

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None

    def __enter__(self) -> "SnapshotLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# /metrics HTTP endpoint (stdlib only)
# ---------------------------------------------------------------------- #

class MetricsServer:
    """Minimal scrape endpoint on a background thread.

    ``GET /metrics`` returns the Prometheus text rendering;
    ``GET /metrics.json`` the nested-dict snapshot.  ``port=0`` binds an
    ephemeral port (read it back from :attr:`port`), which is what the
    tests use.  The server holds only a reference to the registry — it
    renders at request time, so scrapes always see the current state.
    """

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        import http.server

        server_registry = registry

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                if self.path.split("?")[0] == "/metrics":
                    body = render_prometheus(server_registry).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path.split("?")[0] == "/metrics.json":
                    body = json.dumps(server_registry.snapshot(),
                                      sort_keys=True).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "try /metrics")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                return None          # scrapes must not pollute stderr

        self._server = http.server.ThreadingHTTPServer((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Deterministic folding of plan outcomes
# ---------------------------------------------------------------------- #

def fold_result(registry: MetricsRegistry, result: Any,
                fingerprint: str) -> None:
    """Fold one ``SimulationResult`` into the registry.

    Additive quantities become counters labeled ``{workload, mmu}`` (a
    sweep's points sum, like any multi-instance Prometheus target);
    per-job quantities become gauges labeled ``{workload, mmu, job}``
    with the job fingerprint; every structure counter in ``result.
    stats`` lands under ``repro_stat_total{group, counter, ...}`` — the
    hot-path instrumentation (synonym filter probes, delayed-TLB
    misses, cache hits) exported without touching the hot path itself.

    Only model-deterministic quantities are folded — wall-clock
    durations would break the serial-vs-parallel byte-identity of the
    final snapshot; they live in the run manifest and the cross-run
    store instead.
    """
    labels = {"workload": result.workload, "mmu": result.mmu}
    registry.counter("repro_accesses_total",
                     "timed memory accesses simulated").inc(
        result.accesses, **labels)
    registry.counter("repro_instructions_total",
                     "instructions simulated").inc(
        result.instructions, **labels)
    registry.counter("repro_cycles_total", "simulated cycles").inc(
        result.cycles, **labels)
    registry.gauge("repro_ipc", "instructions per cycle, per job").set(
        result.ipc, job=fingerprint, **labels)
    stat = registry.counter("repro_stat_total",
                            "structure counters by group")
    for group, counters in sorted(result.stats.items()):
        for counter, value in sorted(counters.items()):
            stat.inc(value, group=group, counter=counter, **labels)
    cycles = registry.counter("repro_stage_cycles_total",
                              "cycle attribution by pipeline stage")
    for stage, value in sorted(result.cycle_breakdown.items()):
        cycles.inc(value, stage=stage, **labels)
    latency = registry.histogram("repro_latency_cycles",
                                 "per-stage latency distributions")
    for name, snap in sorted(result.histograms.items()):
        latency.merge_snapshot(snap, stage=name, **labels)


def fold_plan(registry: MetricsRegistry, jobs: Iterable[Any],
              outcomes: Mapping[str, Any],
              cached: Iterable[str]) -> None:
    """Rebuild the registry from a finished plan's outcomes.

    Starts from :meth:`MetricsRegistry.reset`, then folds every outcome
    in plan order — so the final registry state is a pure function of
    ``(jobs, outcomes, cached)`` and byte-identical between serial and
    parallel execution, live publishes and heartbeat gauges included
    (they are wiped by the reset).
    """
    from repro.exec.job import JobError

    registry.reset()
    cached_set = set(cached)
    jobs_total = registry.counter("repro_jobs_total",
                                  "plan outcomes by status")
    for job in jobs:
        fingerprint = job.fingerprint()
        outcome = outcomes[fingerprint]
        if isinstance(outcome, JobError):
            jobs_total.inc(status="error")
            continue
        jobs_total.inc(
            status="cached" if fingerprint in cached_set else "ran")
        fold_result(registry, outcome, fingerprint)
