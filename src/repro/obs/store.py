"""Cross-run metrics store: every finished run, queryable forever.

The bench gate compares *one* baseline against *one* current document;
this module keeps the whole history.  A :class:`MetricsStore` is a
single SQLite file (stdlib ``sqlite3``, no dependencies) with two
tables:

* ``runs``    — one row per ingested run, keyed by its **run key** (the
  fingerprint of the manifest identity — same inputs, same key), with
  the manifest provenance columns;
* ``metrics`` — the flat ``(run, metric name, value)`` triples the
  queries and trends read.

Ingest understands every machine-readable document the CLI emits —
``repro.result/v1`` (``repro run --json``), ``repro.compare/v1``,
``repro.sweep/v1`` and ``repro.bench/v2`` baselines — so history
accrues from whatever artifacts a campaign already produces.  Re-
ingesting the same run upserts (the key is deterministic), which makes
ingestion idempotent.

``repro db ingest | query | trend`` is the human surface; the bench
gate reaches in through :meth:`MetricsStore.metric_history` to annotate
its report with how a metric has moved across recorded history, not
just against one baseline.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

STORE_SCHEMA = "repro.store/v1"

_TABLES = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key         TEXT PRIMARY KEY,
    workload        TEXT NOT NULL,
    mmu             TEXT NOT NULL,
    config_hash     TEXT,
    seed            INTEGER,
    accesses        INTEGER,
    warmup          INTEGER,
    package_version TEXT,
    started_at      TEXT,
    duration_s      REAL,
    source          TEXT,
    ingested_unix   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    run_key TEXT NOT NULL REFERENCES runs(run_key) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    value   REAL NOT NULL,
    PRIMARY KEY (run_key, name)
);
CREATE INDEX IF NOT EXISTS metrics_by_name ON metrics(name);
"""


def run_key(identity: Dict[str, Any]) -> str:
    """Stable short hash of a manifest identity — the store's run key.

    Same construction as :func:`~repro.obs.manifest.config_fingerprint`
    over :meth:`RunManifest.identity`, so two ingests of the same run
    (even from different document kinds) collapse to one row.
    """
    text = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunRow:
    """One ingested run with its metric values."""

    run_key: str
    workload: str
    mmu: str
    package_version: Optional[str]
    started_at: Optional[str]
    duration_s: Optional[float]
    source: Optional[str]
    ingested_unix: float
    metrics: Dict[str, float]


class MetricsStore:
    """SQLite-backed history of run manifests and final metrics."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(str(self.path))
        self._db.executescript(_TABLES)
        self._db.execute(
            "INSERT OR IGNORE INTO store_meta(key, value) VALUES(?, ?)",
            ("schema", STORE_SCHEMA))
        self._db.commit()

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def ingest(self, doc: Dict[str, Any],
               source: Optional[str] = None) -> List[str]:
        """Ingest one machine-readable document; returns the run keys.

        Dispatches on the document's ``schema``: result, compare and
        sweep documents decompose into their per-run results; a bench
        baseline contributes one pseudo-run per benchmark entry (keyed
        by the entry's recorded job fingerprint).
        """
        schema = doc.get("schema")
        if schema == "repro.result/v1":
            return [self.ingest_result(doc, source=source)]
        if schema == "repro.compare/v1":
            return [self.ingest_result(result, source=source, name=name)
                    for name, result in doc.get("results", {}).items()]
        if schema == "repro.sweep/v1":
            results = doc.get("results", [])
            sizes = doc.get("sizes") or []
            names = ([f"size={size}" for size in sizes]
                     if len(sizes) == len(results)
                     else [None] * len(results))
            return [self.ingest_result(result, source=source, name=name)
                    for result, name in zip(results, names)]
        if schema in ("repro.bench/v2", "repro.bench/v1"):
            return self.ingest_baseline(doc, source=source)
        raise ValueError(f"cannot ingest schema {schema!r}")

    def ingest_result(self, doc: Dict[str, Any],
                      source: Optional[str] = None,
                      name: Optional[str] = None) -> str:
        """Ingest one ``repro.result/v1`` document (manifest required).

        ``name`` is the configuration name the document was produced
        under (a compare document's results key, a sweep point's swept
        value, the CLI's recorded ``config``).  It enters the run key:
        the manifest alone records the MMU *class* (two hybrid variants
        both say ``hybrid``) and would collapse genuinely different
        configurations into one row.
        """
        manifest = doc.get("manifest")
        if not manifest:
            raise ValueError("result document carries no manifest; "
                             "cannot derive a stable run key")
        config_name = name if name is not None else doc.get("config")
        identity = {key: manifest.get(key) for key in
                    ("schema", "workload", "mmu", "config_hash", "seed",
                     "accesses", "warmup", "package_version")}
        if config_name is not None:
            identity["config_name"] = config_name
        key = run_key(identity)
        metrics = _metrics_from_result_doc(doc)
        self._upsert(
            key,
            workload=doc.get("workload", manifest.get("workload", "?")),
            mmu=config_name or doc.get("mmu", manifest.get("mmu", "?")),
            config_hash=manifest.get("config_hash"),
            seed=manifest.get("seed"),
            accesses=manifest.get("accesses"),
            warmup=manifest.get("warmup"),
            package_version=manifest.get("package_version"),
            started_at=manifest.get("started_at"),
            duration_s=manifest.get("duration_s"),
            source=source, metrics=metrics)
        return key

    def ingest_baseline(self, doc: Dict[str, Any],
                        source: Optional[str] = None) -> List[str]:
        """Ingest a ``repro.bench/v2`` baseline, one row per entry."""
        keys: List[str] = []
        meta = doc.get("meta") or {}
        for entry in doc.get("benchmarks", []):
            metrics = {name: float(value)
                       for name, value in (entry.get("metrics") or {}).items()}
            if "seconds" in entry:
                metrics.setdefault("seconds", float(entry["seconds"]))
            if not metrics:
                continue
            key = entry.get("fingerprint") or run_key(
                {"bench": entry.get("name")})
            self._upsert(
                key,
                workload=entry.get("workload", entry.get("name", "?")),
                mmu=entry.get("mmu", "-"),
                config_hash=entry.get("config_hash"),
                seed=entry.get("seed"),
                accesses=entry.get("accesses"),
                warmup=entry.get("warmup"),
                package_version=None,
                started_at=_iso_from_unix(meta.get("generated_unix")),
                duration_s=entry.get("seconds"),
                source=source, metrics=metrics)
            keys.append(key)
        return keys

    def _upsert(self, key: str, *, workload: str, mmu: str,
                config_hash: Optional[str], seed: Optional[int],
                accesses: Optional[int], warmup: Optional[int],
                package_version: Optional[str], started_at: Optional[str],
                duration_s: Optional[float], source: Optional[str],
                metrics: Dict[str, float]) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO runs(run_key, workload, mmu, "
            "config_hash, seed, accesses, warmup, package_version, "
            "started_at, duration_s, source, ingested_unix) "
            "VALUES(?,?,?,?,?,?,?,?,?,?,?,?)",
            (key, workload, mmu, config_hash, seed, accesses, warmup,
             package_version, started_at, duration_s, source, time.time()))
        self._db.execute("DELETE FROM metrics WHERE run_key = ?", (key,))
        self._db.executemany(
            "INSERT INTO metrics(run_key, name, value) VALUES(?,?,?)",
            [(key, name, float(value))
             for name, value in sorted(metrics.items())])
        self._db.commit()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        (count,) = self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(count)

    #: Query orderings: ``ingested`` is newest-ingest-first (the
    #: ``db query`` view); ``started`` sorts oldest-started-first with
    #: the configuration name and run key as tie-breaks, so outputs
    #: built on it are stable however runs entered the store.
    _ORDERINGS = {
        "ingested": " ORDER BY ingested_unix DESC, run_key",
        "started": " ORDER BY COALESCE(started_at, ''), mmu, run_key",
    }

    def query(self, workload: Optional[str] = None,
              mmu: Optional[str] = None,
              metric: Optional[str] = None,
              order: str = "ingested") -> List[RunRow]:
        """Ingested runs, optionally filtered.

        ``metric`` restricts the per-row metric maps to one name and
        drops runs that never recorded it.  ``order`` picks one of
        :data:`_ORDERINGS` (default: newest ingest first).
        """
        clauses, params = [], []          # type: ignore[var-annotated]
        if workload is not None:
            clauses.append("workload = ?")
            params.append(workload)
        if mmu is not None:
            clauses.append("mmu = ?")
            params.append(mmu)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        rows = self._db.execute(
            "SELECT run_key, workload, mmu, package_version, started_at, "
            "duration_s, source, ingested_unix FROM runs" + where +
            self._ORDERINGS[order], params).fetchall()
        out: List[RunRow] = []
        for row in rows:
            metrics = dict(self._db.execute(
                "SELECT name, value FROM metrics WHERE run_key = ? "
                "ORDER BY name", (row[0],)).fetchall())
            if metric is not None:
                if metric not in metrics:
                    continue
                metrics = {metric: metrics[metric]}
            out.append(RunRow(run_key=row[0], workload=row[1], mmu=row[2],
                              package_version=row[3], started_at=row[4],
                              duration_s=row[5], source=row[6],
                              ingested_unix=row[7], metrics=metrics))
        return out

    def metric_names(self) -> List[str]:
        return [name for (name,) in self._db.execute(
            "SELECT DISTINCT name FROM metrics ORDER BY name")]

    def trend(self, metric: str, workload: Optional[str] = None,
              mmu: Optional[str] = None,
              limit: Optional[int] = None) -> List[Tuple[RunRow, float]]:
        """``(run, value)`` history of one metric, oldest → newest.

        Ordered by each run's recorded start time (then configuration
        name, then run key), **not** by ingest order — re-ingesting the
        same documents in a different order yields the same trend.
        Optionally capped to the last ``limit`` points.
        """
        rows = [(run, run.metrics[metric])
                for run in self.query(workload=workload, mmu=mmu,
                                      metric=metric, order="started")]
        if limit is not None and limit > 0:
            rows = rows[-limit:]
        return rows

    def metric_history(self, workload: str, mmu: str, metric: str,
                       limit: int = 5) -> List[float]:
        """The last ``limit`` recorded values of one metric for one
        (workload, MMU) — what the bench gate folds into its report."""
        return [value for _, value in
                self.trend(metric, workload=workload, mmu=mmu, limit=limit)]

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "MetricsStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #

def _iso_from_unix(unix: Optional[float]) -> Optional[str]:
    if unix is None:
        return None
    from datetime import datetime, timezone

    return datetime.fromtimestamp(unix, timezone.utc).isoformat()


def _metrics_from_result_doc(doc: Dict[str, Any]) -> Dict[str, float]:
    """The flat metric set of one ``repro.result/v1`` document — the
    same quantities the bench suite gates, pulled from the JSON side."""
    metrics: Dict[str, float] = {
        "ipc": float(doc.get("ipc", 0.0)),
        "cycles": float(doc.get("cycles", 0.0)),
        "instructions": float(doc.get("instructions", 0)),
        "accesses": float(doc.get("accesses", 0)),
    }
    if "llc_miss_rate" in doc:
        metrics["llc_miss_rate"] = float(doc["llc_miss_rate"])
    stats = doc.get("stats", {})
    delayed = stats.get("delayed_tlb", {})
    instructions = metrics["instructions"]
    if delayed and instructions > 0:
        metrics["delayed_tlb_mpki"] = (
            1000.0 * float(delayed.get("misses", 0)) / instructions)
    hybrid = stats.get("hybrid", {})
    if hybrid.get("accesses"):
        metrics["tlb_bypass_rate"] = (
            float(hybrid.get("tlb_bypasses", 0)) / float(hybrid["accesses"]))
    return metrics


def format_runs(rows: Iterable[RunRow],
                metric: Optional[str] = None) -> str:
    """Markdown table of query results (the ``repro db query`` output)."""
    from repro.sim.report import markdown_table

    rows = list(rows)
    if not rows:
        return "(no runs recorded)"
    if metric is not None:
        table = [[r.run_key, r.workload, r.mmu, r.package_version or "-",
                  f"{r.metrics.get(metric, float('nan')):.6g}",
                  r.started_at or "-"] for r in rows]
        return markdown_table(
            ["run", "workload", "mmu", "version", metric, "started"], table)
    table = [[r.run_key, r.workload, r.mmu, r.package_version or "-",
              " ".join(f"{name}={value:.6g}"
                       for name, value in sorted(r.metrics.items())),
              r.started_at or "-"] for r in rows]
    return markdown_table(
        ["run", "workload", "mmu", "version", "metrics", "started"], table)


def format_trend(history: List[Tuple[RunRow, float]], metric: str) -> str:
    """Text rendering of one metric's history, with a spark bar.

    The spark rendering is :func:`repro.sim.report.spark_line`: a
    single-point (or flat) history draws mid-height blocks — a level
    trend — instead of collapsing to the bottom glyph.
    """
    from repro.sim.report import spark_line

    if not history:
        return f"(no history for {metric})"
    values = [value for _, value in history]
    lo, hi = min(values), max(values)
    spark = spark_line(values)
    lines = [f"{metric}: {spark}  "
             f"(n={len(values)}, min={lo:.6g}, max={hi:.6g}, "
             f"latest={values[-1]:.6g})"]
    for run, value in history:
        lines.append(f"  {run.workload}/{run.mmu} {run.run_key} "
                     f"{value:.6g}  "
                     f"[{run.package_version or '-'}] "
                     f"{run.started_at or run.source or ''}".rstrip())
    return "\n".join(lines)
