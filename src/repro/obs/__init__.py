"""Observability layer: event tracing, histograms, interval stats, manifests.

The simulator's aggregate counters answer *how many*; this package answers
*where* and *when*:

* :mod:`repro.obs.tracer`    — typed per-access pipeline events with
  sampling, a bounded ring buffer, and a JSONL sink.  The disabled path
  (:data:`NULL_TRACER`) costs one attribute check per probe site.
* :mod:`repro.obs.histogram` — log2-bucketed distributions for access
  latency, walk depth, and filter occupancy.
* :mod:`repro.obs.interval`  — windowed delta snapshots of every stat
  counter, turning end-of-run aggregates into time series.
* :mod:`repro.obs.manifest`  — run provenance (config hash, seed,
  workload, package version, host) attached to every result.
* :mod:`repro.obs.traceview` — the read side: offline analytics over
  JSONL traces (run splitting, cycle attribution, per-stage histograms,
  hit-level mix, top-N slowest accesses).
* :mod:`repro.obs.aggregate` — plan-level merge of per-job histograms
  and interval series, so parallel profiles equal serial ones.
* :mod:`repro.obs.metrics`   — live telemetry: a thread-safe labeled
  metrics registry with Prometheus text exposition, JSONL snapshot
  logging, and an optional stdlib ``/metrics`` HTTP endpoint.
* :mod:`repro.obs.heartbeat` — worker heartbeats over a queue, the
  parent-side monitor with stale-worker detection, and the ``--live``
  status line.
* :mod:`repro.obs.store`     — the cross-run SQLite store behind
  ``repro db``: every ingested run's manifest and final metrics,
  queryable and trendable across history.
"""

from repro.obs.aggregate import ProfileAggregate, aggregate_results
from repro.obs.events import STAGES, TraceEvent
from repro.obs.heartbeat import (BeatSpec, Heartbeat, HeartbeatMonitor,
                                 HeartbeatPulse, LiveStatus, StaleWorker,
                                 WorkerStatus, open_beat_channel)
from repro.obs.histogram import Histogram
from repro.obs.interval import IntervalRecorder
from repro.obs.manifest import RunManifest, config_fingerprint
from repro.obs.metrics import (NULL_METRICS, MetricsRegistry, MetricsServer,
                               NullMetrics, SnapshotLog, fold_plan,
                               fold_result, render_prometheus)
from repro.obs.store import MetricsStore
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, TraceSpec
from repro.obs.traceview import (AccessRecord, RunSummary, TraceView,
                                 combine_summaries, read_trace)

__all__ = [
    "STAGES",
    "TraceEvent",
    "Histogram",
    "IntervalRecorder",
    "RunManifest",
    "config_fingerprint",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "TraceSpec",
    "AccessRecord",
    "RunSummary",
    "TraceView",
    "combine_summaries",
    "read_trace",
    "ProfileAggregate",
    "aggregate_results",
    "MetricsRegistry",
    "MetricsServer",
    "NullMetrics",
    "NULL_METRICS",
    "SnapshotLog",
    "render_prometheus",
    "fold_plan",
    "fold_result",
    "BeatSpec",
    "Heartbeat",
    "HeartbeatMonitor",
    "HeartbeatPulse",
    "LiveStatus",
    "StaleWorker",
    "WorkerStatus",
    "open_beat_channel",
    "MetricsStore",
]
