"""Typed trace events emitted along the memory-access pipeline.

One *access* produces a short sequence of stage events sharing a ``seq``
number, in pipeline order:

``filter_probe`` → ``synonym_tlb``? → ``cache``+ → ``delayed_tlb`` /
``segment_walk`` / ``page_walk``? → ``access`` (the closing summary).

``cache`` events may occur more than once per access: hardware metadata
reads (PTE and index-tree node fetches) are routed through the hierarchy
under their physical keys, and each such probe is traced too — that is
the walk traffic the paper's large-LLC argument is about.

``mark`` events carry out-of-band annotations (run boundaries in a
multi-run trace file) and do not belong to any access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Stage names, in pipeline order (``access`` closes each sampled access).
STAGE_FILTER = "filter_probe"
STAGE_SYNONYM_TLB = "synonym_tlb"
STAGE_CACHE = "cache"
STAGE_DELAYED_TLB = "delayed_tlb"
STAGE_SEGMENT_WALK = "segment_walk"
STAGE_PAGE_WALK = "page_walk"
STAGE_DRAM = "dram"
STAGE_ACCESS = "access"
STAGE_MARK = "mark"

STAGES = (
    STAGE_FILTER,
    STAGE_SYNONYM_TLB,
    STAGE_CACHE,
    STAGE_DELAYED_TLB,
    STAGE_SEGMENT_WALK,
    STAGE_PAGE_WALK,
    STAGE_DRAM,
    STAGE_ACCESS,
    STAGE_MARK,
)


@dataclass(slots=True)
class TraceEvent:
    """One pipeline event of one sampled access."""

    seq: int                      # access sequence number (-1 for marks)
    stage: str                    # one of :data:`STAGES`
    cycles: int = 0               # cycles attributed to this stage
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict for the JSONL sink (detail keys are inlined)."""
        out: Dict[str, Any] = {"seq": self.seq, "stage": self.stage,
                               "cycles": self.cycles}
        out.update(self.detail)
        return out
