"""Windowed stat snapshots: every counter becomes a time series.

The recorder is driven by the simulator once per *timed* access.  At
window boundaries it diffs the cumulative :class:`StatRegistry` snapshot
(and the timing model's cycle/instruction totals) against the previous
boundary, yielding per-window deltas.  A trailing partial window is
flushed by :meth:`finish`, so a run of ``A`` accesses with window ``W``
produces exactly ``ceil(A / W)`` snapshots.

Deltas — not cumulative values — are stored because phase behavior
(warm-up transients, working-set shifts) only shows in the derivative;
cumulative curves flatten everything into the average the aggregate
counters already report.

Unbounded runs need a bound: with ``max_snapshots`` set, the recorder
*coarsens* whenever the list would exceed it — the effective interval
doubles and adjacent windows merge pairwise — so memory stays O(max)
while every recorded access remains accounted for (sums are preserved,
only the resolution drops).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class IntervalRecorder:
    """Accumulates per-window deltas of counters, cycles and instructions."""

    def __init__(self, registry, timing, interval: int,
                 max_snapshots: Optional[int] = None) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if max_snapshots is not None and max_snapshots < 2:
            raise ValueError("max_snapshots must be >= 2")
        self.interval = interval
        self.max_snapshots = max_snapshots
        self._registry = registry
        self._timing = timing
        self.snapshots: List[Dict[str, object]] = []
        self._in_window = 0
        self._prev_counters = registry.snapshot()
        self._prev_cycles = timing.total_cycles()
        self._prev_instructions = timing.acct.instructions

    def tick(self) -> None:
        """Account one timed access; snapshot at window boundaries."""
        self._in_window += 1
        if self._in_window >= self.interval:
            self._snap()

    def finish(self) -> None:
        """Flush a trailing partial window (if any)."""
        if self._in_window:
            self._snap()

    def _snap(self) -> None:
        counters = self._registry.snapshot()
        cycles = self._timing.total_cycles()
        instructions = self._timing.acct.instructions
        delta: Dict[str, Dict[str, int]] = {}
        for group, now in counters.items():
            prev = self._prev_counters.get(group, {})
            group_delta = {k: v - prev.get(k, 0) for k, v in now.items()}
            if any(group_delta.values()):
                delta[group] = {k: v for k, v in group_delta.items() if v}
        dc = cycles - self._prev_cycles
        di = instructions - self._prev_instructions
        self.snapshots.append({
            "index": len(self.snapshots),
            "accesses": self._in_window,
            "instructions": di,
            "cycles": dc,
            "ipc": di / dc if dc > 0 else 0.0,
            "counters": delta,
        })
        self._prev_counters = counters
        self._prev_cycles = cycles
        self._prev_instructions = instructions
        self._in_window = 0
        if (self.max_snapshots is not None
                and len(self.snapshots) > self.max_snapshots):
            self._coarsen()

    def _coarsen(self) -> None:
        """Double the effective interval by merging adjacent windows.

        Windows ``(0,1), (2,3), ...`` collapse pairwise; a trailing odd
        window survives unmerged (it simply covers half the new
        interval — its ``accesses`` field records the truth).  Sums of
        accesses, instructions, cycles and every counter are invariant
        under coarsening; ``ipc`` is recomputed from the merged deltas.
        """
        merged: List[Dict[str, object]] = []
        for i in range(0, len(self.snapshots), 2):
            pair = self.snapshots[i:i + 2]
            if len(pair) == 1:
                window = dict(pair[0])
                window["index"] = len(merged)
                merged.append(window)
                continue
            first, second = pair
            counters: Dict[str, Dict[str, int]] = {}
            for source in (first["counters"], second["counters"]):
                for group, values in source.items():   # type: ignore[union-attr]
                    bucket = counters.setdefault(group, {})
                    for key, value in values.items():
                        bucket[key] = bucket.get(key, 0) + value
            di = first["instructions"] + second["instructions"]   # type: ignore[operator]
            dc = first["cycles"] + second["cycles"]               # type: ignore[operator]
            merged.append({
                "index": len(merged),
                "accesses": first["accesses"] + second["accesses"],  # type: ignore[operator]
                "instructions": di,
                "cycles": dc,
                "ipc": di / dc if dc > 0 else 0.0,
                "counters": counters,
            })
        self.snapshots = merged
        self.interval *= 2

    def series(self, group: str, counter: str) -> List[int]:
        """Extract one counter's per-window deltas across all snapshots."""
        return [s["counters"].get(group, {}).get(counter, 0)
                for s in self.snapshots]
