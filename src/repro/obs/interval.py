"""Windowed stat snapshots: every counter becomes a time series.

The recorder is driven by the simulator once per *timed* access.  At
window boundaries it diffs the cumulative :class:`StatRegistry` snapshot
(and the timing model's cycle/instruction totals) against the previous
boundary, yielding per-window deltas.  A trailing partial window is
flushed by :meth:`finish`, so a run of ``A`` accesses with window ``W``
produces exactly ``ceil(A / W)`` snapshots.

Deltas — not cumulative values — are stored because phase behavior
(warm-up transients, working-set shifts) only shows in the derivative;
cumulative curves flatten everything into the average the aggregate
counters already report.
"""

from __future__ import annotations

from typing import Dict, List


class IntervalRecorder:
    """Accumulates per-window deltas of counters, cycles and instructions."""

    def __init__(self, registry, timing, interval: int) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self._registry = registry
        self._timing = timing
        self.snapshots: List[Dict[str, object]] = []
        self._in_window = 0
        self._prev_counters = registry.snapshot()
        self._prev_cycles = timing.total_cycles()
        self._prev_instructions = timing.acct.instructions

    def tick(self) -> None:
        """Account one timed access; snapshot at window boundaries."""
        self._in_window += 1
        if self._in_window >= self.interval:
            self._snap()

    def finish(self) -> None:
        """Flush a trailing partial window (if any)."""
        if self._in_window:
            self._snap()

    def _snap(self) -> None:
        counters = self._registry.snapshot()
        cycles = self._timing.total_cycles()
        instructions = self._timing.acct.instructions
        delta: Dict[str, Dict[str, int]] = {}
        for group, now in counters.items():
            prev = self._prev_counters.get(group, {})
            group_delta = {k: v - prev.get(k, 0) for k, v in now.items()}
            if any(group_delta.values()):
                delta[group] = {k: v for k, v in group_delta.items() if v}
        dc = cycles - self._prev_cycles
        di = instructions - self._prev_instructions
        self.snapshots.append({
            "index": len(self.snapshots),
            "accesses": self._in_window,
            "instructions": di,
            "cycles": dc,
            "ipc": di / dc if dc > 0 else 0.0,
            "counters": delta,
        })
        self._prev_counters = counters
        self._prev_cycles = cycles
        self._prev_instructions = instructions
        self._in_window = 0

    def series(self, group: str, counter: str) -> List[int]:
        """Extract one counter's per-window deltas across all snapshots."""
        return [s["counters"].get(group, {}).get(counter, 0)
                for s in self.snapshots]
