"""Log2-bucketed histograms for latency / depth / occupancy distributions.

Bucket ``0`` holds the value ``0``; bucket ``i >= 1`` holds the half-open
power-of-two range ``[2^(i-1), 2^i)`` — i.e. a value lands in bucket
``value.bit_length()``.  Recording is one ``bit_length`` plus a list
increment, cheap enough to leave enabled on the per-access path.

Latency distributions are heavy-tailed (an L1 hit is 4 cycles, a full
2-D virtualized walk is hundreds), so geometric buckets give constant
relative resolution where linear buckets would either saturate or blur
the tail the paper's delayed-translation argument is about.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Enough buckets for any 64-bit cycle count.
NUM_BUCKETS = 66


class Histogram:
    """Fixed-geometry log2 histogram of non-negative integer samples."""

    __slots__ = ("name", "counts", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.total = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def record(self, value: int) -> None:
        """Record one sample (negatives clamp to the zero bucket)."""
        self.counts[value.bit_length() if value > 0 else 0] += 1
        self.count += 1
        self.total += value if value > 0 else 0

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram's samples into this one."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total

    def copy(self) -> "Histogram":
        """An independent clone — how the metrics registry hands a
        consistent histogram to readers without holding its lock while
        they render."""
        clone = Histogram(self.name)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        return clone

    @classmethod
    def from_snapshot(cls, name: str,
                      snapshot: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot` dict.

        Snapshots keep the full per-bucket counts and the exact
        ``count``/``total``, so this is lossless:
        ``from_snapshot(n, h.snapshot()).snapshot() == h.snapshot()``.
        That is what lets per-job histograms persisted in
        ``repro.result/v1`` documents be merged across a parallel plan.
        """
        h = cls(name)
        for bucket in snapshot.get("buckets", ()):      # type: ignore[union-attr]
            lo = bucket["lo"]
            h.counts[lo.bit_length()] = bucket["count"]
        h.count = int(snapshot.get("count", 0))         # type: ignore[arg-type]
        h.total = int(snapshot.get("total", 0))         # type: ignore[arg-type]
        return h

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[int, int]:
        """Inclusive ``(lo, hi)`` value bounds of bucket ``index``."""
        if index <= 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the ``p``-th percentile."""
        if not self.count:
            return 0
        threshold = self.count * min(max(p, 0.0), 100.0) / 100.0
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= threshold and c:
                return self.bucket_bounds(i)[1]
        return self.bucket_bounds(NUM_BUCKETS - 1)[1]

    def max_bucket_hi(self) -> int:
        """Upper bound of the highest non-empty bucket."""
        for i in range(NUM_BUCKETS - 1, -1, -1):
            if self.counts[i]:
                return self.bucket_bounds(i)[1]
        return 0

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: only non-empty buckets are listed."""
        buckets = []
        for i, c in enumerate(self.counts):
            if not c:
                continue
            lo, hi = self.bucket_bounds(i)
            buckets.append({"lo": lo, "hi": hi, "count": c})
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": buckets,
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}: n={self.count}, "
                f"mean={self.mean():.1f}, p99={self.percentile(99)})")
