"""Run manifests: reproducible provenance for every simulation result.

A manifest answers "what exactly produced this number?": the workload,
MMU configuration name, a stable fingerprint of every hardware parameter,
the trace seed, access/warmup counts, the package version, and the
runtime environment (host, Python, wall-clock).  :meth:`RunManifest.
identity` strips the environment fields, leaving only what determines
the simulated outcome — two runs with equal identities must produce
identical results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
from dataclasses import dataclass
from typing import Any, Dict, Optional

MANIFEST_SCHEMA = "repro.manifest/v1"


def config_fingerprint(config: Any) -> str:
    """Stable short hash of a (nested, frozen) config dataclass."""
    if dataclasses.is_dataclass(config):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunManifest:
    """Provenance record attached to one :class:`SimulationResult`."""

    workload: str
    mmu: str
    config_hash: str
    seed: Optional[int]
    accesses: int
    warmup: int
    package_version: str
    python_version: str
    host: str
    started_at: str          # ISO-8601 wall-clock
    duration_s: float
    schema: str = MANIFEST_SCHEMA

    @classmethod
    def collect(cls, workload: str, mmu: str, config: Any,
                seed: Optional[int], accesses: int, warmup: int,
                started_at: str, duration_s: float) -> "RunManifest":
        from repro import __version__  # deferred: repro imports sim at load

        return cls(
            workload=workload,
            mmu=mmu,
            config_hash=config_fingerprint(config),
            seed=seed,
            accesses=accesses,
            warmup=warmup,
            package_version=__version__,
            python_version=platform.python_version(),
            host=platform.node(),
            started_at=started_at,
            duration_s=duration_s,
        )

    def identity(self) -> Dict[str, Any]:
        """The deterministic subset: equal identities ⇒ equal results."""
        return {
            "schema": self.schema,
            "workload": self.workload,
            "mmu": self.mmu,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "accesses": self.accesses,
            "warmup": self.warmup,
            "package_version": self.package_version,
        }

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunManifest":
        """Inverse of :meth:`to_dict`; unknown keys are ignored so newer
        documents still load (forward compatibility for cached results)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in doc.items()
                      if key in names})
