"""Timing: DRAM model and analytic cycle accounting."""

from repro.timing.dram import DramModel
from repro.timing.model import CycleAccounting, TimingModel

__all__ = ["DramModel", "CycleAccounting", "TimingModel"]
