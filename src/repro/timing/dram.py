"""Bank/row-buffer DRAM model (DDR3-1600-like, Table IV).

A deliberately small model in the DRAMSim2 role: per-bank open-row
tracking gives row-buffer hits ~22 ns and conflicts ~52 ns (expressed in
3.4 GHz core cycles), plus a flat queueing penalty.  Address interleaving
maps consecutive rows across banks so streaming workloads enjoy bank
parallelism while random-access workloads (GUPS) pay conflict latency —
the first-order behaviour the paper's relative results depend on.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import DramConfig
from repro.common.stats import StatGroup


class DramModel:
    """Open-page DRAM with per-bank row buffers."""

    def __init__(self, config: DramConfig | None = None,
                 stats: StatGroup | None = None) -> None:
        self.config = config or DramConfig()
        self.stats = stats or StatGroup("dram")
        total_banks = self.config.channels * self.config.banks
        self._open_rows: List[Optional[int]] = [None] * total_banks
        self._total_banks = total_banks
        self._row_shift = (self.config.row_bytes - 1).bit_length()

    def _locate(self, pa: int) -> tuple[int, int]:
        row = pa >> self._row_shift
        bank = row % self._total_banks
        return bank, row

    def access(self, pa: int, is_write: bool) -> int:
        """Access one block; returns cycles and updates the open row."""
        bank, row = self._locate(pa)
        self.stats.add("accesses")
        if is_write:
            self.stats.add("writes")
        if self._open_rows[bank] == row:
            self.stats.add("row_hits")
            cycles = self.config.row_hit_cycles
        else:
            self.stats.add("row_misses")
            cycles = self.config.row_miss_cycles
            self._open_rows[bank] = row
        return cycles + self.config.queue_penalty_cycles

    def row_hit_rate(self) -> float:
        return self.stats.ratio("row_hits", "accesses")

    def reset_rows(self) -> None:
        """Close all rows (rank power-down / experiment isolation)."""
        self._open_rows = [None] * self._total_banks
