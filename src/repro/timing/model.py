"""Analytic cycle model over per-access outcomes.

The paper runs MARSSx86 cycle-accurately; reproducing an OoO pipeline at
cycle fidelity in Python is infeasible at trace lengths that exercise TLB
reach (DESIGN.md §6).  Instead we use a standard analytic decomposition:

    cycles = instructions × base_CPI
           + Σ front_cycles                (translation blocking the L1)
           + Σ exposed memory stalls

where an access's memory stall is its cache + delayed-translation + DRAM
cycles beyond the pipelined L1 hit, discounted by the workload's
memory-level parallelism (independent misses overlap in the ROB/LSQ; a
pointer-chasing workload has MLP≈1, a streaming one MLP≈4+).  The same
model is applied to every MMU configuration, so relative performance —
what Figure 9 reports — reflects only where translation work happens and
how many misses each scheme takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.params import CoreConfig
from repro.obs.histogram import Histogram

if TYPE_CHECKING:  # avoid a circular import; outcomes are duck-typed here
    from repro.core.mmu_base import AccessOutcome


@dataclass
class CycleAccounting:
    """Running totals for one simulated core/workload."""

    instructions: int = 0
    memory_accesses: int = 0
    front_stall_cycles: int = 0
    cache_stall_cycles: int = 0
    delayed_stall_cycles: int = 0
    dram_stall_cycles: int = 0

    def merge(self, other: "CycleAccounting") -> None:
        self.instructions += other.instructions
        self.memory_accesses += other.memory_accesses
        self.front_stall_cycles += other.front_stall_cycles
        self.cache_stall_cycles += other.cache_stall_cycles
        self.delayed_stall_cycles += other.delayed_stall_cycles
        self.dram_stall_cycles += other.dram_stall_cycles


class TimingModel:
    """Combines access outcomes into cycles / IPC."""

    def __init__(self, core: CoreConfig | None = None, mlp: float = 1.0,
                 l1_hit_pipelined_cycles: int = 4) -> None:
        self.core = core or CoreConfig()
        if mlp < 1.0:
            raise ValueError("MLP cannot be below 1")
        self.mlp = mlp
        # An L1 hit of this latency is fully hidden by the pipeline.
        self.l1_hit_pipelined_cycles = l1_hit_pipelined_cycles
        self.acct = CycleAccounting()
        # Latency distributions over the timed window (log2 buckets).
        self.access_hist = Histogram("access_cycles")
        self.front_hist = Histogram("front_translation_cycles")
        self.delayed_hist = Histogram("delayed_translation_cycles")

    def record(self, outcome: "AccessOutcome", instructions_between: int = 1) -> None:
        """Account one memory access plus the instructions preceding it."""
        acct = self.acct
        acct.instructions += instructions_between
        acct.memory_accesses += 1
        acct.front_stall_cycles += outcome.front_cycles
        exposed_cache = max(0, outcome.cache_cycles - self.l1_hit_pipelined_cycles)
        acct.cache_stall_cycles += exposed_cache
        acct.delayed_stall_cycles += outcome.delayed_cycles
        acct.dram_stall_cycles += outcome.dram_cycles
        self.access_hist.record(outcome.front_cycles + outcome.cache_cycles
                                + outcome.delayed_cycles + outcome.dram_cycles)
        # Zero-cost stages are the common case; keep their histograms to
        # the accesses where the stage actually ran.
        if outcome.front_cycles:
            self.front_hist.record(outcome.front_cycles)
        if outcome.delayed_cycles:
            self.delayed_hist.record(outcome.delayed_cycles)

    def record_compute(self, instructions: int) -> None:
        """Account trailing non-memory instructions."""
        self.acct.instructions += instructions

    # ------------------------------------------------------------------ #
    # Derived results
    # ------------------------------------------------------------------ #

    def total_cycles(self) -> float:
        acct = self.acct
        base = acct.instructions * self.core.base_cpi
        # Translation stalls that block the access path do not overlap.
        blocking = acct.front_stall_cycles
        # Miss stalls overlap across independent accesses (MLP discount).
        overlapped = (acct.cache_stall_cycles + acct.delayed_stall_cycles
                      + acct.dram_stall_cycles) / self.mlp
        return base + blocking + overlapped

    def ipc(self) -> float:
        cycles = self.total_cycles()
        if cycles <= 0:
            return 0.0
        return self.acct.instructions / cycles

    def cpi(self) -> float:
        if not self.acct.instructions:
            return 0.0
        return self.total_cycles() / self.acct.instructions

    def histograms(self) -> dict:
        """The model's latency histograms, keyed by name."""
        return {h.name: h for h in (self.access_hist, self.front_hist,
                                    self.delayed_hist)}

    def histogram_snapshots(self) -> dict:
        """JSON-ready snapshots of every non-empty histogram."""
        return {name: h.snapshot() for name, h in self.histograms().items()
                if h.count}

    def breakdown(self) -> dict:
        """Cycle components (for stacked-bar style reporting)."""
        acct = self.acct
        return {
            "base": acct.instructions * self.core.base_cpi,
            "translation_front": acct.front_stall_cycles,
            "cache": acct.cache_stall_cycles / self.mlp,
            "translation_delayed": acct.delayed_stall_cycles / self.mlp,
            "dram": acct.dram_stall_cycles / self.mlp,
        }
