"""Virtualization support: hypervisor, 2-D walks, virtualized MMUs."""

from repro.virt.hybrid_virt import (
    Delayed2dTlbEngine,
    DelayedSegment2dEngine,
    VirtConventionalMmu,
    VirtHybridMmu,
)
from repro.virt.hypervisor import HostSegment, Hypervisor, VirtualMachine
from repro.virt.twod_walker import NestedTlb, TwoDWalker, TwoDWalkResult

__all__ = [
    "Delayed2dTlbEngine",
    "DelayedSegment2dEngine",
    "VirtConventionalMmu",
    "VirtHybridMmu",
    "HostSegment",
    "Hypervisor",
    "VirtualMachine",
    "NestedTlb",
    "TwoDWalker",
    "TwoDWalkResult",
]
