"""Virtualized MMU front-ends (Section V).

* :class:`VirtConventionalMmu` — the comparison point: physically (machine)
  addressed caches behind per-core TLBs caching gVA→MA; TLB misses pay a
  2-D nested walk accelerated by a nested TLB + 2-D walk cache (the
  "state-of-the-art translation cache" baseline).

* :class:`VirtHybridMmu` — hybrid virtual caching under virtualization:
  the ASID is VMID-extended, guest and host synonym filters are both
  probed with the gVA, non-synonym blocks travel the hierarchy as
  ASID+gVA, and the 2-D translation is delayed past the LLC — either a
  delayed gVA→MA TLB filled by nested walks, or two-step segment
  translation (guest many-segment gVA→gPA, then host segment gPA→MA)
  short-circuited by a 128-entry gVA→MA segment cache that skips the
  intermediate gPA entirely (Section V-B).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.address import (
    PAGE_SHIFT,
    physical_block_key,
    virtual_block_key,
    virtual_page_key,
)
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.core.mmu_base import AccessOutcome, MmuBase
from repro.osmodel.segments import SegmentFault
from repro.segtrans.many_segment import ManySegmentTranslator
from repro.segtrans.segment_cache import SegmentCache
from repro.tlb.base import SetAssociativeTlb, TlbEntry
from repro.tlb.delayed import DelayedTlb
from repro.tlb.hierarchy import TlbHierarchy
from repro.virt.hypervisor import Hypervisor, VirtualMachine
from repro.virt.twod_walker import TwoDWalker


class _VirtMmuBase(MmuBase):
    """Shared plumbing: a single-VM datapath over machine memory."""

    def __init__(self, hypervisor: Hypervisor, vm: VirtualMachine,
                 config: Optional[SystemConfig] = None) -> None:
        # The guest kernel provides the functional oracle surface the
        # common machinery expects (translate/pte_path), but data blocks
        # live at machine addresses supplied by the 2-D paths below.
        super().__init__(vm.guest_kernel, config or hypervisor.guest_config)
        self.hypervisor = hypervisor
        self.vm = vm

    def asid_of(self, guest_asid: int) -> int:
        """VMID-extended global ASID for a guest process (Section V)."""
        return self.hypervisor.global_asid(self.vm, guest_asid)


class VirtConventionalMmu(_VirtMmuBase):
    """Baseline virtualized system: gVA→MA TLBs + accelerated 2-D walks."""

    name = "virt_baseline"

    def __init__(self, hypervisor: Hypervisor, vm: VirtualMachine,
                 config: Optional[SystemConfig] = None) -> None:
        super().__init__(hypervisor, vm, config)
        cfg = self.config
        self.tlbs = [TlbHierarchy(cfg.l1_tlb, cfg.l2_tlb, f"vtlb_core{c}")
                     for c in range(cfg.cores)]
        self.walker = TwoDWalker(vm, cfg.walker,
                                 lambda ma: self.charge_physical_read(0, ma))
        for c in range(cfg.cores):
            self.stats.register(self.tlbs[c].stats)
        self.stats.register(self.walker.stats)
        self.stats.register(self.walker.nested_tlb.stats)
        vm.guest_kernel.on_shootdown(self._guest_shootdown)

    def _guest_shootdown(self, guest_asid: int, page_va: int) -> None:
        key = virtual_page_key(self.asid_of(guest_asid), page_va)
        for tlb in self.tlbs:
            tlb.invalidate(key)

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        self._accesses += 1
        page_key = virtual_page_key(self.asid_of(asid), va)
        lookup = self.tlbs[core].lookup(page_key)
        front = 0
        if lookup.level == "l1":
            entry = lookup.entry
        elif lookup.level == "l2":
            entry = lookup.entry
            front = self.config.l2_tlb.latency
        else:
            walk = self.walker.walk(asid, va)
            front = self.config.l2_tlb.latency + walk.cycles
            entry = TlbEntry(page_key, walk.ma >> PAGE_SHIFT, True,
                             walk.permissions)
            self.tlbs[core].fill(entry)
        assert entry is not None
        ma = (entry.pfn << PAGE_SHIFT) | (va & 0xFFF)
        result = self.caches.access(core, physical_block_key(ma), is_write)
        dram = self.memory_fill(ma, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, 0, dram, result.hit_level,
                             translated_pa=ma)


class Delayed2dTlbEngine:
    """Delayed gVA→MA TLB filled by nested walks."""

    def __init__(self, mmu: "VirtHybridMmu") -> None:
        self.mmu = mmu
        self.tlb = DelayedTlb(mmu.config.delayed_tlb)
        mmu.stats.register(self.tlb.stats)

    def translate(self, guest_asid: int, gva: int) -> Tuple[int, int, int]:
        page_key = virtual_page_key(self.mmu.asid_of(guest_asid), gva)
        entry = self.tlb.lookup(page_key)
        cycles = self.tlb.latency
        if entry is None:
            walk = self.mmu.walker.walk(guest_asid, gva)
            cycles += walk.cycles
            entry = TlbEntry(page_key, walk.ma >> PAGE_SHIFT, True,
                             walk.permissions)
            self.tlb.fill(entry)
        ma = (entry.pfn << PAGE_SHIFT) | (gva & 0xFFF)
        return ma, cycles, entry.permissions


class DelayedSegment2dEngine:
    """Two-step segment translation with a gVA→MA segment cache.

    Guest many-segment translation produces the gPA; a host-segment lookup
    (the hypervisor's own variable-length mapping) produces the MA.  The
    segment cache stores the composed gVA→MA offset for 2 MB regions,
    clipped to the intersection of the guest and host segments, skipping
    the gPA on hits (Section V-B).
    """

    def __init__(self, mmu: "VirtHybridMmu") -> None:
        self.mmu = mmu
        self.stats = StatGroup("delayed_2d_segments")
        self.guest_translator = ManySegmentTranslator(
            mmu.vm.guest_kernel, mmu.config.segments,
            memory_charge=lambda ma: mmu.charge_physical_read(0, ma),
            use_segment_cache=False)
        self.segment_cache = SegmentCache(mmu.config.segments)
        mmu.stats.register(self.guest_translator.stats)
        mmu.stats.register(self.guest_translator.index_cache.stats)
        mmu.stats.register(self.segment_cache.stats)
        mmu.stats.register(self.stats)

    def translate(self, guest_asid: int, gva: int) -> Tuple[int, int, int]:
        global_asid = self.mmu.asid_of(guest_asid)
        cycles = self.segment_cache.latency
        ma = self.segment_cache.lookup(global_asid, gva)
        if ma is not None:
            self.stats.add("sc_hits")
            return ma, cycles, 0x3

        try:
            guest = self.guest_translator.translate(guest_asid, gva)
        except SegmentFault:
            # Uncovered gVA (demand mapping): full nested walk fallback.
            self.stats.add("nested_fallbacks")
            walk = self.mmu.walker.walk(guest_asid, gva)
            return walk.ma, cycles + walk.cycles, walk.permissions
        gpa = guest.pa
        cycles += guest.cycles
        host_segment = self.mmu.vm.host_segment_for(gpa)
        cycles += self.mmu.config.segments.segment_table_latency
        ma = gpa + host_segment.offset
        self.stats.add("two_step_walks")

        # Compose the clipped validity window in gVA space.
        guest_seg = self.mmu.vm.guest_kernel.segment_table.find(guest_asid, gva)
        gva_lo = max(guest_seg.vbase,
                     host_segment.gpa_base - guest_seg.offset)
        gva_hi = min(guest_seg.vlimit,
                     host_segment.gpa_base + host_segment.length
                     - guest_seg.offset)
        self.segment_cache.fill(global_asid, gva, gva_lo, gva_hi,
                                ma - gva, guest_seg.seg_id)
        return ma, cycles, guest_seg.permissions


class VirtHybridMmu(_VirtMmuBase):
    """Hybrid virtual caching for virtualized systems."""

    name = "virt_hybrid"

    def __init__(self, hypervisor: Hypervisor, vm: VirtualMachine,
                 config: Optional[SystemConfig] = None,
                 delayed: str = "segments") -> None:
        super().__init__(hypervisor, vm, config)
        self.hybrid_stats = self.stats.group("hybrid")
        self.synonym_tlb = SetAssociativeTlb(self.config.synonym_tlb,
                                             "synonym_tlb")
        self.stats.register(self.synonym_tlb.stats)
        self.walker = TwoDWalker(vm, self.config.walker,
                                 lambda ma: self.charge_physical_read(0, ma))
        self.stats.register(self.walker.stats)
        self.stats.register(self.walker.nested_tlb.stats)
        if delayed == "tlb":
            self.delayed = Delayed2dTlbEngine(self)
        elif delayed == "segments":
            self.delayed = DelayedSegment2dEngine(self)
        else:
            raise ValueError(f"unknown delayed engine {delayed!r}")
        self.delayed_kind = delayed
        vm.guest_kernel.on_shootdown(self._guest_shootdown)
        vm.guest_kernel.on_page_flush(self._guest_flush_page)

    def _guest_shootdown(self, guest_asid: int, page_va: int) -> None:
        page_key = virtual_page_key(self.asid_of(guest_asid), page_va)
        self.synonym_tlb.invalidate(page_key)
        if isinstance(self.delayed, Delayed2dTlbEngine):
            self.delayed.tlb.shootdown(page_key)

    def _guest_flush_page(self, guest_asid: int, page_va: int,
                          was_shared: bool) -> None:
        if was_shared:
            try:
                ma = self.vm.translate_2d(guest_asid, page_va)[0]
            except Exception:
                return
            base_key = physical_block_key(ma)
        else:
            base_key = virtual_block_key(self.asid_of(guest_asid), page_va)
        self.caches.flush_blocks(base_key + i for i in range(64))

    # ------------------------------------------------------------------ #
    # Synonym detection: guest filter OR host filter, both keyed by gVA
    # ------------------------------------------------------------------ #

    def _is_candidate(self, guest_asid: int, gva: int) -> bool:
        process = self.vm.guest_kernel.process(guest_asid)
        return (process.synonym_filter.is_synonym_candidate(gva)
                or self.vm.host_filter.is_synonym_candidate(gva))

    # ------------------------------------------------------------------ #
    # The access path
    # ------------------------------------------------------------------ #

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        self._accesses += 1
        self.hybrid_stats.add("accesses")
        front = self.config.synonym_filter.latency

        if self._is_candidate(asid, va):
            self.hybrid_stats.add("synonym_candidates")
            key, extra, ma = self._resolve_candidate(asid, va)
            front += extra
        else:
            self.hybrid_stats.add("tlb_bypasses")
            key = virtual_block_key(self.asid_of(asid), va)
            ma = None

        result = self.caches.access(core, key, is_write)
        delayed_cycles = 0
        if result.llc_miss and ma is None:
            ma, delayed_cycles, _perms = self.delayed.translate(asid, va)
            if self._detect_late_synonym(core, asid, va, key):
                # Section V-A special case: the guest remapped this gVA
                # onto a hypervisor-shared frame without the hypervisor's
                # inverse map knowing the new name.  The delayed 2-D walk
                # just exposed it: raise to the hypervisor, which marks
                # the host filter, and retry through the synonym path.
                retry = self.access(core, asid, va, is_write)
                return AccessOutcome(
                    front + self.LATE_SYNONYM_TRAP_CYCLES
                    + retry.front_cycles,
                    result.latency + retry.cache_cycles,
                    delayed_cycles + retry.delayed_cycles,
                    retry.dram_cycles, retry.hit_level,
                    translated_pa=retry.translated_pa)
        if ma is None:
            ma = self.vm.translate_2d(asid, va)[0]
        dram = self.memory_fill(ma, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, delayed_cycles, dram,
                             result.hit_level, translated_pa=ma)

    #: OS/hypervisor trap cost for a late hypervisor-synonym discovery.
    LATE_SYNONYM_TRAP_CYCLES = 1500

    def _detect_late_synonym(self, core: int, asid: int, va: int,
                             key: int) -> bool:
        """Catch gVAs that reached the non-synonym path but whose backing
        frame is hypervisor-shared; mark the host filter and purge the
        wrongly (virtually) named lines."""
        if self._host_shared(asid, va):
            self.hybrid_stats.add("late_synonym_detections")
            self.vm.host_filter.mark_shared(va)
            self.caches.flush_blocks(key + i for i in range(64))
            return True
        return False

    def _resolve_candidate(self, guest_asid: int, gva: int):
        page_key = virtual_page_key(self.asid_of(guest_asid), gva)
        front = self.synonym_tlb.latency
        entry = self.synonym_tlb.lookup(page_key)
        if entry is None:
            walk = self.walker.walk(guest_asid, gva)
            front += walk.cycles
            is_synonym = walk.is_guest_shared or self._host_shared(guest_asid, gva)
            entry = TlbEntry(page_key, walk.ma >> PAGE_SHIFT, is_synonym,
                             walk.permissions)
            self.synonym_tlb.fill(entry)
        if entry.is_synonym:
            self.hybrid_stats.add("true_synonym_accesses")
            ma = (entry.pfn << PAGE_SHIFT) | (gva & 0xFFF)
            return physical_block_key(ma), front, ma
        self.hybrid_stats.add("false_positive_accesses")
        return virtual_block_key(self.asid_of(guest_asid), gva), front, None

    def _host_shared(self, guest_asid: int, gva: int) -> bool:
        """Ground truth for hypervisor-induced sharing of this gVA."""
        guest = self.vm.guest_kernel.translate(guest_asid, gva)
        gvas = self.vm.gvas_of(guest.pa)
        return len(gvas) > 1

    def tlb_access_reduction(self) -> float:
        return self.hybrid_stats.ratio("tlb_bypasses", "accesses")
