"""Hypervisor model: VMs, guest-physical→machine mapping, page sharing.

Each :class:`VirtualMachine` owns a complete guest :class:`Kernel` whose
"physical" space is the guest-physical (gPA) space.  The hypervisor backs
each VM's gPA space with machine memory two ways at once, mirroring the
paper's Section V:

* a **host page table** (4-level radix over gPA) for page-based 2-D
  walks, populated on first touch of each guest-physical page;
* **host segments** — large contiguous machine extents covering the gPA
  space — for segment-based 2-D delayed translation.  The hypervisor
  cannot promise one machine extent per guest request, so a VM's memory
  may be served by several host segments.

The hypervisor also implements **content-based page sharing**: it can
fold two guest-physical pages onto one machine frame read-only, and uses
its per-VM gPA→gVA inverse map to mark the affected *guest-virtual*
pages in the VM's host synonym filter (Section V-A) — or, exploiting the
r/o property, leave them virtually addressed (Section III-D).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.address import PAGE_SHIFT, PAGE_SIZE, page_base
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.filters.synonym_filter import SynonymFilter
from repro.osmodel.frames import FrameAllocator
from repro.osmodel.kernel import Kernel
from repro.osmodel.pagetable import PERM_READ, PERM_RW, PageFault, PageTable


@dataclass(slots=True)
class HostSegment:
    """One contiguous gPA→MA mapping."""

    gpa_base: int
    length: int
    ma_base: int

    @property
    def offset(self) -> int:
        return self.ma_base - self.gpa_base

    def contains(self, gpa: int) -> bool:
        return self.gpa_base <= gpa < self.gpa_base + self.length


class VirtualMachine:
    """A guest kernel plus its host-side mapping state."""

    def __init__(self, vmid: int, name: str, guest_config: SystemConfig,
                 machine_frames: FrameAllocator,
                 host_segment_chunk: int = 256 * 1024 * 1024) -> None:
        self.vmid = vmid
        self.name = name
        self.guest_kernel = Kernel(guest_config)
        self._machine_frames = machine_frames
        self.host_page_table = PageTable(machine_frames)
        self.host_filter = SynonymFilter(guest_config.synonym_filter)
        self.stats = StatGroup(f"vm{vmid}")
        # Eager host-segment backing of the whole gPA space, possibly in
        # several machine extents.
        self.host_segments: List[HostSegment] = []
        self._segment_bases: List[int] = []
        self._back_guest_memory(guest_config.physical_memory_bytes,
                                host_segment_chunk)
        # gPA page -> list of (guest asid, gVA page): the inverse map the
        # hypervisor maintains to name hypervisor-induced synonyms by gVA.
        self._gpa_to_gva: Dict[int, List[Tuple[int, int]]] = {}

    def _back_guest_memory(self, guest_bytes: int, chunk: int) -> None:
        remaining = guest_bytes
        gpa = 0
        while remaining > 0:
            piece = min(chunk, remaining)
            frames = piece >> PAGE_SHIFT
            start = self._machine_frames.alloc_contiguous(frames)
            seg = HostSegment(gpa, piece, start << PAGE_SHIFT)
            self.host_segments.append(seg)
            self._segment_bases.append(gpa)
            gpa += piece
            remaining -= piece

    # ------------------------------------------------------------------ #
    # gPA → MA translation
    # ------------------------------------------------------------------ #

    def host_segment_for(self, gpa: int) -> HostSegment:
        """The host segment backing a guest-physical address."""
        index = bisect_right(self._segment_bases, gpa) - 1
        if index < 0 or not self.host_segments[index].contains(gpa):
            raise PageFault(gpa)
        return self.host_segments[index]

    def host_translate(self, gpa: int) -> int:
        """gPA → MA, populating the host page table on first touch."""
        page = page_base(gpa)
        try:
            entry = self.host_page_table.entry(page)
        except PageFault:
            ma_page = self.host_segment_for(page).offset + page
            self.host_page_table.map(page, ma_page >> PAGE_SHIFT, PERM_RW)
            entry = self.host_page_table.entry(page)
            self.stats.add("host_first_touches")
        return (entry.pfn << PAGE_SHIFT) | (gpa & (PAGE_SIZE - 1))

    def host_walk_path(self, gpa: int) -> List[int]:
        """Machine addresses of the host PTEs a nested walk reads."""
        self.host_translate(gpa)  # ensure mapped
        return self.host_page_table.walk_path(gpa)

    # ------------------------------------------------------------------ #
    # Full 2-D translation
    # ------------------------------------------------------------------ #

    def translate_2d(self, guest_asid: int, gva: int):
        """gVA → gPA → MA; returns (ma, permissions, is_synonym)."""
        guest = self.guest_kernel.translate(guest_asid, gva)
        ma = self.host_translate(guest.pa)
        host_entry = self.host_page_table.entry(page_base(guest.pa))
        permissions = guest.permissions & host_entry.permissions
        return ma, permissions, guest.shared

    def record_gva(self, guest_asid: int, gva: int, gpa: int) -> None:
        """Maintain the gPA→gVA inverse map (done at guest map time)."""
        self._gpa_to_gva.setdefault(page_base(gpa), []).append(
            (guest_asid, page_base(gva)))

    # ------------------------------------------------------------------ #
    # Hypervisor-induced sharing
    # ------------------------------------------------------------------ #

    def gvas_of(self, gpa: int) -> List[Tuple[int, int]]:
        """Every (guest ASID, gVA page) known to name this gPA page."""
        return list(self._gpa_to_gva.get(page_base(gpa), []))


class Hypervisor:
    """Machine-memory owner and VM manager."""

    def __init__(self, machine_bytes: int = 16 * 1024 ** 3,
                 guest_config: Optional[SystemConfig] = None) -> None:
        self.machine_frames = FrameAllocator(machine_bytes)
        if guest_config is None:
            # Guests default to 1 GB of guest-physical memory so several
            # VMs fit under one hypervisor (backing is eager, Section V-B).
            import dataclasses

            guest_config = dataclasses.replace(
                SystemConfig(), physical_memory_bytes=1024 ** 3)
        self.guest_config = guest_config
        self.stats = StatGroup("hypervisor")
        self._vms: List[VirtualMachine] = []

    def create_vm(self, name: str) -> VirtualMachine:
        """Create a VM with eagerly backed guest-physical memory."""
        vm = VirtualMachine(len(self._vms) + 1, name, self.guest_config,
                            self.machine_frames)
        self._vms.append(vm)
        self.stats.add("vms_created")
        return vm

    def vms(self) -> List[VirtualMachine]:
        return list(self._vms)

    def global_asid(self, vm: VirtualMachine, guest_asid: int) -> int:
        """VMID-extended ASID (Section V: the ASID must include the VMID)."""
        return ((vm.vmid << 10) | (guest_asid & 0x3FF)) & 0xFFFF

    # ------------------------------------------------------------------ #
    # Content-based sharing (Section III-D / V-A)
    # ------------------------------------------------------------------ #

    def share_content_pages(self, mappings: List[Tuple[VirtualMachine, int]],
                            readonly_virtual: bool = True) -> int:
        """Fold several (vm, gpa) pages onto the first page's machine frame.

        With ``readonly_virtual`` (the paper's preferred r/o design) the
        pages stay virtually addressed with r/o permissions; otherwise the
        hypervisor marks every naming gVA in the VM's host filter, making
        them synonym candidates.  Returns the canonical machine address.
        """
        canonical_vm, canonical_gpa = mappings[0]
        canonical_ma = canonical_vm.host_translate(canonical_gpa)
        for vm, gpa in mappings:
            page = page_base(gpa)
            vm.host_page_table.unmap(page)
            vm.host_page_table.map(page, canonical_ma >> PAGE_SHIFT,
                                   permissions=PERM_READ)
            if not readonly_virtual:
                for _asid, gva in vm.gvas_of(gpa):
                    vm.host_filter.mark_shared(gva)
        self.stats.add("content_shared_pages", len(mappings))
        return canonical_ma

    def unshare_on_write(self, vm: VirtualMachine, gpa: int) -> int:
        """CoW break: give the writing VM a private machine frame again."""
        page = page_base(gpa)
        frame = self.machine_frames.alloc_frame()
        vm.host_page_table.unmap(page)
        vm.host_page_table.map(page, frame, permissions=PERM_RW)
        self.stats.add("cow_breaks")
        return frame << PAGE_SHIFT
