"""Two-dimensional (nested) page walker with translation caches.

A full x86-style nested walk reads every guest level (whose PTEs live at
guest-physical addresses and therefore each need a host walk of their
own) plus the host walk of the final guest-physical page:
``4 × (4 + 1) + 4 = 24`` memory reads in the worst case.

The baseline the paper compares against is "a state-of-the-art
translation cache for two-dimensional address translation", modeled here
as the standard pair:

* a **nested TLB** caching gPA→MA page translations, which absorbs the
  host walks of guest-PTE addresses and of the leaf;
* a **2-D page-walk cache** over the upper guest levels, collapsing a
  hit walk to the guest leaf PTE only.

PTE reads are charged through the data-cache hierarchy at machine
addresses via the injected ``charge`` callback, as in the native walker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.common.address import PAGE_SHIFT, page_base
from repro.common.params import WalkerConfig
from repro.common.stats import StatGroup
from repro.virt.hypervisor import VirtualMachine

ChargeFn = Callable[[int], int]


@dataclass(slots=True)
class TwoDWalkResult:
    """Cost and outcome of one nested walk."""

    ma: int
    permissions: int
    is_guest_shared: bool
    cycles: int
    memory_reads: int


class NestedTlb:
    """Small gPA→MA TLB used by the walker (not by data accesses)."""

    def __init__(self, entries: int = 64, stats: StatGroup | None = None) -> None:
        self.entries = entries
        self.stats = stats or StatGroup("nested_tlb")
        self._map: Dict[int, int] = {}

    def lookup(self, gpa_page: int):
        """Probe the nested TLB; returns the MA page or None."""
        self.stats.add("lookups")
        ma_page = self._map.get(gpa_page)
        if ma_page is None:
            self.stats.add("misses")
            return None
        del self._map[gpa_page]
        self._map[gpa_page] = ma_page
        self.stats.add("hits")
        return ma_page

    def fill(self, gpa_page: int, ma_page: int) -> None:
        if gpa_page in self._map:
            del self._map[gpa_page]
        elif len(self._map) >= self.entries:
            del self._map[next(iter(self._map))]
        self._map[gpa_page] = ma_page

    def flush(self) -> None:
        self._map.clear()


class TwoDWalker:
    """Nested walker with nested TLB + 2-D walk cache."""

    def __init__(self, vm: VirtualMachine, config: WalkerConfig,
                 charge: ChargeFn, stats: StatGroup | None = None) -> None:
        self.vm = vm
        self.config = config
        self.charge = charge
        self.stats = stats or StatGroup("twod_walker")
        self.nested_tlb = NestedTlb()
        self._walk_cache: Dict[tuple[int, int], bool] = {}

    # ------------------------------------------------------------------ #
    # gPA → MA with the nested TLB absorbing host walks
    # ------------------------------------------------------------------ #

    def _host_resolve(self, gpa: int) -> tuple[int, int, int]:
        """Return (ma, cycles, reads) for translating one gPA."""
        page = page_base(gpa)
        ma_page = self.nested_tlb.lookup(page >> PAGE_SHIFT)
        if ma_page is not None:
            return (ma_page << PAGE_SHIFT) | (gpa & 0xFFF), 1, 0
        cycles = 0
        reads = 0
        for pte_ma in self.vm.host_walk_path(gpa):
            cycles += self.charge(pte_ma) + self.config.per_level_overhead
            reads += 1
        ma = self.vm.host_translate(gpa)
        self.nested_tlb.fill(page >> PAGE_SHIFT, ma >> PAGE_SHIFT)
        return ma, cycles, reads

    # ------------------------------------------------------------------ #
    # Guest walk cache
    # ------------------------------------------------------------------ #

    def _guest_cache_lookup(self, asid: int, gva: int) -> bool:
        key = (asid, gva >> 21)
        if key in self._walk_cache:
            del self._walk_cache[key]
            self._walk_cache[key] = True
            return True
        return False

    def _guest_cache_fill(self, asid: int, gva: int) -> None:
        key = (asid, gva >> 21)
        if key in self._walk_cache:
            del self._walk_cache[key]
        elif len(self._walk_cache) >= self.config.walk_cache_entries:
            del self._walk_cache[next(iter(self._walk_cache))]
        self._walk_cache[key] = True

    # ------------------------------------------------------------------ #
    # The nested walk
    # ------------------------------------------------------------------ #

    def walk(self, guest_asid: int, gva: int) -> TwoDWalkResult:
        """Perform one 2-D walk, charging every PTE read."""
        self.stats.add("walks")
        cycles = 0
        reads = 0

        guest_pte_gpas = self.vm.guest_kernel.pte_path(guest_asid, gva)
        if self._guest_cache_lookup(guest_asid, gva):
            guest_pte_gpas = guest_pte_gpas[-1:]
            self.stats.add("walk_cache_hits")
        else:
            self._guest_cache_fill(guest_asid, gva)

        # Each guest PTE lives at a gPA that itself needs host translation.
        for pte_gpa in guest_pte_gpas:
            pte_ma, host_cycles, host_reads = self._host_resolve(pte_gpa)
            cycles += host_cycles
            reads += host_reads
            cycles += self.charge(pte_ma) + self.config.per_level_overhead
            reads += 1

        # Finally translate the leaf gPA.
        guest = self.vm.guest_kernel.translate(guest_asid, gva)
        ma, host_cycles, host_reads = self._host_resolve(guest.pa)
        cycles += host_cycles
        reads += host_reads

        host_entry = self.vm.host_page_table.entry(page_base(guest.pa))
        permissions = guest.permissions & host_entry.permissions
        self.stats.add("memory_reads", reads)
        self.stats.add("walk_cycles", cycles)
        return TwoDWalkResult(ma, permissions, guest.shared, cycles, reads)
