"""Translation-energy accounting over simulation statistics.

Consumes the per-structure event counts that every simulated component
already records and multiplies by the per-access energies of
:class:`EnergyParams`.  The headline reproduction target is the paper's
~60 % reduction in translation-component power for the hybrid design,
driven by the near-total bypass of per-access TLB probes.
"""

from __future__ import annotations

from typing import Dict

from repro.energy.params import EnergyParams


class EnergyModel:
    """Maps a stats snapshot to a translation-energy breakdown (pJ)."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    # ------------------------------------------------------------------ #
    # Per-configuration breakdowns
    # ------------------------------------------------------------------ #

    def baseline_translation_energy(self, stats: Dict[str, Dict[str, int]],
                                    cores: int = 1,
                                    instruction_fetches: int = 0) -> Dict[str, float]:
        """Conventional MMU: every access probes the L1 TLB, misses cascade.

        ``instruction_fetches`` adds the I-side probes the paper counts
        ("TLBs ... are accessed for every instruction fetch and data
        access"); the simulator folds the I-side into the data path, so
        the caller passes the instruction count explicitly (I-TLB fetch
        probes hit essentially always and are charged at L1-TLB cost).
        """
        p = self.params
        breakdown = {"l1_tlb": 0.0, "l2_tlb": 0.0, "page_walks": 0.0,
                     "itlb": instruction_fetches * p.l1_tlb_pj}
        for core in range(cores):
            tlb = stats.get(f"tlb_core{core}", {})
            l1 = stats.get(f"tlb_core{core}_l1", {})
            l2 = stats.get(f"tlb_core{core}_l2", {})
            breakdown["l1_tlb"] += l1.get("lookups", 0) * p.l1_tlb_pj
            breakdown["l2_tlb"] += l2.get("lookups", 0) * p.l2_tlb_pj
        breakdown["page_walks"] += sum(
            group.get("pte_reads", 0)
            for name, group in stats.items() if "walker" in name
        ) * p.pte_read_pj
        return breakdown

    def hybrid_translation_energy(self, stats: Dict[str, Dict[str, int]],
                                  filter_lookups: int = 0,
                                  instruction_fetches: int = 0) -> Dict[str, float]:
        """Hybrid MMU: filter probes + synonym TLB + delayed structures.

        ``filter_lookups`` is supplied by the caller because synonym
        filters are per-process OS state, not MMU-owned structures; every
        access probes one, so the hybrid access count is the usual value.
        ``instruction_fetches`` adds the I-side filter probes (code pages
        are non-synonyms, so fetches bypass the TLBs entirely and pay
        only the filter probe).
        """
        p = self.params
        hybrid = stats.get("hybrid", {})
        probes = (filter_lookups or hybrid.get("accesses", 0)) + instruction_fetches
        breakdown = {
            "synonym_filter": probes * p.synonym_filter_pj,
            "synonym_tlb": stats.get("synonym_tlb", {}).get("lookups", 0)
            * p.synonym_tlb_pj,
            "delayed_tlb": stats.get("delayed_tlb", {}).get("lookups", 0)
            * p.delayed_tlb_pj,
            "index_cache": stats.get("index_cache", {}).get("reads", 0)
            * p.index_cache_pj,
            "segment_table": stats.get("hw_segment_table", {}).get("reads", 0)
            * p.segment_table_pj,
            "segment_cache": stats.get("segment_cache", {}).get("lookups", 0)
            * p.segment_cache_pj,
            "page_walks": sum(
                group.get("pte_reads", 0)
                for name, group in stats.items() if "walker" in name
            ) * p.pte_read_pj,
        }
        return breakdown

    def tag_extension_energy(self, stats: Dict[str, Dict[str, int]],
                             cores: int = 1) -> float:
        """Extra dynamic energy from the widened tags on every cache access."""
        p = self.params
        total = 0.0
        for core in range(cores):
            total += stats.get(f"l1_core{core}", {}).get("lookups", 0) * p.l1_cache_pj
            total += stats.get(f"l2_core{core}", {}).get("lookups", 0) * p.l2_cache_pj
        total += stats.get("llc", {}).get("lookups", 0) * p.llc_cache_pj
        return total * p.tag_extension_overhead

    # ------------------------------------------------------------------ #
    # Static (leakage) energy over a run
    # ------------------------------------------------------------------ #

    def baseline_static_energy(self, cycles: float, cores: int = 1) -> float:
        """Leakage of the baseline's translation structures over a run."""
        p = self.params
        per_cycle = cores * (p.l1_tlb_static_pj + p.l2_tlb_static_pj)
        return per_cycle * cycles

    def hybrid_static_energy(self, cycles: float, cores: int = 1,
                             segments: bool = True) -> float:
        """Leakage of the hybrid design's translation structures.

        Per-core: synonym TLB + on-chip filter copy.  Shared: the delayed
        TLB, or (``segments``) the index cache + segment table + SC.
        Includes the widened cache tags' static overhead.
        """
        p = self.params
        per_cycle = cores * (p.synonym_tlb_static_pj
                             + p.synonym_filter_static_pj)
        if segments:
            per_cycle += (p.index_cache_static_pj + p.segment_table_static_pj
                          + p.segment_cache_static_pj)
        else:
            per_cycle += p.delayed_tlb_static_pj
        per_cycle += p.cache_static_pj * p.tag_extension_static_overhead
        return per_cycle * cycles

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    @staticmethod
    def total(breakdown: Dict[str, float]) -> float:
        return sum(breakdown.values())

    def reduction(self, baseline: Dict[str, float],
                  proposed: Dict[str, float],
                  proposed_extra: float = 0.0) -> float:
        """Fractional translation-energy reduction (the paper's −60 %)."""
        base_total = self.total(baseline)
        if base_total <= 0:
            return 0.0
        return 1.0 - (self.total(proposed) + proposed_extra) / base_total
