"""Per-access dynamic energy constants (CACTI-class estimates, in pJ).

The paper extracts structure energies from CACTI 6.5 at 32 nm; the
provided text keeps only derived statements (e.g. the extended cache tags
add ≤0.32 % static/dynamic energy; the translation components of the
proposed design consume ~60 % less power overall).  The absolute values
below are standard CACTI-class numbers for the stated geometries; only
their *ratios* matter for the reproduced claim, and those ratios follow
directly from structure sizes:

* a 64-entry 4-way TLB read costs ~1 pJ; a 1024-entry 8-way TLB ~6 pJ;
* probing two 1K-bit Bloom filters (4 bit reads through 2×128 B SRAM)
  costs a small fraction of a TLB CAM/RAM read;
* the 32 KB index cache and the 2048-entry segment table sit between the
  two TLB sizes;
* data-cache reads dwarf all of these (L1 ~20 pJ), which is why the tag
  extension's ~0.3 % relative cost is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Dynamic energy per access, picojoules."""

    l1_tlb_pj: float = 1.1
    l2_tlb_pj: float = 6.2
    synonym_tlb_pj: float = 1.1
    synonym_filter_pj: float = 0.42   # two filters × two 1-bit probes
    delayed_tlb_pj: float = 6.2
    index_cache_pj: float = 3.4
    segment_table_pj: float = 7.8
    segment_cache_pj: float = 1.6
    range_tlb_pj: float = 4.5         # 32-entry fully associative CAM (RMM)
    pte_read_pj: float = 12.0         # page-walker PTE fetch overhead
    l1_cache_pj: float = 20.0
    l2_cache_pj: float = 46.0
    llc_cache_pj: float = 120.0
    # Extended tag bits (ASID + synonym + permission): relative overhead on
    # every cache access (Section III-A: 0.03–0.32 %).
    tag_extension_overhead: float = 0.0032

    # ------------------------------------------------------------------ #
    # Static (leakage) power, picojoules per core cycle at 3.4 GHz.
    # CACTI-class magnitudes: leakage scales with SRAM capacity; the
    # segment table uses the low-standby-power configuration the paper
    # specifies (Section IV-D footnote), hence its small number despite
    # 48 KB of state.
    # ------------------------------------------------------------------ #
    l1_tlb_static_pj: float = 0.020
    l2_tlb_static_pj: float = 0.110
    synonym_tlb_static_pj: float = 0.020
    synonym_filter_static_pj: float = 0.004   # 2 × 1K-bit vectors
    delayed_tlb_static_pj: float = 0.110
    index_cache_static_pj: float = 0.060      # 32 KB high-perf SRAM
    segment_table_static_pj: float = 0.025    # 48 KB low-standby-power
    segment_cache_static_pj: float = 0.012
    # Static overhead of the widened cache tags, relative to total cache
    # leakage (paper: 0.03-0.32 %).
    tag_extension_static_overhead: float = 0.0032
    cache_static_pj: float = 4.0               # 2.3 MB of cache SRAM
