"""Translation-energy modeling (CACTI-class per-access constants)."""

from repro.energy.accounting import EnergyModel
from repro.energy.params import EnergyParams

__all__ = ["EnergyModel", "EnergyParams"]
