"""Configuration dataclasses for the simulated machine.

Defaults reproduce Table IV of the paper plus the structure parameters
given in the running text (Sections III-B, IV-C, VI-A):

* out-of-order x86 core at 3.4 GHz — folded into the analytic cycle model,
* 32 KB 4-way L1 (2/4 cycles), 256 KB 8-way L2 (6 cycles),
  2 MB 16-way shared LLC (27 cycles), 64 B blocks,
* baseline TLBs: 64-entry 4-way L1 (1 cycle), 1024-entry 8-way L2
  (7 cycles),
* synonym TLB: 64-entry 4-way single level,
* delayed TLB: 1024 entries 8-way by default (swept 1K–64K in Figure 4),
* synonym filter: two 1K-bit Bloom filters (16 MB and 32 KB granularity),
* many-segment translation: 2048-entry segment table (7 cycles), 32 KB
  8-way index cache (3 cycles), 128-entry 2 MB segment cache,
  20 cycles end-to-end on the segment-cache-miss path,
* DDR3-1600-like DRAM.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int
    block_size: int = 64

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_size)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.block_size):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.block_size} B blocks"
            )


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and access latency of one TLB level."""

    entries: int
    ways: int
    latency: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    def __post_init__(self) -> None:
        if self.entries % self.ways:
            raise ValueError(f"{self.entries} entries not divisible by {self.ways} ways")


@dataclass(frozen=True)
class SynonymFilterConfig:
    """The paper's dual-granularity Bloom synonym filter (Section III-B)."""

    bits: int = 1024
    fine_grain_shift: int = 15    # 32 KB regions
    coarse_grain_shift: int = 24  # 16 MB regions
    # The filter probe overlaps with the L1 access for non-synonyms, so it
    # exposes no latency on the common path (Section III-A).
    latency: int = 0


@dataclass(frozen=True)
class SegmentTranslationConfig:
    """Many-segment delayed translation (Section IV-C)."""

    segment_table_entries: int = 2048
    segment_table_latency: int = 7
    index_cache_size: int = 32 * 1024
    index_cache_ways: int = 8
    index_cache_latency: int = 3
    index_tree_fanout: int = 7       # 6 keys + 7 children per 64 B node
    segment_cache_entries: int = 128
    segment_cache_grain_shift: int = 21  # 2 MB regions
    segment_cache_latency: int = 2
    # Paper: four index-cache reads + segment table ~= 19, modeled as 20.
    full_walk_latency: int = 20


@dataclass(frozen=True)
class DramConfig:
    """DDR3-1600-like timing, expressed in 3.4 GHz core cycles."""

    channels: int = 1
    banks: int = 8
    row_bytes: int = 8192
    row_hit_cycles: int = 75      # ~22 ns
    row_miss_cycles: int = 175    # ~52 ns (precharge + activate + CAS)
    queue_penalty_cycles: int = 10


@dataclass(frozen=True)
class CoreConfig:
    """Analytic core model: issue-limited base CPI plus memory stalls."""

    frequency_ghz: float = 3.4
    base_cpi: float = 0.4          # 5-issue/4-commit OoO core, compute-bound floor
    # Fraction of a cache-miss penalty exposed after overlap; per-workload
    # memory-level parallelism divides the raw penalty.
    default_mlp: float = 1.0


@dataclass(frozen=True)
class WalkerConfig:
    """Page-walk cost model for native and nested (2-D) walks."""

    levels: int = 4
    # Latency per page-table level access when it misses the page-walk
    # cache and must reach memory through the hierarchy is computed by the
    # simulator; this is the fixed per-level overhead (walker state machine).
    per_level_overhead: int = 2
    walk_cache_entries: int = 32   # caches upper-level PTEs (skips 2 levels)
    nested_levels: int = 4         # host page-table levels for 2-D walks


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration (Table IV defaults)."""

    cores: int = 1
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 4, 4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 8, 6))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 27))
    l1_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(64, 4, 1))
    l2_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(1024, 8, 7))
    synonym_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(64, 4, 1))
    delayed_tlb: TlbConfig = field(default_factory=lambda: TlbConfig(1024, 8, 7))
    synonym_filter: SynonymFilterConfig = field(default_factory=SynonymFilterConfig)
    segments: SegmentTranslationConfig = field(default_factory=SegmentTranslationConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    walker: WalkerConfig = field(default_factory=WalkerConfig)
    physical_memory_bytes: int = 4 * 1024 ** 3

    def with_llc_size(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a different shared-LLC capacity."""
        return replace(self, llc=replace(self.llc, size_bytes=size_bytes))

    def with_delayed_tlb_entries(self, entries: int) -> "SystemConfig":
        """Return a copy with a different delayed-TLB capacity (Figure 4 sweep)."""
        return replace(self, delayed_tlb=replace(self.delayed_tlb, entries=entries))

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict view (the JSON wire format of a config)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SystemConfig":
        """Inverse of :meth:`to_dict` — see :func:`config_from_dict`."""
        return config_from_dict(doc)


def _dataclass_from_dict(cls: type, doc: Mapping[str, Any]) -> Any:
    """Rebuild one (possibly nested) config dataclass from plain dicts.

    Field types are resolved through ``typing.get_type_hints`` because
    this module uses postponed annotations; unknown keys are ignored and
    missing keys fall back to the field default, so older documents load
    against newer configs (same forward-compatibility contract as
    ``RunManifest.from_dict``).
    """
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in doc:
            continue
        value = doc[f.name]
        field_type = hints[f.name]
        if dataclasses.is_dataclass(field_type) and isinstance(value, Mapping):
            value = _dataclass_from_dict(field_type, value)
        kwargs[f.name] = value
    return cls(**kwargs)


def config_from_dict(doc: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from ``dataclasses.asdict`` output.

    Exact inverse for JSON-representable fields (everything here is
    ints/floats), so ``config_fingerprint(config_from_dict(c.to_dict()))
    == config_fingerprint(c)`` — which is what keeps job fingerprints
    stable across the ``repro.job/v1`` wire format.
    """
    return _dataclass_from_dict(SystemConfig, doc)
