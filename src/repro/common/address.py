"""Address-space arithmetic shared across the simulator.

The simulated machine follows the paper's configuration (Table IV and
Section III-A):

* 48-bit virtual addresses (x86-64 canonical user space),
* 40-bit physical addresses (the paper's worst-case index-cache study
  spans a 40-bit physical space),
* 16-bit address-space identifiers (ASIDs), giving 65,536 address spaces,
* 4 KB base pages and 64-byte cache blocks.

Addresses are plain ``int`` everywhere for speed; this module centralizes
the bit layout so no other module hard-codes shifts.

Block-address namespaces
------------------------

Hybrid virtual caching stores two kinds of blocks in one hierarchy
(Section III-A, Figure 2): non-synonym blocks named by ``ASID + VA`` and
synonym blocks named by ``PA``.  The paper's correctness argument is that a
physical block has exactly one name.  We encode each name as a single
integer with a namespace flag in the top bit so that cache lookups,
coherence and invalidation all operate on one key type:

* synonym (physical) block:  ``(1 << 62) | (pa >> 6)``
* non-synonym block:         ``(asid << 42) | (va >> 6)``

A 48-bit VA has 42 block bits; 16 ASID bits + 42 VA-block bits = 58 bits,
which stays clear of the flag bit.
"""

from __future__ import annotations

VA_BITS = 48
PA_BITS = 40
ASID_BITS = 16
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
BLOCK_SHIFT = 6
BLOCK_SIZE = 1 << BLOCK_SHIFT

VA_MASK = (1 << VA_BITS) - 1
PA_MASK = (1 << PA_BITS) - 1
ASID_MAX = (1 << ASID_BITS) - 1
PAGE_MASK = PAGE_SIZE - 1

_VA_BLOCK_BITS = VA_BITS - BLOCK_SHIFT  # 42
_SYNONYM_FLAG = 1 << 62

# Granularities used by the synonym filter (Section III-B).
FINE_GRAIN_SHIFT = 15   # 32 KB regions
COARSE_GRAIN_SHIFT = 24  # 16 MB regions


def page_number(addr: int) -> int:
    """Return the 4 KB page number of a byte address."""
    return addr >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Return the offset of a byte address within its 4 KB page."""
    return addr & PAGE_MASK


def page_base(addr: int) -> int:
    """Return the byte address of the start of the page containing ``addr``."""
    return addr & ~PAGE_MASK


def block_number(addr: int) -> int:
    """Return the 64 B cache-block number of a byte address."""
    return addr >> BLOCK_SHIFT


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to the next multiple of ``alignment`` (a power of two)."""
    return (addr + alignment - 1) & ~(alignment - 1)


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    return addr & ~(alignment - 1)


def virtual_block_key(asid: int, va: int) -> int:
    """Pack an ``ASID + VA`` block name into the non-synonym namespace."""
    return (asid << _VA_BLOCK_BITS) | ((va & VA_MASK) >> BLOCK_SHIFT)


def physical_block_key(pa: int) -> int:
    """Pack a physical block name into the synonym namespace."""
    return _SYNONYM_FLAG | ((pa & PA_MASK) >> BLOCK_SHIFT)


def is_physical_key(key: int) -> bool:
    """True when a packed block key names a synonym (physically addressed) block."""
    return bool(key & _SYNONYM_FLAG)


def key_block_address(key: int) -> int:
    """Return the byte address (VA or PA, per namespace) of a packed block key."""
    if key & _SYNONYM_FLAG:
        return (key ^ _SYNONYM_FLAG) << BLOCK_SHIFT
    return (key & ((1 << _VA_BLOCK_BITS) - 1)) << BLOCK_SHIFT


def key_asid(key: int) -> int:
    """Return the ASID of a non-synonym packed block key (0 for synonym keys)."""
    if key & _SYNONYM_FLAG:
        return 0
    return key >> _VA_BLOCK_BITS


def virtual_page_key(asid: int, va: int) -> int:
    """Pack an ``ASID + VPN`` page name (used by delayed TLBs and shootdowns)."""
    return (asid << (VA_BITS - PAGE_SHIFT)) | ((va & VA_MASK) >> PAGE_SHIFT)


_HUGE_KEY_FLAG = 1 << 61


def virtual_huge_page_key(asid: int, va: int) -> int:
    """Pack an ``ASID + 2 MB-page`` name, disjoint from 4 KB page keys."""
    return _HUGE_KEY_FLAG | (asid << (VA_BITS - 21)) | ((va & VA_MASK) >> 21)
