"""Lightweight counter framework used by every simulated structure.

Structures increment named counters through a :class:`StatGroup`; the
simulator collects groups into a :class:`StatRegistry` whose snapshot is a
plain nested dict suitable for reporting, assertion in tests, and diffing
between configurations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping


class StatGroup:
    """A named bundle of integer counters with derived-ratio helpers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` by ``amount``."""
        self._counters[counter] += amount

    def __getitem__(self, counter: str) -> int:
        return self._counters.get(counter, 0)

    def __contains__(self, counter: str) -> bool:
        return counter in self._counters

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator``, or 0.0 when the denominator is 0."""
        denom = self._counters.get(denominator, 0)
        if not denom:
            return 0.0
        return self._counters.get(numerator, 0) / denom

    def hit_rate(self, hits: str = "hits", misses: str = "misses") -> float:
        """Return hits / (hits + misses), or 0.0 with no accesses."""
        h = self._counters.get(hits, 0)
        m = self._counters.get(misses, 0)
        total = h + m
        return h / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the counters."""
        return dict(self._counters)

    def snapshot_with_ratios(self) -> Dict[str, object]:
        """Counters plus derived ratios, for machine-readable exports.

        When both ``hits`` and ``misses`` exist a ``hit_rate`` key is
        added (and analogously for any ``<x>_hits``/``<x>_misses`` pair),
        so JSON consumers need not recompute the obvious ratios.
        """
        return derive_ratios(self.snapshot())

    def merge(self, other: "StatGroup") -> None:
        """Accumulate another group's counters into this one."""
        for counter, value in other._counters.items():
            self._counters[counter] += value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name!r}: {inner})"


class StatRegistry:
    """A collection of :class:`StatGroup` objects keyed by name."""

    def __init__(self) -> None:
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Return the group called ``name``, creating it on first use."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def register(self, group: StatGroup) -> StatGroup:
        """Adopt an externally created group (e.g. a structure's own stats)."""
        self._groups[group.name] = group
        return group

    def __getitem__(self, name: str) -> StatGroup:
        return self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Return ``{group: {counter: value}}`` for every registered group."""
        return {name: g.snapshot() for name, g in sorted(self._groups.items())}

    def snapshot_with_ratios(self) -> Dict[str, Dict[str, object]]:
        """Like :meth:`snapshot`, with derived ratios in every group."""
        return {name: g.snapshot_with_ratios()
                for name, g in sorted(self._groups.items())}

    def reset(self) -> None:
        """Zero every counter in every group."""
        for group in self._groups.values():
            group.reset()


def derive_ratios(snapshot: Mapping[str, int]) -> Dict[str, object]:
    """Return ``snapshot`` augmented with hit-rate ratios where derivable.

    A plain ``hits``/``misses`` pair yields ``hit_rate``; a prefixed
    ``<x>_hits``/``<x>_misses`` pair yields ``<x>_hit_rate``.  The input
    counters are preserved untouched.
    """
    out: Dict[str, object] = dict(snapshot)
    for key in list(snapshot):
        if key == "hits" or key.endswith("_hits"):
            prefix = key[:-4]                       # "hits" -> "", "x_hits" -> "x_"
            misses_key = prefix + "misses"
            if misses_key in snapshot:
                total = snapshot[key] + snapshot[misses_key]
                if total:
                    out[prefix + "hit_rate"] = snapshot[key] / total
    return out


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction, the paper's unit for TLB/segment misses."""
    if instructions <= 0:
        return 0.0
    return 1000.0 * misses / instructions


def format_table(headers: Mapping[str, str], rows: list) -> str:
    """Render rows (sequences matching ``headers`` order) as an ASCII table."""
    cols = list(headers.values())
    widths = [len(c) for c in cols]
    rendered_rows = []
    for row in rows:
        rendered = [str(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        rendered_rows.append(rendered)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*cols), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in rendered_rows)
    return "\n".join(lines)
