"""Deterministic random-number helpers.

Every stochastic component (workload generators, fragmentation injection,
worst-case index-cache traffic) takes an explicit seed so that experiments
are reproducible run-to-run.  We use ``random.Random`` instances rather
than the module-level functions so independent components never perturb
each other's streams.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int, stream: str = "") -> random.Random:
    """Return an independent ``random.Random`` derived from (seed, stream).

    The ``stream`` label decorrelates multiple generators sharing one
    user-facing seed (e.g. a workload's layout RNG vs. its access RNG).
    The derivation must not use ``hash()``: string hashing is randomized
    per process (PYTHONHASHSEED), which would make the same (seed,
    stream) produce different traces across runs.
    """
    if stream:
        seed = (seed << 32) ^ zlib.crc32(stream.encode())
    return random.Random(seed)


def zipf_sampler(rng: random.Random, n: int, theta: float = 0.8):
    """Return a callable sampling Zipf-distributed ranks in ``[0, n)``.

    Uses the standard inverse-CDF construction over precomputed cumulative
    weights; ``theta`` is the skew (0 = uniform, ~1 = strongly skewed).
    Hot-ranked items model the hot-page behaviour of server workloads.
    """
    if n <= 0:
        raise ValueError("zipf_sampler needs n >= 1")
    weights = [1.0 / ((rank + 1) ** theta) for rank in range(n)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def sample() -> int:
        u = rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample
