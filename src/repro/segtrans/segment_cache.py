"""Segment cache (SC): a 128-entry, 2 MB-granularity translation cache.

The many-segment walk (index cache + segment table) costs ~20 cycles; the
SC short-circuits it for recently translated 2 MB regions (Section IV-C).
An entry maps ``(asid, va >> 21)`` to the covering segment's offset.  A
segment boundary can split a 2 MB region, so each entry also remembers the
intersection of the region with its segment and treats out-of-range hits
as misses — the conservative reading of the paper's "fixed granularity SC
entry filled from the segment table results".

Under virtualization the same structure caches direct gVA→MA offsets,
skipping the intermediate gPA (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.params import SegmentTranslationConfig
from repro.common.stats import StatGroup


@dataclass(slots=True)
class SegmentCacheEntry:
    """One cached region translation."""

    offset: int       # PA = VA + offset within the valid subrange
    valid_start: int  # VA of the covered subrange start (within the region)
    valid_end: int    # VA one past the covered subrange
    seg_id: int


class SegmentCache:
    """Fully associative, LRU, fixed-granularity translation cache."""

    def __init__(self, config: SegmentTranslationConfig | None = None,
                 stats: StatGroup | None = None) -> None:
        self.config = config or SegmentTranslationConfig()
        self.stats = stats or StatGroup("segment_cache")
        self._entries: Dict[tuple[int, int], SegmentCacheEntry] = {}

    @property
    def latency(self) -> int:
        return self.config.segment_cache_latency

    @property
    def grain(self) -> int:
        return 1 << self.config.segment_cache_grain_shift

    def _region_of(self, asid: int, va: int) -> tuple[int, int]:
        return asid, va >> self.config.segment_cache_grain_shift

    def lookup(self, asid: int, va: int) -> Optional[int]:
        """Return the translated PA on a valid hit, else None."""
        self.stats.add("lookups")
        key = self._region_of(asid, va)
        entry = self._entries.get(key)
        if entry is None or not entry.valid_start <= va < entry.valid_end:
            self.stats.add("misses")
            return None
        del self._entries[key]
        self._entries[key] = entry
        self.stats.add("hits")
        return va + entry.offset

    def fill(self, asid: int, va: int, seg_vbase: int, seg_vlimit: int,
             offset: int, seg_id: int) -> None:
        """Install the region containing ``va``, clipped to its segment."""
        key = self._region_of(asid, va)
        region_start = key[1] << self.config.segment_cache_grain_shift
        region_end = region_start + self.grain
        entry = SegmentCacheEntry(
            offset=offset,
            valid_start=max(region_start, seg_vbase),
            valid_end=min(region_end, seg_vlimit),
            seg_id=seg_id,
        )
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.config.segment_cache_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.add("evictions")
        self._entries[key] = entry
        self.stats.add("fills")

    def invalidate_segment(self, seg_id: int) -> int:
        """Drop every region cached from one segment (OS remap)."""
        stale = [k for k, e in self._entries.items() if e.seg_id == seg_id]
        for k in stale:
            del self._entries[k]
        self.stats.add("invalidations", len(stale))
        return len(stale)

    def flush(self) -> None:
        self._entries.clear()
        self.stats.add("flushes")

    def hit_rate(self) -> float:
        return self.stats.hit_rate()
