"""Redundant Memory Mappings (RMM) baseline [Karakostas et al., ISCA'15].

RMM places a small *range TLB* of variable-length segments on the critical
core-to-L1 path, redundantly with conventional paging.  Because it sits
before the L1, its size is latency-bound: 32 fully associative entries at
7 cycles (the paper's Section IV-A.2 description).  When an access misses
all 32 ranges, a range-table walk refills the range TLB.

The paper's Table III reports *segment misses per kilo-instruction* for
this design on workloads whose live-segment count exceeds 32 — the
thrashing that motivates many-segment translation.  This module
reproduces that measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.stats import StatGroup
from repro.osmodel.segments import OsSegmentTable, Segment, SegmentFault


@dataclass(slots=True)
class RangeTlbResult:
    """Outcome of one range-TLB access."""

    pa: int
    cycles: int
    hit: bool


class RangeTlb:
    """Fully associative, LRU cache of ``(base, limit, offset)`` ranges."""

    #: Cycles for the range-table walk that services a miss (HW walker
    #: over an in-memory range table, per the RMM paper's design).
    WALK_CYCLES = 50

    def __init__(self, os_table: OsSegmentTable, entries: int = 32,
                 latency: int = 7, stats: StatGroup | None = None) -> None:
        self.os_table = os_table
        self.entries = entries
        self.latency = latency
        self.stats = stats or StatGroup("rmm_range_tlb")
        # seg_id -> Segment, insertion-ordered for LRU.
        self._ranges: Dict[int, Segment] = {}

    def lookup(self, asid: int, va: int) -> RangeTlbResult:
        """Translate through the range TLB, walking the range table on miss."""
        self.stats.add("lookups")
        for seg_id, segment in self._ranges.items():
            if segment.asid == asid and segment.contains(va):
                del self._ranges[seg_id]
                self._ranges[seg_id] = segment
                self.stats.add("hits")
                return RangeTlbResult(va + segment.offset, self.latency, True)
        self.stats.add("misses")
        segment = self.os_table.find(asid, va)  # may raise SegmentFault
        self._fill(segment)
        return RangeTlbResult(va + segment.offset,
                              self.latency + self.WALK_CYCLES, False)

    def _fill(self, segment: Segment) -> None:
        if segment.seg_id in self._ranges:
            del self._ranges[segment.seg_id]
        elif len(self._ranges) >= self.entries:
            oldest = next(iter(self._ranges))
            del self._ranges[oldest]
            self.stats.add("evictions")
        self._ranges[segment.seg_id] = segment
        self.stats.add("fills")

    def invalidate(self, seg_id: int) -> None:
        self._ranges.pop(seg_id, None)

    def flush(self) -> None:
        self._ranges.clear()

    def miss_count(self) -> int:
        return self.stats["misses"]


class DirectSegment:
    """Single-segment baseline [Basu et al., ISCA'13].

    One ``(base, limit, offset)`` register set per process maps a single
    large contiguous region; anything outside falls back to conventional
    paging (signalled here by returning None so the caller can invoke its
    TLB path).
    """

    def __init__(self, stats: StatGroup | None = None) -> None:
        self.stats = stats or StatGroup("direct_segment")
        self._registers: Dict[int, Tuple[int, int, int]] = {}  # asid -> (base, limit, offset)

    def configure(self, asid: int, base: int, limit: int, offset: int) -> None:
        """Load the per-process segment registers (set up by the OS)."""
        if limit <= base:
            raise ValueError("segment limit must exceed base")
        self._registers[asid] = (base, limit, offset)

    def configure_from_segment(self, segment: Segment) -> None:
        """Load the registers from an OS segment record."""
        self.configure(segment.asid, segment.vbase, segment.vlimit,
                       segment.offset)

    def translate(self, asid: int, va: int) -> Optional[int]:
        """PA when inside the direct segment, else None (use paging)."""
        self.stats.add("lookups")
        registers = self._registers.get(asid)
        if registers is None:
            self.stats.add("fallbacks")
            return None
        base, limit, offset = registers
        if base <= va < limit:
            self.stats.add("hits")
            return va + offset
        self.stats.add("fallbacks")
        return None
