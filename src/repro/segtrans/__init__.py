"""Hardware structures for scalable delayed segment translation."""

from repro.segtrans.index_cache import IndexCache
from repro.segtrans.many_segment import ManySegmentTranslator, SegmentTranslation
from repro.segtrans.rmm import DirectSegment, RangeTlb, RangeTlbResult
from repro.segtrans.segment_cache import SegmentCache, SegmentCacheEntry
from repro.segtrans.segment_table import HwSegmentTable

__all__ = [
    "IndexCache",
    "ManySegmentTranslator",
    "SegmentTranslation",
    "DirectSegment",
    "RangeTlb",
    "RangeTlbResult",
    "SegmentCache",
    "SegmentCacheEntry",
    "HwSegmentTable",
]
