"""Many-segment delayed translation: the full Figure 5 flow.

On an LLC miss, the incoming ASID+VA:

1. probes the **segment cache** (2 MB granularity) — a hit completes the
   translation in 2 cycles;
2. on a miss, the HW walker traverses the OS's **index tree** through the
   **index cache** (≤ 4 node reads, 3 cycles each when they hit);
3. the resulting segment-ID indexes the **HW segment table** (7 cycles);
4. the address is checked against base/limit and translated with the
   offset; the segment cache is refilled.

The paper budgets ~20 cycles for the full walk (4 index-cache hits + the
segment table); that emerges here from the component latencies rather
than being hard-coded, and degrades naturally when index-cache misses
reach memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.params import SegmentTranslationConfig
from repro.common.stats import StatGroup
from repro.obs.histogram import Histogram
from repro.osmodel.kernel import Kernel
from repro.osmodel.segments import SegmentFault
from repro.segtrans.index_cache import IndexCache
from repro.segtrans.segment_cache import SegmentCache
from repro.segtrans.segment_table import HwSegmentTable


@dataclass(slots=True)
class SegmentTranslation:
    """Outcome of one delayed many-segment translation."""

    pa: int
    cycles: int
    sc_hit: bool
    index_nodes_read: int
    permissions: int


class ManySegmentTranslator:
    """Shared (per-chip) delayed translation engine."""

    def __init__(self, kernel: Kernel,
                 config: SegmentTranslationConfig | None = None,
                 memory_charge: Optional[Callable[[int], int]] = None,
                 use_segment_cache: bool = True,
                 index_cache_size: Optional[int] = None) -> None:
        self.config = config or SegmentTranslationConfig()
        self.kernel = kernel
        self.stats = StatGroup("many_segment")
        self.segment_cache = SegmentCache(self.config) if use_segment_cache else None
        self.index_cache = IndexCache(self.config, memory_charge,
                                      size_bytes=index_cache_size)
        self.hw_table = HwSegmentTable(kernel.segment_table, self.config)
        self._tree_generation = -1
        # Distributions over the translation path: index-tree nodes read
        # per full walk (the paper's ≤4-node argument) and end-to-end
        # translation latency including SC hits.
        self.depth_hist = Histogram("segment_walk_depth")
        self.latency_hist = Histogram("segment_translation_cycles")

    def _refresh_tree(self):
        tree = self.kernel.current_index_tree()
        if self.kernel.segment_table.generation != self._tree_generation:
            # The OS moved/rebuilt the tree; stale node blocks are useless.
            self.index_cache.flush()
            if self.segment_cache is not None:
                self.segment_cache.flush()
            self.hw_table.flush()
            self._tree_generation = self.kernel.segment_table.generation
        return tree

    def translate(self, asid: int, va: int) -> SegmentTranslation:
        """Translate an LLC-missing ASID+VA to PA (Figure 5)."""
        self.stats.add("translations")
        cycles = 0
        if self.segment_cache is not None:
            cycles += self.segment_cache.latency
            pa = self.segment_cache.lookup(asid, va)
            if pa is not None:
                self.stats.add("sc_hits")
                self.latency_hist.record(cycles)
                return SegmentTranslation(pa, cycles, True, 0, 0x3)

        tree = self._refresh_tree()
        lookup = tree.lookup(asid, va)
        for node_pa in lookup.node_addresses:
            cycles += self.index_cache.read_node(node_pa)
        self.stats.add("index_nodes_read", len(lookup.node_addresses))

        segment = None
        if lookup.seg_id is not None:
            segment, table_cycles = self.hw_table.read(lookup.seg_id)
            cycles += table_cycles
        if segment is None or not segment.contains(va):
            # Not covered: raise to the OS (cold allocation, stale tree).
            self.stats.add("segment_faults")
            raise SegmentFault(asid, va)

        pa = va + segment.offset
        if self.segment_cache is not None:
            self.segment_cache.fill(asid, va, segment.vbase, segment.vlimit,
                                    segment.offset, segment.seg_id)
        self.stats.add("full_walks")
        self.depth_hist.record(len(lookup.node_addresses))
        self.latency_hist.record(cycles)
        return SegmentTranslation(pa, cycles, False, len(lookup.node_addresses),
                                  segment.permissions)

    def sc_hit_rate(self) -> float:
        if self.segment_cache is None:
            return 0.0
        return self.segment_cache.hit_rate()

    def index_cache_hit_rate(self) -> float:
        return self.index_cache.hit_rate()
