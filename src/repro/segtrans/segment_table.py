"""Hardware segment table (Section IV-C, Figures 5–6).

A hardware structure mirrors the system-wide in-memory segment table.  The
paper sizes the HW table equal to the in-memory table (2048 entries) "to
simplify implementation", so misses occur only for *cold* segment-IDs: the
first touch of a segment raises an OS interrupt that fills the entry, and
subsequent touches always hit.  Access latency is 7 cycles (CACTI, low
standby power configuration).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.common.params import SegmentTranslationConfig
from repro.common.stats import StatGroup
from repro.osmodel.segments import OsSegmentTable, Segment


class HwSegmentTable:
    """HW mirror of the OS segment table, filled on cold misses."""

    #: Cycles charged for the OS interrupt that fills a cold entry.
    FILL_INTERRUPT_CYCLES = 500

    def __init__(self, os_table: OsSegmentTable,
                 config: SegmentTranslationConfig | None = None,
                 stats: StatGroup | None = None) -> None:
        self.config = config or SegmentTranslationConfig()
        self.os_table = os_table
        self.stats = stats or StatGroup("hw_segment_table")
        self._loaded: Set[int] = set()

    @property
    def latency(self) -> int:
        return self.config.segment_table_latency

    def read(self, seg_id: int) -> tuple[Optional[Segment], int]:
        """Index the HW table by segment-ID.

        Returns ``(segment, cycles)``.  A cold miss charges the OS fill
        interrupt on top of the table access; a stale ID (segment removed
        by the OS) returns ``None`` so the caller can re-walk.
        """
        self.stats.add("reads")
        cycles = self.latency
        try:
            segment = self.os_table.get(seg_id)
        except KeyError:
            self.stats.add("stale_ids")
            return None, cycles
        if seg_id not in self._loaded:
            if len(self._loaded) >= self.config.segment_table_entries:
                raise MemoryError("HW segment table exceeded its capacity; "
                                  "the OS table must stay within 2048 entries")
            self._loaded.add(seg_id)
            cycles += self.FILL_INTERRUPT_CYCLES
            self.stats.add("cold_fills")
        return segment, cycles

    def invalidate(self, seg_id: int) -> None:
        """OS removed or changed a segment; drop the HW copy."""
        self._loaded.discard(seg_id)
        self.stats.add("invalidations")

    def flush(self) -> None:
        self._loaded.clear()

    def loaded_count(self) -> int:
        return len(self._loaded)
