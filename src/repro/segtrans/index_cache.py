"""Index cache: a small physical cache of index-tree nodes (Section IV-C).

The index tree lives in memory; reading 4 levels of it per LLC miss would
be ruinous, so a dedicated cache of 64-byte tree nodes — "a regular cache
of 64 byte blocks addressed by physical address" — absorbs the traversal.
Default geometry is 32 KB, 8-way, 3 cycles (CACTI at 3.4 GHz); Figure 7
sweeps 128 B – 64 KB.

One index cache is shared by all cores (the paper notes a multi-core
processor needs only one).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.setassoc import SetAssociativeCache
from repro.common.params import CacheConfig, SegmentTranslationConfig
from repro.common.stats import StatGroup

#: Cost (cycles) of fetching one tree node from memory on an index-cache
#: miss; the caller can substitute a DRAM-model charge.
ChargeFn = Callable[[int], int]


class IndexCache:
    """Physically addressed node cache with miss-fill from memory."""

    def __init__(self, config: SegmentTranslationConfig | None = None,
                 memory_charge: Optional[ChargeFn] = None,
                 stats: StatGroup | None = None,
                 size_bytes: Optional[int] = None) -> None:
        self.config = config or SegmentTranslationConfig()
        size = size_bytes if size_bytes is not None else self.config.index_cache_size
        ways = self.config.index_cache_ways
        # Tiny sweep points (Figure 7 goes down to 128 B) cannot sustain
        # 8 ways; degrade associativity gracefully.
        while size // (ways * 64) < 1 and ways > 1:
            ways //= 2
        self._cache = SetAssociativeCache(
            CacheConfig(size, ways, self.config.index_cache_latency), "index_cache")
        self.stats = stats or StatGroup("index_cache")
        self._memory_charge = memory_charge or (lambda pa: 200)

    @property
    def latency(self) -> int:
        return self.config.index_cache_latency

    @property
    def size_bytes(self) -> int:
        return self._cache.config.size_bytes

    def read_node(self, node_pa: int) -> int:
        """Read one tree node; returns cycles (hit latency or miss+fill)."""
        key = node_pa >> 6
        self.stats.add("reads")
        if self._cache.lookup(key) is not None:
            self.stats.add("hits")
            return self.latency
        self.stats.add("misses")
        cycles = self.latency + self._memory_charge(node_pa)
        self._cache.insert(key)
        return cycles

    def flush(self) -> None:
        """Drop all nodes (index-tree rebuild moves the tree in memory)."""
        for key in self._cache.resident_keys():
            self._cache.invalidate(key)
        self.stats.add("flushes")

    def hit_rate(self) -> float:
        return self.stats.hit_rate()

    def occupancy(self) -> int:
        return self._cache.occupancy()
