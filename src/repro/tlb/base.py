"""Generic set-associative, LRU-replaced TLB.

All TLB flavours in the paper — the baseline two-level hierarchy, the
64-entry synonym TLB, and the large delayed TLB behind the LLC — are
instances of this structure with different geometry.  Entries are keyed by
a packed ``ASID + VPN`` integer (see :func:`repro.common.address.
virtual_page_key`) so homonyms are disambiguated exactly as the paper's
ASID-extended tags do.

Entries carry the translation *and* the page's synonym status: a
false-positive probe from the synonym filter installs a **non-synonym
marker entry** (``is_synonym=False``) that short-circuits future false
positives for the page (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.params import TlbConfig
from repro.common.stats import StatGroup

PERM_READ = 0x1
PERM_WRITE = 0x2
PERM_RW = PERM_READ | PERM_WRITE


@dataclass(slots=True)
class TlbEntry:
    """One cached translation (or non-synonym marker)."""

    page_key: int          # packed ASID + VPN
    pfn: int               # physical frame number (valid when is_synonym)
    is_synonym: bool       # True: translate to PA; False: marker entry
    permissions: int = PERM_RW


class SetAssociativeTlb:
    """A single TLB level with true-LRU replacement.

    Each set is an insertion-ordered dict mapping page keys to entries;
    hits re-insert the key so the dict order is the LRU order (oldest
    first).  ``sets == 1`` models a fully-associative structure.
    """

    def __init__(self, config: TlbConfig, name: str = "tlb",
                 stats: StatGroup | None = None) -> None:
        self.config = config
        self.name = name
        self.stats = stats or StatGroup(name)
        self._sets: list[Dict[int, TlbEntry]] = [{} for _ in range(config.sets)]
        self._set_mask = config.sets - 1
        if config.sets & self._set_mask:
            raise ValueError("TLB set count must be a power of two")

    @property
    def latency(self) -> int:
        return self.config.latency

    def _set_for(self, page_key: int) -> Dict[int, TlbEntry]:
        return self._sets[page_key & self._set_mask]

    def lookup(self, page_key: int) -> Optional[TlbEntry]:
        """Probe the TLB; returns the entry on hit (refreshing LRU) or None."""
        self.stats.add("lookups")
        tlb_set = self._set_for(page_key)
        entry = tlb_set.get(page_key)
        if entry is None:
            self.stats.add("misses")
            return None
        # Refresh LRU position: re-insert at the back.
        del tlb_set[page_key]
        tlb_set[page_key] = entry
        self.stats.add("hits")
        return entry

    def probe(self, page_key: int) -> Optional[TlbEntry]:
        """Check residence without touching LRU state or counters."""
        return self._set_for(page_key).get(page_key)

    def fill(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Insert an entry, returning the victim it evicted (if any)."""
        tlb_set = self._set_for(entry.page_key)
        victim = None
        if entry.page_key in tlb_set:
            del tlb_set[entry.page_key]
        elif len(tlb_set) >= self.config.ways:
            oldest_key = next(iter(tlb_set))
            victim = tlb_set.pop(oldest_key)
            self.stats.add("evictions")
        tlb_set[entry.page_key] = entry
        self.stats.add("fills")
        return victim

    def invalidate(self, page_key: int) -> bool:
        """Drop one translation (TLB-shootdown target); True if present."""
        tlb_set = self._set_for(page_key)
        if page_key in tlb_set:
            del tlb_set[page_key]
            self.stats.add("invalidations")
            return True
        return False

    def flush_asid(self, asid: int, vpn_bits: int = 36) -> int:
        """Drop every entry belonging to ``asid``; returns the count dropped.

        ``vpn_bits`` is the VPN width inside the packed key (48-bit VA,
        4 KB pages → 36 bits).
        """
        dropped = 0
        for tlb_set in self._sets:
            stale = [k for k in tlb_set if (k >> vpn_bits) == asid]
            for k in stale:
                del tlb_set[k]
                dropped += 1
        self.stats.add("invalidations", dropped)
        return dropped

    def flush_all(self) -> None:
        """Drop every entry."""
        for tlb_set in self._sets:
            tlb_set.clear()
        self.stats.add("full_flushes")

    def occupancy(self) -> int:
        """Number of resident entries."""
        return sum(len(s) for s in self._sets)

    def __contains__(self, page_key: int) -> bool:
        return self.probe(page_key) is not None
