"""Two-level TLB hierarchy used by the physically-addressed baseline.

Models the Haswell-like configuration of Table IV: a 64-entry 4-way L1 TLB
(1 cycle) backed by a 1024-entry 8-way L2 TLB (7 cycles).  A lookup probes
L1, then L2; an L2 hit refills L1.  Misses are reported to the caller,
which invokes the page walker and fills both levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.params import TlbConfig
from repro.common.stats import StatGroup
from repro.tlb.base import SetAssociativeTlb, TlbEntry


@dataclass(slots=True)
class TlbLookupResult:
    """Outcome of a hierarchy probe: the entry (or None) and exposed latency."""

    entry: Optional[TlbEntry]
    latency: int
    level: str  # "l1", "l2", or "miss"


class TlbHierarchy:
    """L1 + L2 TLBs with L2-hit refill into L1."""

    def __init__(self, l1_config: TlbConfig, l2_config: TlbConfig,
                 name: str = "tlb", stats: StatGroup | None = None) -> None:
        self.stats = stats or StatGroup(name)
        self.l1 = SetAssociativeTlb(l1_config, f"{name}_l1")
        self.l2 = SetAssociativeTlb(l2_config, f"{name}_l2")

    def lookup(self, page_key: int) -> TlbLookupResult:
        """Probe L1 then L2; a miss costs both probe latencies."""
        self.stats.add("lookups")
        entry = self.l1.lookup(page_key)
        if entry is not None:
            self.stats.add("l1_hits")
            return TlbLookupResult(entry, self.l1.latency, "l1")
        entry = self.l2.lookup(page_key)
        if entry is not None:
            self.stats.add("l2_hits")
            self.l1.fill(entry)
            return TlbLookupResult(entry, self.l1.latency + self.l2.latency, "l2")
        self.stats.add("misses")
        return TlbLookupResult(None, self.l1.latency + self.l2.latency, "miss")

    def fill(self, entry: TlbEntry) -> None:
        """Install a walked translation into both levels."""
        self.l2.fill(entry)
        self.l1.fill(entry)

    def invalidate(self, page_key: int) -> None:
        """Shootdown one page from both levels."""
        self.l1.invalidate(page_key)
        self.l2.invalidate(page_key)

    def flush_asid(self, asid: int) -> int:
        """Shootdown every page of one address space from both levels."""
        return self.l1.flush_asid(asid) + self.l2.flush_asid(asid)

    def flush_all(self) -> None:
        self.l1.flush_all()
        self.l2.flush_all()

    def accesses(self) -> int:
        """Total L1-TLB probes — the energy-relevant access count."""
        return self.l1.stats["lookups"]

    def misses(self) -> int:
        """Hierarchy misses (both levels missed → page walk)."""
        return self.stats["misses"]
