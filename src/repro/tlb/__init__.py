"""TLB structures: baseline hierarchy, synonym TLB, delayed TLB, walker."""

from repro.tlb.base import PERM_READ, PERM_RW, PERM_WRITE, SetAssociativeTlb, TlbEntry
from repro.tlb.delayed import DelayedTlb
from repro.tlb.hierarchy import TlbHierarchy, TlbLookupResult
from repro.tlb.walker import PageWalker, WalkResult

__all__ = [
    "PERM_READ",
    "PERM_RW",
    "PERM_WRITE",
    "SetAssociativeTlb",
    "TlbEntry",
    "DelayedTlb",
    "TlbHierarchy",
    "TlbLookupResult",
    "PageWalker",
    "WalkResult",
]
