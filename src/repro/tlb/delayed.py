"""Delayed TLB: page-granularity translation behind the LLC (Section IV-A).

The delayed TLB is a single large set-associative TLB consulted only on
LLC misses for non-synonym blocks.  Because it is off the core-to-L1
critical path its capacity can grow far past conventional L2 TLBs — the
paper sweeps 1K to 64K entries (Figure 4) — and it is *shared* by all
cores, so its entries are keyed by ASID + VPN.

This class wraps :class:`SetAssociativeTlb` with the miss bookkeeping the
experiments need (MPKI accounting against instruction counts happens in
the harness) and with the shootdown interface the OS directs at the shared
delayed structure when a non-synonym mapping changes (Section III-A).
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import TlbConfig
from repro.common.stats import StatGroup
from repro.tlb.base import SetAssociativeTlb, TlbEntry


class DelayedTlb:
    """Shared post-LLC translation TLB with fixed (page) granularity."""

    def __init__(self, config: TlbConfig, stats: StatGroup | None = None) -> None:
        self.stats = stats or StatGroup("delayed_tlb")
        self._tlb = SetAssociativeTlb(config, "delayed_tlb", self.stats)

    @property
    def latency(self) -> int:
        return self._tlb.latency

    def lookup(self, page_key: int) -> Optional[TlbEntry]:
        """Probe on an LLC miss; None means a page walk is required."""
        return self._tlb.lookup(page_key)

    def fill(self, entry: TlbEntry) -> None:
        """Install a walked translation."""
        self._tlb.fill(entry)

    def shootdown(self, page_key: int) -> None:
        """OS-directed invalidation of one page mapping."""
        self._tlb.invalidate(page_key)

    def flush_asid(self, asid: int) -> int:
        """Invalidate every mapping of a dying/remapped address space."""
        return self._tlb.flush_asid(asid)

    def accesses(self) -> int:
        return self.stats["lookups"]

    def misses(self) -> int:
        return self.stats["misses"]

    def hit_rate(self) -> float:
        return self.stats.hit_rate()
