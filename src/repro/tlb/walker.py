"""Hardware page-walker cost model.

A native x86-64 walk reads one PTE per radix level (4 levels).  Real
walkers keep a small *page-walk cache* of upper-level entries so most
walks skip straight to the leaf level; we model a walk cache over the
L3-level (2 MB-region) entry, which collapses a hit walk to a single leaf
PTE read.

The walker is decoupled from both the page table (a ``resolve`` callable
that returns the PTE physical addresses touched by a walk) and the memory
system (a ``charge`` callable that returns the cycles for one PTE read,
letting the simulator route PTE reads through the cache hierarchy — this
is what lets large on-chip caches absorb walk traffic, a first-order
effect in the paper's Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.params import WalkerConfig
from repro.common.stats import StatGroup
from repro.obs.histogram import Histogram

# Resolve callback: (asid, va) -> sequence of PTE physical addresses,
# ordered root -> leaf.  Raises KeyError for unmapped addresses.
ResolveFn = Callable[[int, int], Sequence[int]]
# Charge callback: (pte_physical_address) -> cycles for the read.
ChargeFn = Callable[[int], int]


@dataclass(slots=True)
class WalkResult:
    """Cost summary of one page walk."""

    cycles: int
    memory_accesses: int
    walk_cache_hit: bool


class PageWalker:
    """Radix-walk cost model with an upper-level page-walk cache."""

    def __init__(self, config: WalkerConfig, resolve: ResolveFn, charge: ChargeFn,
                 stats: StatGroup | None = None) -> None:
        self.config = config
        self.resolve = resolve
        self.charge = charge
        self.stats = stats or StatGroup("page_walker")
        # Per-walk latency distribution (named after the stat group so a
        # hybrid MMU's several walkers stay distinguishable).
        self.cycles_hist = Histogram(f"{self.stats.name}_cycles")
        # Walk cache: maps (asid, va >> 21) -> True; LRU via dict order.
        self._walk_cache: dict[tuple[int, int], bool] = {}

    def _walk_cache_lookup(self, asid: int, va: int) -> bool:
        key = (asid, va >> 21)
        if key in self._walk_cache:
            del self._walk_cache[key]
            self._walk_cache[key] = True
            return True
        return False

    def _walk_cache_fill(self, asid: int, va: int) -> None:
        key = (asid, va >> 21)
        if key in self._walk_cache:
            del self._walk_cache[key]
        elif len(self._walk_cache) >= self.config.walk_cache_entries:
            oldest = next(iter(self._walk_cache))
            del self._walk_cache[oldest]
        self._walk_cache[key] = True

    def walk(self, asid: int, va: int) -> WalkResult:
        """Walk the page table for (asid, va), charging each PTE read.

        A walk-cache hit reads only the leaf PTE; a miss reads every level
        and refills the walk cache.
        """
        self.stats.add("walks")
        pte_addresses = self.resolve(asid, va)
        hit = self._walk_cache_lookup(asid, va)
        if hit:
            self.stats.add("walk_cache_hits")
            touched = pte_addresses[-1:]
        else:
            touched = list(pte_addresses)
            self._walk_cache_fill(asid, va)
        cycles = self.config.per_level_overhead * len(touched)
        for pte_pa in touched:
            cycles += self.charge(pte_pa)
        self.stats.add("pte_reads", len(touched))
        self.stats.add("walk_cycles", cycles)
        self.cycles_hist.record(cycles)
        return WalkResult(cycles=cycles, memory_accesses=len(touched),
                          walk_cache_hit=hit)

    def flush(self) -> None:
        """Drop walk-cache contents (address-space teardown / remap storms)."""
        self._walk_cache.clear()
