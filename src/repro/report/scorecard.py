"""The paper-fidelity scorecard: claims, measurements, badges.

The registry below maps every reproduced artifact of the paper — the
three abstract-level headline claims, Figures 4/7/9/10/11 and
Tables I–III — to its quantitative statement: the value the paper
reports, the direction a reproduction should move in, and the section
the number comes from.  The scorecard evaluator extracts the reproduced
value for each claim from a :class:`~repro.report.model.ReportBundle`
(compare documents, sweeps, bench baselines, or explicit
``repro.fidelity/v1`` measurement documents), computes the deviation
from the paper, and assigns a badge:

* **pass** — within ``warn_pct`` of the paper's value;
* **warn** — beyond that but within ``fail_pct``;
* **fail** — further off than ``fail_pct``;
* **no-data** — the bundle carries nothing this claim can be measured
  from (the claim still renders, so a report always shows the full
  scorecard and what remains unmeasured).

Tolerances are deliberately loose — this is a model-scale reproduction
of hardware-simulation numbers, and the scorecard grades *shape
fidelity*, not simulator-exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from repro.report.model import ReportBundle

PASS, WARN, FAIL, NO_DATA = "pass", "warn", "fail", "no-data"

#: Proposed (non-virtualized) configurations, best first — the native
#: headline is measured from the first of these a compare document has.
PROPOSED_CONFIGS = ("hybrid_segments", "hybrid_tlb", "hybrid_segments_nosc")
VIRT_PROPOSED_CONFIGS = ("virt_hybrid_seg", "virt_hybrid_tlb")


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement the paper makes about an artifact."""

    id: str                 #: stable key, also the measurement-doc key
    artifact: str           #: "Abstract", "Figure 9", "Table II", …
    title: str              #: short human name of the claim
    paper_value: float      #: the number the paper states
    unit: str               #: "%", "x", "MPKI ratio", …
    source: str             #: where in the paper the number comes from
    direction: int = +1     #: +1 higher is better, -1 lower is better
    warn_pct: float = 25.0  #: |deviation| beyond this → warn
    fail_pct: float = 60.0  #: |deviation| beyond this → fail
    headline: bool = False  #: one of the three abstract-level claims
    note: str = ""


@dataclass
class ScoreRow:
    """One evaluated scorecard entry."""

    claim: PaperClaim
    measured: Optional[float] = None
    source: Optional[str] = None     #: which bundle input provided it

    @property
    def deviation_pct(self) -> Optional[float]:
        if self.measured is None:
            return None
        paper = self.claim.paper_value
        if paper == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return 100.0 * (self.measured - paper) / abs(paper)

    @property
    def badge(self) -> str:
        deviation = self.deviation_pct
        if deviation is None:
            return NO_DATA
        if abs(deviation) <= self.claim.warn_pct:
            return PASS
        if abs(deviation) <= self.claim.fail_pct:
            return WARN
        return FAIL

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.claim.id, "artifact": self.claim.artifact,
            "title": self.claim.title,
            "paper_value": self.claim.paper_value, "unit": self.claim.unit,
            "measured": self.measured, "deviation_pct": self.deviation_pct,
            "badge": self.badge, "source": self.source,
            "paper_source": self.claim.source, "headline": self.claim.headline,
        }


#: The full registry, in presentation order.  Artifact grouping drives
#: the report's per-figure/table sections.
CLAIMS: tuple = (
    PaperClaim(
        id="abstract.native_speedup", artifact="Abstract",
        title="Native performance gain over the physical baseline "
              "(memory-intensive workloads)",
        paper_value=10.7, unit="% speedup", headline=True,
        source="Abstract; Section VI-B (Figure 9)",
        note="Geomean IPC gain of the proposed hybrid over the "
             "conventional two-level-TLB baseline."),
    PaperClaim(
        id="abstract.translation_power", artifact="Abstract",
        title="Translation-component dynamic power reduction",
        paper_value=60.0, unit="% reduction", headline=True,
        source="Abstract; Figure 11 (reconstructed)",
        note="Filters + synonym TLB + delayed structures vs. the "
             "baseline's always-on two-level TLBs and page walks."),
    PaperClaim(
        id="abstract.virt_speedup", artifact="Abstract",
        title="Virtualized performance gain over a 2-D "
              "translation-cache baseline",
        paper_value=31.7, unit="% speedup", headline=True,
        source="Abstract; Section V (Figure 10, reconstructed)",
        note="Delayed 2-D translation past the LLC removes most nested "
             "walk cycles."),
    PaperClaim(
        id="fig4.hostile_mpki_ratio", artifact="Figure 4",
        title="Delayed-TLB MPKI remaining at the largest size "
              "(scaling-hostile workloads)",
        paper_value=0.9, unit="fraction of smallest-size MPKI",
        direction=-1, warn_pct=15.0, fail_pct=40.0,
        source="Section IV-A.1",
        note="GUPS/mcf/milc page working sets dwarf even a 32K-entry "
             "delayed TLB: growing it barely helps, so the large-size "
             "MPKI stays a large fraction of the small-size MPKI."),
    PaperClaim(
        id="fig7.index_cache_8k_hit", artifact="Figure 7",
        title="Index-cache hit rate at 8 KB (real workloads)",
        paper_value=0.99, unit="hit rate", warn_pct=5.0, fail_pct=15.0,
        source="Section IV-B.3",
        note="Locality in the index tree makes a modest 8 KB cache "
             "essentially miss-free."),
    PaperClaim(
        id="fig9.native_speedup", artifact="Figure 9",
        title="Many-segment + segment-cache speedup over baseline "
              "(geomean, memory-intensive)",
        paper_value=10.7, unit="% speedup",
        source="Section VI-B",
        note="The per-workload version of the abstract headline; "
             "many-segment+SC should also track the ideal no-miss TLB."),
    PaperClaim(
        id="fig10.virt_speedup", artifact="Figure 10",
        title="Hybrid two-step delayed translation speedup over the "
              "virtualized baseline (geomean)",
        paper_value=31.7, unit="% speedup",
        source="Section V (reconstructed from the abstract)",
        note="The virtualized counterpart of Figure 9."),
    PaperClaim(
        id="fig11.energy_reduction", artifact="Figure 11",
        title="Translation-component energy reduction (average)",
        paper_value=60.0, unit="% reduction",
        source="Abstract (figure reconstructed)",
        note="CACTI-class per-event energies over a steady-state "
             "window, including the hybrid's extended-tag overhead."),
    PaperClaim(
        id="table1.postgres_shared_area", artifact="Table I",
        title="postgres r/w shared memory area fraction",
        paper_value=0.66, unit="fraction", warn_pct=20.0, fail_pct=50.0,
        source="Section II-C",
        note="postgres shares ~2/3 of its memory but only ~16 % of "
             "accesses touch the shared region."),
    PaperClaim(
        id="table2.filter_access_reduction", artifact="Table II",
        title="TLB-access reduction from synonym filtering (min across "
              "synonym workloads)",
        paper_value=83.7, unit="%", warn_pct=15.0, fail_pct=40.0,
        source="Section III-C",
        note="Worst case is postgres at 83.7 %; the rest exceed 99 %."),
    PaperClaim(
        id="table2.false_positive_rate", artifact="Table II",
        title="Synonym-filter false-positive rate (max)",
        paper_value=0.005, unit="fraction", direction=-1,
        warn_pct=100.0, fail_pct=400.0,
        source="Section III-C",
        note="The paper reports < 0.5 % across all synonym workloads."),
    PaperClaim(
        id="table3.eager_untouched", artifact="Table III",
        title="Untouched eagerly-allocated memory (worst application)",
        paper_value=0.75, unit="fraction", direction=-1,
        warn_pct=35.0, fail_pct=80.0,
        source="Section IV-B",
        note="Eager allocation leaves 17–75 % of memory untouched in "
             "several applications — the cost side of segments."),
)

HEADLINE_IDS = tuple(c.id for c in CLAIMS if c.headline)


# ---------------------------------------------------------------------- #
# Measurement extraction
# ---------------------------------------------------------------------- #

def _speedup_pct(bundle: "ReportBundle", proposed: tuple,
                 virt: bool) -> Optional[tuple]:
    """Geomean percent gain of the first matching proposed config across
    the bundle's compare documents; ``(value, source)`` or ``None``."""
    from repro.sim.results import geometric_mean

    gains: List[float] = []
    sources: List[str] = []
    for doc, source in bundle.compares:
        speedups = doc.get("speedups") or {}
        is_virt = any(name.startswith("virt") for name in speedups)
        if is_virt != virt:
            continue
        for name in proposed:
            if name in speedups and speedups[name] > 0:
                gains.append(speedups[name])
                sources.append(source)
                break
    if not gains:
        return None
    return (100.0 * (geometric_mean(gains) - 1.0),
            ", ".join(dict.fromkeys(sources)))


def _measure_native_speedup(bundle: "ReportBundle") -> Optional[tuple]:
    return _speedup_pct(bundle, PROPOSED_CONFIGS, virt=False)


def _measure_virt_speedup(bundle: "ReportBundle") -> Optional[tuple]:
    return _speedup_pct(bundle, VIRT_PROPOSED_CONFIGS, virt=True)


def _measure_fig4_ratio(bundle: "ReportBundle") -> Optional[tuple]:
    """Largest-size MPKI as a fraction of smallest-size MPKI, averaged
    over the bundle's sweep documents (1.0 = scaling does not help)."""
    ratios: List[float] = []
    sources: List[str] = []
    for doc, source in bundle.sweeps:
        curve = doc.get("delayed_tlb_mpki") or []
        if len(curve) >= 2 and curve[0] > 0:
            ratios.append(curve[-1] / curve[0])
            sources.append(source)
    if not ratios:
        return None
    return (sum(ratios) / len(ratios), ", ".join(dict.fromkeys(sources)))


def _from_measurements(claim_id: str
                       ) -> Callable[["ReportBundle"], Optional[tuple]]:
    def extract(bundle: "ReportBundle") -> Optional[tuple]:
        entry = bundle.measurements.get(claim_id)
        if entry is None:
            return None
        return float(entry[0]), entry[1]
    return extract


def _extractor(claim: PaperClaim
               ) -> Callable[["ReportBundle"], Optional[tuple]]:
    special = {
        "abstract.native_speedup": _measure_native_speedup,
        "fig9.native_speedup": _measure_native_speedup,
        "abstract.virt_speedup": _measure_virt_speedup,
        "fig10.virt_speedup": _measure_virt_speedup,
        "fig4.hostile_mpki_ratio": _measure_fig4_ratio,
    }
    direct = special.get(claim.id)
    fallback = _from_measurements(claim.id)
    if direct is None:
        return fallback

    def extract(bundle: "ReportBundle") -> Optional[tuple]:
        # An explicit repro.fidelity/v1 measurement always wins over
        # the derived value — it is the author saying "grade this".
        return fallback(bundle) or direct(bundle)
    return extract


def evaluate_scorecard(bundle: "ReportBundle") -> List[ScoreRow]:
    """Evaluate every registered claim against one bundle, in order."""
    rows: List[ScoreRow] = []
    for claim in CLAIMS:
        extracted = _extractor(claim)(bundle)
        if extracted is None:
            rows.append(ScoreRow(claim=claim))
        else:
            value, source = extracted
            rows.append(ScoreRow(claim=claim, measured=value, source=source))
    return rows


def rows_for_artifact(rows: List[ScoreRow], artifact: str) -> List[ScoreRow]:
    return [row for row in rows if row.claim.artifact == artifact]


def artifacts(rows: List[ScoreRow]) -> List[str]:
    """Distinct non-abstract artifacts, in registry order."""
    seen: Dict[str, None] = {}
    for row in rows:
        if row.claim.artifact != "Abstract":
            seen.setdefault(row.claim.artifact)
    return list(seen)
