"""The :class:`ReportBundle`: everything one report is built from.

A bundle collects the machine-readable documents the rest of the repo
already emits — ``repro.result/v1``, ``repro.compare/v1``,
``repro.sweep/v1``, ``repro.profile/v1``, ``repro.bench/v2`` baselines,
``repro.bench.report/v1`` gate reports, ``repro.trace/v1`` analytics —
plus two report-specific inputs:

* ``repro.fidelity/v1`` measurement documents: a flat map from
  scorecard claim ids (:data:`repro.report.scorecard.CLAIMS`) to
  reproduced values, for claims no standard document can express
  (energy reductions, table fractions);
* cross-run history pulled from a :class:`repro.obs.store.MetricsStore`
  (``--db``), rendered as sparklines.

``add_doc`` dispatches on each document's ``schema`` key, so callers
never need to know what kind of file they are holding; ``load_bundle``
is the file-reading front the CLI uses, with an optional thread pool
whose output is folded back **in input order** — a bundle built with
``workers=N`` is identical to the serial one, which keeps report bytes
independent of parallelism.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

FIDELITY_SCHEMA = "repro.fidelity/v1"

PathLike = Union[str, Path]
Doc = Dict[str, Any]
#: Every bundle list stores ``(document, source label)`` pairs.
Sourced = Tuple[Doc, str]


def fidelity_doc(measurements: Dict[str, float],
                 note: str = "") -> Doc:
    """Assemble a ``repro.fidelity/v1`` measurement document."""
    doc: Doc = {"schema": FIDELITY_SCHEMA,
                "measurements": {key: float(value)
                                 for key, value in measurements.items()}}
    if note:
        doc["note"] = note
    return doc


@dataclass
class ReportBundle:
    """All inputs of one report, grouped by document kind."""

    results: List[Sourced] = field(default_factory=list)
    compares: List[Sourced] = field(default_factory=list)
    sweeps: List[Sourced] = field(default_factory=list)
    profiles: List[Sourced] = field(default_factory=list)
    bench: List[Sourced] = field(default_factory=list)
    bench_reports: List[Sourced] = field(default_factory=list)
    traces: List[Sourced] = field(default_factory=list)
    #: claim id → ``(value, source label)``; later adds win.
    measurements: Dict[str, Tuple[float, str]] = field(default_factory=dict)
    #: sparkline label → value series (oldest → newest).
    history: Dict[str, List[float]] = field(default_factory=dict)
    #: every source label, in the order it was added.
    sources: List[str] = field(default_factory=list)

    _DISPATCH = {
        "repro.result/v1": "results",
        "repro.compare/v1": "compares",
        "repro.sweep/v1": "sweeps",
        "repro.profile/v1": "profiles",
        "repro.bench/v2": "bench",
        "repro.bench/v1": "bench",
        "repro.bench.report/v1": "bench_reports",
        "repro.trace/v1": "traces",
    }

    def __len__(self) -> int:
        return (len(self.results) + len(self.compares) + len(self.sweeps)
                + len(self.profiles) + len(self.bench)
                + len(self.bench_reports) + len(self.traces)
                + len(self.measurements))

    def add_doc(self, doc: Doc, source: str = "(inline)") -> None:
        """File one document by its ``schema``; unknown schemas raise."""
        schema = doc.get("schema")
        if schema == FIDELITY_SCHEMA:
            for key, value in (doc.get("measurements") or {}).items():
                self.measurements[key] = (float(value), source)
            self.sources.append(source)
            return
        attr = self._DISPATCH.get(schema)
        if attr is None:
            raise ValueError(f"{source}: cannot report on schema {schema!r}")
        getattr(self, attr).append((doc, source))
        self.sources.append(source)

    def add_trace_files(self, paths: Iterable[PathLike],
                        top_n: int = 5) -> None:
        """Analyze raw JSONL trace shards into one ``repro.trace/v1``
        document (via :func:`repro.obs.traceview.read_trace`)."""
        from repro.obs.traceview import read_trace

        paths = [str(p) for p in paths]
        if not paths:
            return
        view = read_trace(paths, top_n=top_n)
        self.add_doc(view.to_json_dict(paths),
                     source=", ".join(paths))

    def attach_store(self, store: Any, limit: int = 12) -> None:
        """Pull per-metric cross-run history from a metrics store.

        ``store`` is duck-typed on ``metric_names()`` / ``trend()``
        (a :class:`repro.obs.store.MetricsStore`).  One sparkline per
        recorded metric, oldest → newest, capped to ``limit`` points;
        ordering comes from the store's deterministic started-at sort,
        so the same database renders the same report regardless of the
        order runs were ingested in.
        """
        for metric in store.metric_names():
            values = [value for _, value in store.trend(metric, limit=limit)]
            if values:
                self.history[metric] = values


def load_docs(paths: Iterable[PathLike],
              workers: int = 1) -> List[Tuple[str, Doc]]:
    """Read and parse JSON documents, preserving input order.

    ``workers > 1`` parses on a thread pool; results are still returned
    in input order, so downstream output is byte-identical to serial.
    """
    paths = [str(p) for p in paths]

    def load_one(path: str) -> Tuple[str, Doc]:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: not a JSON document")
        return path, doc

    if workers > 1 and len(paths) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(load_one, paths))
    return [load_one(path) for path in paths]


def load_bundle(paths: Iterable[PathLike] = (),
                trace_paths: Iterable[PathLike] = (),
                db_path: Optional[PathLike] = None,
                workers: int = 1) -> ReportBundle:
    """Build a bundle from files: the ``repro report build`` front."""
    bundle = ReportBundle()
    for path, doc in load_docs(paths, workers=workers):
        bundle.add_doc(doc, source=path)
    bundle.add_trace_files(trace_paths)
    if db_path is not None:
        from repro.obs.store import MetricsStore

        with MetricsStore(db_path) as store:
            bundle.attach_store(store)
    return bundle
