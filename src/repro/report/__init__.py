"""Self-contained HTML reports and the paper-fidelity scorecard.

The report subsystem folds every machine-readable artifact the repo
emits into one static HTML file:

* :mod:`repro.report.model` — the :class:`ReportBundle` collector and
  the ``repro.fidelity/v1`` measurement document;
* :mod:`repro.report.scorecard` — the declarative registry of the
  paper's quantitative claims and the pass/warn/fail evaluator;
* :mod:`repro.report.svg` — dependency-free inline SVG charts;
* :mod:`repro.report.sections` — one renderer per document kind;
* :mod:`repro.report.html` — the page assembler.

CLI surface: ``repro report build`` / ``repro report bench`` and the
``--report-out`` flag on ``run`` / ``compare`` / ``sweep`` /
``bench check``.  See ``docs/observability.md``, "Reports and the
fidelity scorecard".
"""

from repro.report.html import (REPORT_SCHEMA, build_bench_report_page,
                               build_report, wrap_page)
from repro.report.model import (FIDELITY_SCHEMA, ReportBundle, fidelity_doc,
                                load_bundle)
from repro.report.scorecard import (CLAIMS, HEADLINE_IDS, PaperClaim,
                                    ScoreRow, evaluate_scorecard)

__all__ = [
    "REPORT_SCHEMA", "FIDELITY_SCHEMA", "CLAIMS", "HEADLINE_IDS",
    "ReportBundle", "PaperClaim", "ScoreRow",
    "build_report", "build_bench_report_page", "wrap_page",
    "evaluate_scorecard", "fidelity_doc", "load_bundle",
]
