"""Assemble the self-contained HTML report page.

One call — :func:`build_report` — turns a
:class:`~repro.report.model.ReportBundle` into a single static HTML
string: inline CSS, inline SVG, zero scripts, zero external requests
(no ``http(s)://`` reference anywhere, pinned by a golden test).  The
body carries no timestamps and no randomness, so identical inputs
produce byte-identical reports however the bundle was loaded.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.report import sections
from repro.report.model import ReportBundle
from repro.report.scorecard import evaluate_scorecard

#: Version tag embedded in the page's meta generator tag.
REPORT_SCHEMA = "repro.report/v1"

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 system-ui, sans-serif; margin: 0 auto;
       max-width: 960px; padding: 0 24px 48px; color: #1c2128; }
h1 { font-size: 24px; border-bottom: 2px solid #4878a8;
     padding-bottom: 8px; }
h2 { font-size: 19px; margin-top: 36px; border-bottom: 1px solid #d5d9e0;
     padding-bottom: 4px; }
h3 { font-size: 15px; margin-bottom: 6px; }
code { background: #f0f2f5; padding: 1px 4px; border-radius: 3px;
       font-size: 12px; }
table { border-collapse: collapse; margin: 12px 0; width: 100%; }
th, td { border: 1px solid #d5d9e0; padding: 5px 9px; text-align: left;
         font-size: 13px; }
th { background: #f0f2f5; }
.badge { display: inline-block; padding: 1px 9px; border-radius: 10px;
         font-size: 12px; font-weight: 600; color: #fff; }
.badge-pass { background: #2e8540; }
.badge-warn { background: #c8841a; }
.badge-fail { background: #c0392b; }
.badge-no-data { background: #8a8f98; }
.headline-row { display: flex; gap: 16px; flex-wrap: wrap;
                margin: 20px 0; }
.headline { flex: 1 1 260px; border: 1px solid #d5d9e0; border-radius: 8px;
            padding: 14px 16px; border-top-width: 4px; }
.headline-pass { border-top-color: #2e8540; }
.headline-warn { border-top-color: #c8841a; }
.headline-fail { border-top-color: #c0392b; }
.headline-no-data { border-top-color: #8a8f98; }
.headline-value { font-size: 22px; font-weight: 700; margin: 4px 0; }
.headline-paper, .headline-dev, .source { color: #5b6069; font-size: 12px; }
.headline-title { font-size: 13px; margin-bottom: 6px; }
nav { margin: 16px 0; font-size: 13px; }
nav a { margin-right: 12px; color: #35618e; }
section { margin-bottom: 8px; }
.summary { font-size: 13px; }
"""


def wrap_page(title: str, body: str) -> str:
    """The standalone-page shell every report variant shares."""
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            f"<meta name=\"generator\" content=\"{REPORT_SCHEMA}\">"
            f"<title>{sections.esc(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            f"<h1>{sections.esc(title)}</h1>{body}</body></html>\n")


def _nav(entries: List[tuple]) -> str:
    links = "".join(f'<a href="#{slug}">{sections.esc(label)}</a>'
                    for slug, label in entries)
    return f"<nav>{links}</nav>"


def build_report(bundle: ReportBundle,
                 title: str = "Hybrid virtual caching — "
                              "reproduction report") -> str:
    """Render one bundle into the complete self-contained page."""
    rows = evaluate_scorecard(bundle)
    parts: List[str] = []
    nav_entries = [("scorecard", "scorecard")]

    parts.append(sections.render_headline_banner(rows))
    parts.append(sections.render_scorecard(rows))
    parts.extend(sections.render_artifact_sections(rows, bundle))
    nav_entries.append(("artifact-figure-4", "figures"))

    for doc, source in bundle.compares:
        parts.append(sections.render_compare(doc, source))
    for doc, source in bundle.sweeps:
        parts.append(sections.render_sweep(doc, source))
    for doc, source in bundle.results:
        parts.append(sections.render_result(doc, source))
    if len(bundle.results) > 1:
        parts.append(sections.render_combined_profile(bundle.results))
        nav_entries.append(("combined-profile", "profile"))
    for doc, source in bundle.profiles:
        parts.append(sections.render_profile(doc, source))
    for doc, source in bundle.bench_reports:
        parts.append(sections.render_bench_report(doc, source))
        nav_entries.append(("gate-" + sections._slug(source), "gate"))
    for doc, source in bundle.bench:
        parts.append(sections.render_bench(doc, source))
    for doc, source in bundle.traces:
        parts.append(sections.render_trace(doc, source))
    if bundle.history:
        parts.append(sections.render_history(bundle.history))
        nav_entries.append(("history", "history"))
    parts.append(sections.render_inputs(bundle.sources))
    nav_entries.append(("inputs", "inputs"))

    body = _nav(nav_entries) + "".join(parts)
    return wrap_page(title, body)


def build_bench_report_page(doc: Dict[str, Any],
                            source: str = "(inline)") -> str:
    """``repro report bench``: one gate report as a standalone page."""
    body = sections.render_bench_report(doc, source)
    return wrap_page("Benchmark regression report", body)
