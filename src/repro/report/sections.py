"""HTML section renderers: one function per document kind.

Each renderer takes a parsed document (plus the source label the bundle
recorded) and returns an HTML fragment — headings, tables, and inline
SVG from :mod:`repro.report.svg`.  The page assembler
(:mod:`repro.report.html`) concatenates them in a fixed order.

Renderers reuse the repo's existing analytics rather than reimplement
them: trace sections lean on the phase attribution
:mod:`repro.obs.traceview` computed into the ``repro.trace/v1``
document, and multi-result bundles are folded through
:class:`repro.obs.aggregate.ProfileAggregate` so the report's combined
profile is the exact object ``repro profile --sizes`` renders.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.report import svg
from repro.report.scorecard import (NO_DATA, ScoreRow, artifacts,
                                    rows_for_artifact)

Doc = Dict[str, Any]


def esc(text: object) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return f"{value:.6g}"


def table(headers: Sequence[str], rows: Iterable[Sequence[object]],
          *, raw_columns: Sequence[int] = ()) -> str:
    """An HTML table; columns listed in ``raw_columns`` are trusted
    HTML (badges, sparklines), everything else is escaped."""
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            cells.append(f"<td>{cell if i in raw_columns else esc(cell)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def badge(kind: str, text: Optional[str] = None) -> str:
    return f'<span class="badge badge-{kind}">{esc(text or kind)}</span>'


def section(slug: str, title: str, body: str, *,
            source: Optional[str] = None, note: str = "") -> str:
    src = (f'<p class="source">source: <code>{esc(source)}</code></p>'
           if source else "")
    intro = f"<p>{esc(note)}</p>" if note else ""
    return (f'<section id="{esc(slug)}"><h2>{esc(title)}</h2>'
            f"{intro}{body}{src}</section>")


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in text.lower())


# ---------------------------------------------------------------------- #
# Scorecard
# ---------------------------------------------------------------------- #

def render_headline_banner(rows: List[ScoreRow]) -> str:
    """The three abstract-level claims as large badge tiles."""
    tiles = []
    for row in rows:
        if not row.claim.headline:
            continue
        measured = (f"{fmt(row.measured)} {esc(row.claim.unit)}"
                    if row.measured is not None else "not measured")
        deviation = row.deviation_pct
        dev_text = (f"{deviation:+.1f}% vs. paper"
                    if deviation is not None else "")
        tiles.append(
            f'<div class="headline headline-{row.badge}">'
            f'<div class="headline-paper">paper: '
            f"{fmt(row.claim.paper_value)} {esc(row.claim.unit)}</div>"
            f'<div class="headline-value">{measured}</div>'
            f'<div class="headline-title">{esc(row.claim.title)}</div>'
            f'<div class="headline-dev">{esc(dev_text)}</div>'
            f"{badge(row.badge)}</div>")
    return '<div class="headline-row">' + "".join(tiles) + "</div>"


def render_scorecard(rows: List[ScoreRow]) -> str:
    """The full scorecard table, one row per registered claim."""
    body_rows = []
    for row in rows:
        deviation = row.deviation_pct
        body_rows.append([
            esc(row.claim.artifact),
            esc(row.claim.title),
            f"{fmt(row.claim.paper_value)} {esc(row.claim.unit)}",
            fmt(row.measured),
            "—" if deviation is None else f"{deviation:+.1f}%",
            badge(row.badge),
            esc(row.claim.source),
        ])
    counts: Dict[str, int] = {}
    for row in rows:
        counts[row.badge] = counts.get(row.badge, 0) + 1
    summary = " ".join(f"{badge(kind)} × {counts[kind]}"
                       for kind in ("pass", "warn", "fail", NO_DATA)
                       if counts.get(kind))
    return section(
        "scorecard", "Paper-fidelity scorecard",
        f'<p class="summary">{summary}</p>'
        + table(["artifact", "claim", "paper", "reproduced", "deviation",
                 "badge", "paper source"],
                body_rows, raw_columns=(0, 1, 2, 3, 4, 5, 6)),
        note="Each registered claim of the paper, the reproduced value "
             "extracted from this report's inputs, and the deviation. "
             "Badges: pass = within the claim's tolerance, warn = "
             "beyond it, fail = far off, no-data = nothing in the "
             "inputs can measure this claim.")


def render_artifact_sections(rows: List[ScoreRow],
                             bundle: Any) -> List[str]:
    """One section per reproduced figure/table, registry order."""
    out: List[str] = []
    for artifact in artifacts(rows):
        artifact_rows = rows_for_artifact(rows, artifact)
        body_rows = []
        for row in artifact_rows:
            deviation = row.deviation_pct
            body_rows.append([
                esc(row.claim.title),
                f"{fmt(row.claim.paper_value)} {esc(row.claim.unit)}",
                fmt(row.measured),
                "—" if deviation is None else f"{deviation:+.1f}%",
                badge(row.badge),
            ])
        body = table(["claim", "paper", "reproduced", "deviation", "badge"],
                     body_rows, raw_columns=(0, 1, 2, 3, 4))
        chart = _artifact_chart(artifact, bundle)
        if chart:
            body += chart
        notes = "".join(f"<p>{esc(row.claim.note)}</p>"
                        for row in artifact_rows if row.claim.note)
        out.append(section(
            "artifact-" + _slug(artifact), f"{artifact} — fidelity",
            notes + body))
    return out


def _artifact_chart(artifact: str, bundle: Any) -> str:
    """A chart from bundle data, where a document kind maps onto the
    artifact (Figure 4 ← sweeps, Figures 9/10 ← compare documents)."""
    if artifact == "Figure 4" and bundle.sweeps:
        doc, source = bundle.sweeps[0]
        curve = doc.get("delayed_tlb_mpki") or []
        sizes = doc.get("sizes") or []
        if curve and sizes:
            chart = svg.line_chart(
                {doc.get("workload", "workload"): curve},
                [str(s) for s in sizes], log_y=False)
            return (f"<h3>delayed-TLB MPKI vs. entries "
                    f"(<code>{esc(source)}</code>)</h3>" + chart)
    if artifact in ("Figure 9", "Figure 10"):
        virt = artifact == "Figure 10"
        for doc, source in bundle.compares:
            speedups = doc.get("speedups") or {}
            if not speedups:
                continue
            if any(n.startswith("virt") for n in speedups) != virt:
                continue
            chart = svg.bar_chart(speedups, reference=1.0)
            return (f"<h3>normalized performance, "
                    f"{esc(doc.get('workload', '?'))} "
                    f"(<code>{esc(source)}</code>)</h3>" + chart)
    return ""


# ---------------------------------------------------------------------- #
# Document sections
# ---------------------------------------------------------------------- #

def render_result(doc: Doc, source: str) -> str:
    """One ``repro.result/v1`` document: key metrics + breakdowns."""
    rows = [
        ("workload", doc.get("workload")), ("mmu", doc.get("mmu")),
        ("instructions", doc.get("instructions")),
        ("accesses", doc.get("accesses")),
        ("cycles", fmt(doc.get("cycles"))),
        ("ipc", fmt(doc.get("ipc"))),
        ("LLC miss rate", fmt(doc.get("llc_miss_rate"))),
    ]
    body = table(["metric", "value"], rows)
    breakdown = doc.get("cycle_breakdown") or {}
    body += "<h3>cycle breakdown</h3>" + svg.stacked_bar(breakdown)
    histograms = doc.get("histograms") or {}
    for name in sorted(histograms):
        snap = histograms[name]
        if not snap.get("count"):
            continue
        body += f"<h3>latency histogram: {esc(name)}</h3>"
        body += svg.histogram_chart(snap)
    intervals = doc.get("intervals") or []
    if intervals:
        ipcs = [window.get("ipc", 0.0) for window in intervals]
        body += ("<h3>per-interval IPC</h3>"
                 + svg.sparkline(ipcs, width=360, height=48))
    label = f"{doc.get('workload', '?')}/{doc.get('mmu', '?')}"
    return section("result-" + _slug(label + "-" + source),
                   f"Run — {label}", body, source=source)


def render_compare(doc: Doc, source: str) -> str:
    speedups = doc.get("speedups") or {}
    body = (f"<p>normalized to <code>"
            f"{esc(doc.get('normalized_to', '?'))}</code></p>"
            + svg.bar_chart(speedups, reference=1.0))
    body += table(["configuration", "speedup"],
                  [(name, fmt(value)) for name, value in speedups.items()])
    return section("compare-" + _slug(source),
                   f"Comparison — {doc.get('workload', '?')}",
                   body, source=source)


def render_sweep(doc: Doc, source: str) -> str:
    sizes = doc.get("sizes") or []
    curve = doc.get("delayed_tlb_mpki") or []
    body = svg.line_chart({doc.get("workload", "mpki"): curve},
                          [str(s) for s in sizes])
    body += table(["entries", "delayed-TLB MPKI"],
                  [(size, fmt(value)) for size, value in zip(sizes, curve)])
    return section("sweep-" + _slug(source),
                   f"Delayed-TLB sweep — {doc.get('workload', '?')}",
                   body, source=source)


def render_profile(doc: Doc, source: str) -> str:
    """A ``repro.profile/v1`` aggregated-sweep document."""
    aggregate = doc.get("aggregate") or {}
    body = table(["metric", "value"], [
        ("points", aggregate.get("points")),
        ("instructions", aggregate.get("instructions")),
        ("ipc", fmt(aggregate.get("ipc"))),
    ])
    body += ("<h3>aggregate cycle breakdown</h3>"
             + svg.stacked_bar(aggregate.get("cycle_breakdown") or {}))
    histograms = aggregate.get("histograms") or {}
    for name in sorted(histograms):
        if not histograms[name].get("count"):
            continue
        body += f"<h3>merged histogram: {esc(name)}</h3>"
        body += svg.histogram_chart(histograms[name])
    return section("profile-" + _slug(source),
                   f"Profile — {doc.get('workload', '?')}/"
                   f"{doc.get('config', '?')}", body, source=source)


def render_combined_profile(results: List[Tuple[Doc, str]]) -> str:
    """Fold the bundle's result documents through
    :func:`repro.obs.aggregate.aggregate_results` — the same aggregate
    the CLI's ``profile --sizes`` path renders."""
    from repro.obs.aggregate import aggregate_results
    from repro.sim.results import SimulationResult

    aggregate = aggregate_results(
        [SimulationResult.from_json_dict(doc) for doc, _ in results])
    body = table(["metric", "value"], [
        ("points", aggregate.points),
        ("instructions", aggregate.instructions),
        ("accesses", aggregate.accesses),
        ("ipc", fmt(aggregate.ipc)),
    ])
    body += ("<h3>combined cycle breakdown</h3>"
             + svg.stacked_bar(aggregate.cycle_breakdown))
    for name in sorted(aggregate.histograms):
        if not aggregate.histograms[name].get("count"):
            continue
        body += f"<h3>merged histogram: {esc(name)}</h3>"
        body += svg.histogram_chart(aggregate.histograms[name])
    return section("combined-profile",
                   f"Combined profile ({aggregate.points} runs)", body,
                   note="All result documents in this report folded into "
                        "one ProfileAggregate: histograms merged "
                        "losslessly, cycle breakdowns summed.")


def render_bench(doc: Doc, source: str) -> str:
    """A ``repro.bench/v2`` baseline document."""
    rows = []
    for entry in doc.get("benchmarks", []):
        metrics = entry.get("metrics") or {}
        rows.append([
            entry.get("name", "?"),
            entry.get("workload", "—"), entry.get("mmu", "—"),
            fmt(entry.get("seconds")),
            " ".join(f"{k}={fmt(v)}" for k, v in sorted(metrics.items()))
            or "—",
        ])
    body = table(["benchmark", "workload", "mmu", "seconds", "metrics"],
                 rows)
    ipcs = {entry.get("name", "?"): entry["metrics"]["ipc"]
            for entry in doc.get("benchmarks", [])
            if (entry.get("metrics") or {}).get("ipc")}
    if ipcs:
        body += "<h3>IPC by benchmark</h3>" + svg.bar_chart(ipcs)
    return section("bench-" + _slug(source), "Benchmark baseline", body,
                   source=source)


def render_bench_report(doc: Doc, source: str = "(inline)") -> str:
    """A ``repro.bench.report/v1`` gate report, as HTML."""
    ok = bool(doc.get("ok"))
    verdict = badge("pass" if ok else "fail",
                    "PASS" if ok
                    else f"FAIL — {doc.get('regressions', 0)} regression(s)")
    threshold = doc.get("threshold_pct")
    seconds_threshold = doc.get("seconds_threshold_pct")
    intro = (f"<p>{verdict} model-metric threshold "
             f"{fmt(threshold)} %, "
             + (f"seconds threshold {fmt(seconds_threshold)} %"
                if seconds_threshold is not None
                else "seconds reported but not gated") + "</p>")
    shas = (doc.get("baseline_sha"), doc.get("current_sha"))
    if any(shas):
        intro += (f"<p>baseline <code>{esc(shas[0] or 'unknown')}</code> "
                  f"→ current <code>{esc(shas[1] or 'unknown')}</code></p>")
    deltas = doc.get("deltas") or []
    with_history = any(d.get("history") for d in deltas)
    rows = []
    for delta in sorted(deltas, key=lambda d: (not d.get("regressed"),
                                               str(d.get("benchmark")),
                                               str(d.get("metric")))):
        status = delta.get("status", "ok")
        kind = ("fail" if delta.get("regressed") and delta.get("gated")
                else "warn" if delta.get("regressed")
                else "pass")
        change = delta.get("change_pct", 0.0)
        row = [esc(delta.get("benchmark")), esc(delta.get("metric")),
               fmt(delta.get("baseline")), fmt(delta.get("current")),
               "inf" if math.isinf(change) else f"{change:+.2f}",
               badge(kind, status)]
        if with_history:
            history = delta.get("history")
            row.append(svg.sparkline(history, width=100, height=20)
                       if history else "—")
        rows.append(row)
    headers = ["benchmark", "metric", "baseline", "current", "Δ %", "status"]
    if with_history:
        headers.append("history")
    body = intro + table(headers, rows,
                         raw_columns=tuple(range(len(headers))))
    for name in doc.get("missing") or []:
        body += (f"<p>{badge('fail', 'missing')} "
                 f"<code>{esc(name)}</code> dropped from current</p>")
    for name in doc.get("added") or []:
        body += (f"<p>{badge('warn', 'new')} <code>{esc(name)}</code> "
                 f"has no baseline</p>")
    return section("gate-" + _slug(source), "Regression gate", body,
                   source=source)


def render_trace(doc: Doc, source: str) -> str:
    """A ``repro.trace/v1`` analytics document: per-run attribution."""
    body = (f"<p>events: {esc(doc.get('events', 0))}, "
            f"runs: {len(doc.get('runs') or [])}, "
            f"skipped lines: {esc(doc.get('skipped_lines', 0))}</p>")
    runs = doc.get("runs") or []
    for index, run in enumerate(runs):
        detail = run.get("detail") or {}
        label = (f"{detail.get('workload', '?')}/"
                 f"{detail.get('mmu', '?')}")
        attribution = run.get("cycle_attribution") or {}
        body += (f"<h3>run {index}: {esc(label)} — "
                 f"{esc(run.get('accesses', 0))} accesses, "
                 f"{esc(run.get('total_cycles', 0))} cycles</h3>")
        body += svg.stacked_bar(attribution)
        hit_levels = run.get("hit_levels") or {}
        if hit_levels:
            total = sum(hit_levels.values()) or 1
            body += "<h4>hit-level mix</h4>" + svg.bar_chart(
                {level: count / total
                 for level, count in sorted(hit_levels.items())})
    overall = doc.get("overall") or {}
    if len(runs) > 1 and overall:
        body += ("<h3>overall (all runs combined)</h3>"
                 + svg.stacked_bar(overall.get("cycle_attribution") or {}))
    return section("trace-" + _slug(source), "Trace analytics", body,
                   source=source)


def render_history(history: Dict[str, List[float]]) -> str:
    """Cross-run metric trends (``--db``) as sparkline rows."""
    rows = []
    for metric in sorted(history):
        values = history[metric]
        rows.append([
            esc(metric),
            svg.sparkline(values, width=160, height=28),
            str(len(values)), fmt(min(values)), fmt(max(values)),
            fmt(values[-1]),
        ])
    body = table(["metric", "trend", "n", "min", "max", "latest"], rows,
                 raw_columns=(0, 1, 2, 3, 4, 5))
    return section("history", "Cross-run history", body,
                   note="Recorded values across the ingested run history "
                        "(oldest → newest), from the metrics store.")


def render_inputs(sources: List[str]) -> str:
    items = "".join(f"<li><code>{esc(s)}</code></li>"
                    for s in dict.fromkeys(sources))
    return section("inputs", "Report inputs",
                   f"<ul>{items or '<li>(none)</li>'}</ul>")
