"""Inline SVG chart primitives for the HTML report.

Every function returns a complete ``<svg>…</svg>`` fragment built from
plain string formatting — no plotting library, no external fonts, no
``xmlns`` URL (optional for SVG embedded in HTML5, and the report is
pinned to contain zero ``http(s)://`` references).  All coordinates are
formatted with fixed precision so identical inputs render to identical
bytes, which the byte-determinism golden test relies on.

Empty-input guards mirror :mod:`repro.sim.report`: an empty mapping or a
zero total renders a small placeholder tile instead of raising — the
same contract the ASCII helpers follow.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill colors cycled by multi-series charts (hex only, no URLs).
PALETTE = ("#4878a8", "#e8795a", "#57a773", "#a05aa8",
           "#c8a24b", "#5ab4c8", "#98687b", "#708238")

ACCENT = "#4878a8"
MUTED = "#8a8f98"


def _esc(text: object) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _num(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic bytes)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def placeholder(note: str = "(no data)", width: int = 360,
                height: int = 40) -> str:
    """The empty-chart tile every renderer falls back to."""
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img">'
            f'<rect x="0" y="0" width="{width}" height="{height}" '
            f'fill="none" stroke="{MUTED}" stroke-dasharray="4 3"/>'
            f'<text x="{width // 2}" y="{height // 2 + 4}" '
            f'text-anchor="middle" fill="{MUTED}" font-size="12">'
            f"{_esc(note)}</text></svg>")


def bar_chart(values: Mapping[str, float], *, width: int = 560,
              bar_height: int = 18, gap: int = 6,
              reference: float | None = None,
              fmt: str = "{:.3f}", label_width: int = 150) -> str:
    """Labeled horizontal bars scaled to the maximum value.

    ``reference`` draws a vertical rule at that value (e.g. 1.0 in a
    normalized-performance chart).  Negative values clamp to zero-length
    bars, like :func:`repro.sim.report.horizontal_bars`.
    """
    if not values:
        return placeholder()
    peak = max(values.values())
    if peak <= 0:
        return placeholder("(no positive values)")
    plot_w = width - label_width - 70
    height = len(values) * (bar_height + gap) + gap
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    for i, (label, value) in enumerate(values.items()):
        y = gap + i * (bar_height + gap)
        bar_w = max(0.0, plot_w * value / peak)
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<text x="{label_width - 6}" y="{y + bar_height - 5}" '
            f'text-anchor="end" font-size="12">{_esc(label)}</text>')
        parts.append(
            f'<rect x="{label_width}" y="{y}" width="{_num(bar_w)}" '
            f'height="{bar_height}" fill="{color}"/>')
        parts.append(
            f'<text x="{_num(label_width + bar_w + 5)}" '
            f'y="{y + bar_height - 5}" font-size="11" fill="{MUTED}">'
            f"{_esc(fmt.format(value))}</text>")
    if reference is not None and 0 < reference <= peak:
        x = label_width + plot_w * reference / peak
        parts.append(
            f'<line x1="{_num(x)}" y1="0" x2="{_num(x)}" '
            f'y2="{height}" stroke="#333" stroke-dasharray="3 3"/>')
    parts.append("</svg>")
    return "".join(parts)


def histogram_chart(snapshot: Mapping[str, object], *, width: int = 560,
                    bar_height: int = 14, gap: int = 4) -> str:
    """Render a log2 :meth:`Histogram.snapshot` as horizontal bars.

    Same guard as the ASCII ``histogram_chart``: no buckets or a zero
    count renders the placeholder tile.
    """
    buckets = snapshot.get("buckets") or []
    count = snapshot.get("count", 0)
    if not buckets or not count:
        return placeholder("(empty histogram)")
    peak = max(b["count"] for b in buckets)
    if peak <= 0:
        return placeholder("(empty histogram)")
    label_width = 110
    height = len(buckets) * (bar_height + gap) + gap + 16
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">',
             f'<text x="0" y="12" font-size="11" fill="{MUTED}">'
             f"n={count}  mean={float(snapshot.get('mean', 0.0)):.1f}  "
             f"p50&lt;={snapshot.get('p50', 0)}  "
             f"p99&lt;={snapshot.get('p99', 0)}</text>"]
    plot_w = width - label_width - 60
    for i, bucket in enumerate(buckets):
        y = 20 + i * (bar_height + gap)
        bar_w = max(1.0, plot_w * bucket["count"] / peak)
        share = 100.0 * bucket["count"] / count
        parts.append(
            f'<text x="{label_width - 6}" y="{y + bar_height - 3}" '
            f'text-anchor="end" font-size="10">'
            f"[{bucket['lo']}, {bucket['hi']}]</text>")
        parts.append(
            f'<rect x="{label_width}" y="{y}" width="{_num(bar_w)}" '
            f'height="{bar_height}" fill="{ACCENT}"/>')
        parts.append(
            f'<text x="{_num(label_width + bar_w + 4)}" '
            f'y="{y + bar_height - 3}" font-size="10" fill="{MUTED}">'
            f"{bucket['count']} ({share:.1f}%)</text>")
    parts.append("</svg>")
    return "".join(parts)


def sparkline(values: Sequence[float], *, width: int = 120,
              height: int = 24, stroke: str = ACCENT) -> str:
    """A small polyline trend chart (the report's history glyph).

    One point draws a flat midline with a dot — a single-sample history
    is a level trend, not an error.  Empty histories render the
    placeholder dash.
    """
    values = list(values)
    if not values:
        return placeholder("—", width=width, height=height)
    pad = 3
    lo, hi = min(values), max(values)
    span = hi - lo
    if len(values) == 1 or span == 0:
        y = height / 2
        last_x = width - pad
        parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
                 f'height="{height}" role="img">',
                 f'<line x1="{pad}" y1="{_num(y)}" x2="{last_x}" '
                 f'y2="{_num(y)}" stroke="{stroke}" stroke-width="1.5"/>',
                 f'<circle cx="{last_x}" cy="{_num(y)}" r="2.5" '
                 f'fill="{stroke}"/></svg>']
        return "".join(parts)
    step = (width - 2 * pad) / (len(values) - 1)
    points = []
    for i, value in enumerate(values):
        x = pad + i * step
        y = pad + (height - 2 * pad) * (1.0 - (value - lo) / span)
        points.append(f"{_num(x)},{_num(y)}")
    last_x, last_y = points[-1].split(",")
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img">'
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{stroke}" stroke-width="1.5"/>'
            f'<circle cx="{last_x}" cy="{last_y}" r="2.5" '
            f'fill="{stroke}"/></svg>')


def line_chart(series: Mapping[str, Sequence[float]],
               columns: Sequence[object], *, width: int = 560,
               height: int = 220, log_y: bool = False) -> str:
    """Multi-series line chart over shared x labels (sweep curves).

    Guards: no series, or no positive/finite values, renders the
    placeholder.  ``log_y`` plots on a log10 axis, clamping values
    ``<= 0`` to the smallest positive value present.
    """
    series = {name: list(row) for name, row in series.items() if row}
    if not series or not columns:
        return placeholder()
    flat = [v for row in series.values() for v in row]
    if log_y:
        positive = [v for v in flat if v > 0]
        if not positive:
            return placeholder("(no positive values)")
        import math

        floor = min(positive)
        flat = [math.log10(max(v, floor)) for v in flat]

        def transform(v: float) -> float:
            return math.log10(max(v, floor))
    else:
        def transform(v: float) -> float:
            return v
    lo, hi = min(flat), max(flat)
    span = (hi - lo) or 1.0
    pad_l, pad_r, pad_t, pad_b = 50, 10, 10, 22
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    n = max(len(row) for row in series.values())
    step = plot_w / (n - 1) if n > 1 else 0.0
    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">',
             f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
             f'y2="{height - pad_b}" stroke="{MUTED}"/>',
             f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
             f'y2="{height - pad_b}" stroke="{MUTED}"/>']
    for i, column in enumerate(columns[:n]):
        x = pad_l + i * step
        parts.append(f'<text x="{_num(x)}" y="{height - 6}" '
                     f'text-anchor="middle" font-size="10" fill="{MUTED}">'
                     f"{_esc(column)}</text>")
    for si, (name, row) in enumerate(series.items()):
        color = PALETTE[si % len(PALETTE)]
        points = []
        for i, value in enumerate(row):
            x = pad_l + i * step
            y = pad_t + plot_h * (1.0 - (transform(value) - lo) / span)
            points.append(f"{_num(x)},{_num(y)}")
        parts.append(f'<polyline points="{" ".join(points)}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{width - pad_r}" y="{pad_t + 12 + 13 * si}" '
                     f'text-anchor="end" font-size="11" fill="{color}">'
                     f"{_esc(name)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def stacked_bar(breakdown: Mapping[str, float], *, width: int = 560,
                height: int = 26) -> str:
    """One stacked bar of cycle/energy components with a legend row.

    Same guard as :func:`repro.sim.report.breakdown_chart`: an empty
    mapping or a non-positive total renders the placeholder.
    """
    total = sum(breakdown.values())
    if not breakdown or total <= 0:
        return placeholder("(empty breakdown)")
    legend_h = 16 * ((len(breakdown) + 2) // 3)
    parts = [f'<svg viewBox="0 0 {width} {height + legend_h + 8}" '
             f'width="{width}" height="{height + legend_h + 8}" role="img">']
    x = 0.0
    for i, (name, value) in enumerate(breakdown.items()):
        span = width * value / total
        color = PALETTE[i % len(PALETTE)]
        parts.append(f'<rect x="{_num(x)}" y="0" width="{_num(span)}" '
                     f'height="{height}" fill="{color}"/>')
        x += span
        lx = 10 + (i % 3) * (width // 3)
        ly = height + 14 + 16 * (i // 3)
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly}" font-size="11">'
                     f"{_esc(name)}: {100.0 * value / total:.1f}%</text>")
    parts.append("</svg>")
    return "".join(parts)
