"""Physically addressed baseline MMU (the paper's comparison point).

Translation sits on the critical core-to-L1 path: every access probes the
L1 TLB (overlapped with L1 indexing, VIPT-style, so a hit exposes no extra
cycles), an L1-TLB miss exposes the 7-cycle L2 TLB, and a full TLB miss
blocks the access for a hardware page walk whose PTE reads travel through
the cache hierarchy.  All cache levels are physically tagged, so nothing
proceeds until the translation resolves.
"""

from __future__ import annotations

from repro.common.address import physical_block_key, virtual_page_key
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.core.mmu_base import AccessOutcome, MmuBase
from repro.osmodel.kernel import Kernel
from repro.tlb.base import TlbEntry
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.walker import PageWalker


class ConventionalMmu(MmuBase):
    """Baseline: per-core two-level TLBs before physically addressed caches."""

    name = "baseline"

    def __init__(self, kernel: Kernel, config: SystemConfig | None = None) -> None:
        super().__init__(kernel, config)
        cfg = self.config
        self.tlbs = [TlbHierarchy(cfg.l1_tlb, cfg.l2_tlb, f"tlb_core{c}")
                     for c in range(cfg.cores)]
        self.walkers = [
            PageWalker(cfg.walker, kernel.pte_path,
                       lambda pa, c=c: self.charge_physical_read(c, pa),
                       stats=StatGroup(f"walker_core{c}"))
            for c in range(cfg.cores)
        ]
        for c in range(cfg.cores):
            self.stats.register(self.tlbs[c].stats)
            self.stats.register(self.tlbs[c].l1.stats)
            self.stats.register(self.tlbs[c].l2.stats)
            self.stats.register(self.walkers[c].stats)
        kernel.on_shootdown(self._shootdown)
        kernel.on_page_flush(self._flush_page)

    # ------------------------------------------------------------------ #
    # OS callbacks
    # ------------------------------------------------------------------ #

    def _shootdown(self, asid: int, page_va: int) -> None:
        key = virtual_page_key(asid, page_va)
        for tlb in self.tlbs:
            tlb.invalidate(key)

    def _flush_page(self, asid: int, page_va: int, was_shared: bool) -> None:
        # Physical caches: flush the page's physical blocks.
        try:
            pa = self.kernel.translate(asid, page_va).pa
        except Exception:
            return
        base_key = physical_block_key(pa)
        self.caches.flush_blocks(base_key + i for i in range(64))

    # ------------------------------------------------------------------ #
    # The access path
    # ------------------------------------------------------------------ #

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One memory access: TLB hierarchy, walk on miss, physical caches."""
        self._accesses += 1
        page_key = virtual_page_key(asid, va)
        tlb = self.tlbs[core]
        lookup = tlb.lookup(page_key)
        front = 0
        if lookup.level == "l1":
            entry = lookup.entry
        elif lookup.level == "l2":
            entry = lookup.entry
            front = self.config.l2_tlb.latency
        else:
            walk = self.walkers[core].walk(asid, va)
            front = self.config.l2_tlb.latency + walk.cycles
            translation = self.kernel.translate(asid, va)
            entry = TlbEntry(page_key, translation.pa >> 12, True,
                             translation.permissions)
            tlb.fill(entry)

        assert entry is not None
        pa = (entry.pfn << 12) | (va & 0xFFF)
        result = self.caches.access(core, physical_block_key(pa), is_write)
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, 0, dram, result.hit_level,
                             translated_pa=pa)
