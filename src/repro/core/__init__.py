"""MMU front-ends: the paper's contribution and its comparison points."""

from repro.core.conventional import ConventionalMmu
from repro.core.hybrid import (
    DelayedTlbEngine,
    HybridMmu,
    ManySegmentEngine,
)
from repro.core.ideal import IdealMmu
from repro.core.prior import DirectSegmentMmu, EnigmaMmu, RmmMmu
from repro.core.thp import ThpBaselineMmu
from repro.core.mmu_base import AccessOutcome, MmuBase

__all__ = [
    "ConventionalMmu",
    "DelayedTlbEngine",
    "HybridMmu",
    "ManySegmentEngine",
    "IdealMmu",
    "DirectSegmentMmu",
    "EnigmaMmu",
    "RmmMmu",
    "ThpBaselineMmu",
    "AccessOutcome",
    "MmuBase",
]
