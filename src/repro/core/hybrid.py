"""Hybrid virtual caching MMU — the paper's proposed architecture.

Per-access flow (Figure 1):

1. The per-process **synonym filter** is probed in parallel with the L1
   access, so for non-synonym addresses it exposes no latency.
2. **Non-synonym** (the common case): the access proceeds through the
   whole hierarchy under ``ASID+VA``.  Translation happens only if the
   LLC misses, via a pluggable **delayed translation engine** — a large
   page-granularity delayed TLB (Section IV-A) or many-segment
   translation (Section IV-C).
3. **Synonym candidates**: a small conventional **synonym TLB** translates
   up-front.  True synonyms proceed under their physical address; false
   positives hit a *non-synonym marker entry* and fall back to the
   ASID+VA path (first occurrence pays a page walk to discover this).
4. Permission bits ride in every cached line; a write to a r/o line
   raises a permission fault resolved by the OS (copy-on-write for
   content-shared pages, Section III-D).
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

from repro.common.address import (
    PAGE_SHIFT,
    page_base,
    physical_block_key,
    virtual_block_key,
    virtual_page_key,
)
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.core.mmu_base import AccessOutcome, MmuBase
from repro.obs.events import (
    STAGE_DELAYED_TLB,
    STAGE_FILTER,
    STAGE_PAGE_WALK,
    STAGE_SEGMENT_WALK,
    STAGE_SYNONYM_TLB,
)
from repro.obs.histogram import Histogram
from repro.osmodel.kernel import Kernel
from repro.osmodel.segments import SegmentFault
from repro.segtrans.many_segment import ManySegmentTranslator
from repro.tlb.base import SetAssociativeTlb, TlbEntry
from repro.tlb.delayed import DelayedTlb
from repro.tlb.walker import PageWalker

#: Cycles charged for an OS permission-fault (CoW) trap-and-fix.
COW_FAULT_CYCLES = 2000


class DelayedEngine(Protocol):
    """Delayed translation engines: ASID+VA → (PA, cycles, permissions)."""

    def translate(self, asid: int, va: int) -> Tuple[int, int, int]: ...

    def shootdown(self, asid: int, page_va: int) -> None: ...


class DelayedTlbEngine:
    """Page-granularity delayed translation (Figure 4's subject)."""

    def __init__(self, kernel: Kernel, mmu: "HybridMmu") -> None:
        self.kernel = kernel
        self.mmu = mmu
        self.tlb = DelayedTlb(mmu.config.delayed_tlb)
        self.walker = PageWalker(mmu.config.walker, kernel.pte_path,
                                 lambda pa: mmu.charge_physical_read(0, pa),
                                 stats=StatGroup("delayed_walker"))
        mmu.stats.register(self.tlb.stats)
        mmu.stats.register(self.walker.stats)
        self.latency_hist = mmu.register_histogram(
            Histogram("delayed_tlb_engine_cycles"))
        mmu.register_histogram(self.walker.cycles_hist)

    def translate(self, asid: int, va: int) -> Tuple[int, int, int]:
        page_key = virtual_page_key(asid, va)
        entry = self.tlb.lookup(page_key)
        cycles = self.tlb.latency
        hit = entry is not None
        if entry is None:
            walk = self.walker.walk(asid, va)
            cycles += walk.cycles
            translation = self.kernel.translate(asid, va)
            entry = TlbEntry(page_key, translation.pa >> PAGE_SHIFT, True,
                             translation.permissions)
            self.tlb.fill(entry)
        self.latency_hist.record(cycles)
        if self.mmu.tracer.recording:
            self.mmu.tracer.stage(STAGE_DELAYED_TLB, cycles=cycles, hit=hit)
        pa = (entry.pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1))
        return pa, cycles, entry.permissions

    def shootdown(self, asid: int, page_va: int) -> None:
        self.tlb.shootdown(virtual_page_key(asid, page_va))


class ManySegmentEngine:
    """Variable-length segment delayed translation with paging fallback.

    Addresses outside every segment (e.g. demand-paged mappings) fall back
    to a page walk, mirroring how direct-segment/RMM systems keep paging
    available alongside ranges.
    """

    def __init__(self, kernel: Kernel, mmu: "HybridMmu",
                 use_segment_cache: bool = True,
                 index_cache_size: Optional[int] = None) -> None:
        self.kernel = kernel
        self.mmu = mmu
        self.translator = ManySegmentTranslator(
            kernel, mmu.config.segments,
            memory_charge=lambda pa: mmu.charge_physical_read(0, pa),
            use_segment_cache=use_segment_cache,
            index_cache_size=index_cache_size)
        self.fallback_walker = PageWalker(
            mmu.config.walker, kernel.pte_path,
            lambda pa: mmu.charge_physical_read(0, pa),
            stats=StatGroup("fallback_walker"))
        self.stats = StatGroup("many_segment_engine")
        mmu.stats.register(self.translator.stats)
        mmu.stats.register(self.translator.index_cache.stats)
        mmu.stats.register(self.translator.hw_table.stats)
        if self.translator.segment_cache is not None:
            mmu.stats.register(self.translator.segment_cache.stats)
        mmu.stats.register(self.stats)
        mmu.register_histogram(self.translator.depth_hist)
        mmu.register_histogram(self.translator.latency_hist)
        mmu.register_histogram(self.fallback_walker.cycles_hist)

    def translate(self, asid: int, va: int) -> Tuple[int, int, int]:
        try:
            result = self.translator.translate(asid, va)
            if self.mmu.tracer.recording:
                self.mmu.tracer.stage(STAGE_SEGMENT_WALK, cycles=result.cycles,
                                      sc_hit=result.sc_hit,
                                      nodes_read=result.index_nodes_read)
            return result.pa, result.cycles, result.permissions
        except SegmentFault:
            self.stats.add("paging_fallbacks")
            walk = self.fallback_walker.walk(asid, va)
            translation = self.kernel.translate(asid, va)
            if self.mmu.tracer.recording:
                self.mmu.tracer.stage(STAGE_PAGE_WALK, cycles=walk.cycles,
                                      fallback=True)
            return translation.pa, walk.cycles, translation.permissions

    def shootdown(self, asid: int, page_va: int) -> None:
        # Segment translations are invalidated via the segment-table
        # generation mechanism; page-granularity shootdowns are a no-op.
        return None


class HybridMmu(MmuBase):
    """Hybrid virtual caching with pluggable delayed translation."""

    name = "hybrid"

    def __init__(self, kernel: Kernel, config: SystemConfig | None = None,
                 delayed: str = "tlb", use_segment_cache: bool = True,
                 index_cache_size: Optional[int] = None,
                 parallel_delayed: bool = False) -> None:
        super().__init__(kernel, config)
        self.hybrid_stats = self.stats.group("hybrid")
        # Section IV-C: delayed translation can run in parallel with the
        # LLC access (hiding its latency under the LLC's 27 cycles at the
        # cost of translating on every L2 miss, i.e. extra energy) or
        # serially after the miss (the paper's choice, with the segment
        # cache recovering most of the latency).
        self.parallel_delayed = parallel_delayed
        self.synonym_tlb = SetAssociativeTlb(self.config.synonym_tlb, "synonym_tlb")
        self.stats.register(self.synonym_tlb.stats)
        self.synonym_walker = PageWalker(
            self.config.walker, kernel.pte_path,
            lambda pa: self.charge_physical_read(0, pa),
            stats=StatGroup("synonym_walker"))
        self.stats.register(self.synonym_walker.stats)
        self.register_histogram(self.synonym_walker.cycles_hist)
        if delayed == "tlb":
            self.delayed: DelayedEngine = DelayedTlbEngine(kernel, self)
        elif delayed == "segments":
            self.delayed = ManySegmentEngine(kernel, self, use_segment_cache,
                                             index_cache_size)
        else:
            raise ValueError(f"unknown delayed translation engine {delayed!r}")
        self.delayed_kind = delayed
        kernel.on_shootdown(self._shootdown)
        kernel.on_page_flush(self._flush_page)
        kernel.on_permission_change(self._permission_change)

    # ------------------------------------------------------------------ #
    # OS callbacks (Section III-A: state-dependent shootdown routing)
    # ------------------------------------------------------------------ #

    def _permission_change(self, asid: int, page_va: int,
                           permissions: int) -> None:
        """Downgrade cached copies in place (Section III-A / III-D)."""
        base_key = virtual_block_key(asid, page_va)
        self.caches.downgrade_blocks((base_key + i for i in range(64)),
                                     permissions)

    def _shootdown(self, asid: int, page_va: int) -> None:
        page_key = virtual_page_key(asid, page_va)
        self.synonym_tlb.invalidate(page_key)
        self.delayed.shootdown(asid, page_va)

    def _flush_page(self, asid: int, page_va: int, was_shared: bool) -> None:
        if was_shared:
            try:
                pa = self.kernel.translate(asid, page_va).pa
            except Exception:
                return
            base_key = physical_block_key(pa)
        else:
            base_key = virtual_block_key(asid, page_va)
        self.caches.flush_blocks(base_key + i for i in range(64))

    # ------------------------------------------------------------------ #
    # The access path
    # ------------------------------------------------------------------ #

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One memory access through the hybrid virtual-caching datapath."""
        self._accesses += 1
        self.hybrid_stats.add("accesses")
        process = self.kernel.process(asid)
        front = self.config.synonym_filter.latency  # overlapped: 0 by default

        candidate = process.synonym_filter.is_synonym_candidate(va)
        if self.tracer.recording:
            self.tracer.stage(STAGE_FILTER, cycles=front, candidate=candidate)
        if candidate:
            self.hybrid_stats.add("synonym_candidates")
            key, extra_front, permissions, pa = self._resolve_candidate(asid, va)
            front += extra_front
            # Synonym path: the TLB checks permissions *before* the cache
            # access (Section III-A "Permission Support").
            if pa is not None and is_write and not (permissions or 0) & 0x2:
                self.hybrid_stats.add("permission_faults")
                self.kernel.handle_cow_fault(process, va)
                retry = self.access(core, asid, va, is_write=True)
                return AccessOutcome(
                    front + COW_FAULT_CYCLES + retry.front_cycles,
                    retry.cache_cycles, retry.delayed_cycles,
                    retry.dram_cycles, retry.hit_level,
                    translated_pa=retry.translated_pa)
        else:
            self.hybrid_stats.add("tlb_bypasses")
            key = virtual_block_key(asid, va)
            permissions = None
            pa = None

        return self._finish_access(core, asid, va, is_write, key, front,
                                   permissions, pa)

    def _resolve_candidate(self, asid: int, va: int):
        """Synonym-TLB path for filter hits; detects false positives."""
        page_key = virtual_page_key(asid, va)
        front = self.synonym_tlb.latency
        entry = self.synonym_tlb.lookup(page_key)
        hit = entry is not None
        if entry is None:
            walk = self.synonym_walker.walk(asid, va)
            front += walk.cycles
            translation = self.kernel.translate(asid, va)
            entry = TlbEntry(page_key, translation.pa >> PAGE_SHIFT,
                             translation.shared, translation.permissions)
            self.synonym_tlb.fill(entry)
        if self.tracer.recording:
            self.tracer.stage(STAGE_SYNONYM_TLB, cycles=front, hit=hit,
                              is_synonym=entry.is_synonym)
        if entry.is_synonym:
            self.hybrid_stats.add("true_synonym_accesses")
            pa = (entry.pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1))
            return physical_block_key(pa), front, entry.permissions, pa
        # False positive: the marker entry redirects to the ASID+VA path.
        self.hybrid_stats.add("false_positive_accesses")
        return virtual_block_key(asid, va), front, None, None

    def _finish_access(self, core: int, asid: int, va: int, is_write: bool,
                       key: int, front: int, permissions, pa) -> AccessOutcome:
        is_virtual_key = pa is None
        fill_permissions = 0x3
        delayed_cycles = 0

        result = self.caches.access(core, key, is_write,
                                    permissions=fill_permissions)
        parallel_probe = (self.parallel_delayed and is_virtual_key
                          and result.hit_level == "llc")
        if parallel_probe:
            # Parallel mode translates speculatively on every L2 miss;
            # an LLC hit wastes the probe (energy, no latency).
            pa_spec, spec_cycles, _p = self.delayed.translate(asid, va)
            self.hybrid_stats.add("wasted_parallel_translations")
            pa = pa_spec if pa is None else pa
        if result.llc_miss and is_virtual_key:
            pa, delayed_cycles, perms = self.delayed.translate(asid, va)
            if self.parallel_delayed:
                # The translation ran under the LLC probe; only the part
                # exceeding the LLC latency is exposed.
                hidden = self.config.llc.latency
                delayed_cycles = max(0, delayed_cycles - hidden)
            # Install the delayed translation's permissions in the lines
            # just filled (the paper's fill-time permission delivery).
            line = self.caches.probe_line(core, key)
            if line is not None:
                line.permissions = perms
                llc_line = self.caches.llc.probe(key)
                if llc_line is not None:
                    llc_line.permissions = perms
            permissions = perms
        elif is_virtual_key:
            line = self.caches.probe_line(core, key)
            if line is not None:
                permissions = line.permissions

        if pa is None:
            # Virtual-key hit without any cached permission metadata can
            # only happen for lines filled before a permission change; use
            # the functional translation as the authoritative source.
            pa = self.kernel.translate(asid, va).pa

        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0

        # Permission enforcement on the cached copy (Section III-D).
        if is_virtual_key and is_write and permissions is not None:
            if not permissions & 0x2:
                return self._handle_permission_fault(core, asid, va, front,
                                                     result, delayed_cycles,
                                                     dram)
        return AccessOutcome(front, result.latency, delayed_cycles, dram,
                             result.hit_level, translated_pa=pa)

    def _handle_permission_fault(self, core: int, asid: int, va: int,
                                 front: int, result, delayed_cycles: int,
                                 dram: int) -> AccessOutcome:
        """Write to a r/o non-synonym line: OS copy-on-write, then retry."""
        self.hybrid_stats.add("permission_faults")
        process = self.kernel.process(asid)
        self.kernel.handle_cow_fault(process, va)
        retry = self.access(core, asid, va, is_write=True)
        return AccessOutcome(
            front + COW_FAULT_CYCLES + retry.front_cycles,
            result.latency + retry.cache_cycles,
            delayed_cycles + retry.delayed_cycles,
            dram + retry.dram_cycles,
            retry.hit_level,
            translated_pa=retry.translated_pa,
        )

    # ------------------------------------------------------------------ #
    # Reporting helpers (Table II inputs)
    # ------------------------------------------------------------------ #

    def histograms(self) -> dict:
        """Registered histograms plus the aggregated filter occupancy.

        Synonym filters are per-process OS state created after the MMU,
        so their occupancy samples are merged across the kernel's live
        processes at snapshot time rather than registered up front.
        """
        hists = super().histograms()
        occupancy = Histogram("synonym_filter_occupancy")
        for process in self.kernel.processes():
            occupancy.merge(process.synonym_filter.occupancy_hist)
        if occupancy.count:
            hists[occupancy.name] = occupancy
        return hists

    def false_positive_rate(self) -> float:
        """False-positive candidate accesses / all accesses."""
        return self.hybrid_stats.ratio("false_positive_accesses", "accesses")

    def tlb_access_reduction(self) -> float:
        """Fraction of accesses that bypassed all core-side TLBs."""
        return self.hybrid_stats.ratio("tlb_bypasses", "accesses")

    def total_tlb_misses(self) -> int:
        """Synonym-TLB misses + delayed-translation misses."""
        misses = self.synonym_tlb.stats["misses"]
        if isinstance(self.delayed, DelayedTlbEngine):
            misses += self.delayed.tlb.misses()
        else:
            engine = self.delayed
            assert isinstance(engine, ManySegmentEngine)
            misses += engine.translator.stats["full_walks"]
            misses += engine.stats["paging_fallbacks"]
        return misses
