"""Prior translation schemes the paper positions itself against.

* :class:`DirectSegmentMmu` — Basu et al., ISCA'13 (paper Section IV-A.2):
  one ``(base, limit, offset)`` register set per process maps a single
  large contiguous region with zero translation latency; everything else
  uses the conventional two-level TLB path.  Caches stay physical.

* :class:`RmmMmu` — Karakostas et al., ISCA'15 "Redundant Memory
  Mappings": a 32-entry fully associative *range TLB* operates alongside
  the L2 TLB (7 cycles) and refills the L1 TLB on range hits; paging
  remains as the redundant fallback.  Works beautifully until the live
  range count exceeds 32 (Table III's thrashing workloads).

* :class:`EnigmaMmu` — Zhang et al. (paper Section II-B "Intermediate
  address space"): the core translates VA→intermediate through one huge
  fixed-granularity segment per address space (cheap, core-side), the
  whole cache hierarchy runs on intermediate addresses, and a
  conventional page-granularity delayed TLB translates intermediate→PA
  after LLC misses.  Synonyms are handled by mapping shared regions into
  one shared intermediate range, so no synonym filter is needed — but
  the delayed translation is stuck at page granularity, which is exactly
  the scalability limit (Figure 4) the paper's many-segment design lifts.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.address import (
    PAGE_SHIFT,
    physical_block_key,
    virtual_block_key,
    virtual_page_key,
)
from repro.common.params import SystemConfig
from repro.common.stats import StatGroup
from repro.core.mmu_base import AccessOutcome, MmuBase
from repro.osmodel.address_space import POLICY_SHARED
from repro.osmodel.kernel import Kernel
from repro.osmodel.segments import SegmentFault
from repro.segtrans.rmm import DirectSegment, RangeTlb
from repro.tlb.base import TlbEntry
from repro.tlb.delayed import DelayedTlb
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.walker import PageWalker


class DirectSegmentMmu(MmuBase):
    """Single direct segment beside a conventional TLB hierarchy."""

    name = "direct_segment"

    def __init__(self, kernel: Kernel, config: Optional[SystemConfig] = None) -> None:
        super().__init__(kernel, config)
        cfg = self.config
        self.segment = DirectSegment()
        self.stats.register(self.segment.stats)
        self.tlbs = [TlbHierarchy(cfg.l1_tlb, cfg.l2_tlb, f"tlb_core{c}")
                     for c in range(cfg.cores)]
        self.walkers = [
            PageWalker(cfg.walker, kernel.pte_path,
                       lambda pa, c=c: self.charge_physical_read(c, pa),
                       stats=StatGroup(f"walker_core{c}"))
            for c in range(cfg.cores)
        ]
        for c in range(cfg.cores):
            self.stats.register(self.tlbs[c].stats)
            self.stats.register(self.walkers[c].stats)
        kernel.on_shootdown(self._shootdown)
        self._configured_asids: set[int] = set()

    def _shootdown(self, asid: int, page_va: int) -> None:
        key = virtual_page_key(asid, page_va)
        for tlb in self.tlbs:
            tlb.invalidate(key)

    def _ensure_configured(self, asid: int) -> None:
        """Lazy OS setup: point the registers at the process's largest
        segment (the paper's static big-memory allocation)."""
        if asid in self._configured_asids:
            return
        self._configured_asids.add(asid)
        segments = [s for s in self.kernel.segment_table.segments_sorted()
                    if s.asid == asid]
        if segments:
            self.segment.configure_from_segment(
                max(segments, key=lambda s: s.length))

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One access: direct-segment check, then the conventional TLB path."""
        self._accesses += 1
        self._ensure_configured(asid)
        pa = self.segment.translate(asid, va)
        front = 0
        if pa is None:
            # Fallback paging: conventional TLB path.
            page_key = virtual_page_key(asid, va)
            lookup = self.tlbs[core].lookup(page_key)
            if lookup.level == "l2":
                front = self.config.l2_tlb.latency
            elif lookup.level == "miss":
                walk = self.walkers[core].walk(asid, va)
                front = self.config.l2_tlb.latency + walk.cycles
                translation = self.kernel.translate(asid, va)
                self.tlbs[core].fill(TlbEntry(page_key,
                                              translation.pa >> PAGE_SHIFT,
                                              True, translation.permissions))
                pa = translation.pa
            if pa is None:
                assert lookup.entry is not None
                pa = (lookup.entry.pfn << PAGE_SHIFT) | (va & 0xFFF)
        result = self.caches.access(core, physical_block_key(pa), is_write)
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, 0, dram, result.hit_level,
                             translated_pa=pa)


class RmmMmu(MmuBase):
    """Redundant memory mappings: core-side 32-entry range TLB."""

    name = "rmm"

    def __init__(self, kernel: Kernel, config: Optional[SystemConfig] = None,
                 ranges: int = 32) -> None:
        super().__init__(kernel, config)
        cfg = self.config
        self.range_tlb = RangeTlb(kernel.segment_table, entries=ranges,
                                  latency=cfg.l2_tlb.latency)
        self.stats.register(self.range_tlb.stats)
        self.tlbs = [TlbHierarchy(cfg.l1_tlb, cfg.l2_tlb, f"tlb_core{c}")
                     for c in range(cfg.cores)]
        self.walkers = [
            PageWalker(cfg.walker, kernel.pte_path,
                       lambda pa, c=c: self.charge_physical_read(c, pa),
                       stats=StatGroup(f"walker_core{c}"))
            for c in range(cfg.cores)
        ]
        for c in range(cfg.cores):
            self.stats.register(self.tlbs[c].stats)
            self.stats.register(self.walkers[c].stats)
        kernel.on_shootdown(self._shootdown)

    def _shootdown(self, asid: int, page_va: int) -> None:
        key = virtual_page_key(asid, page_va)
        for tlb in self.tlbs:
            tlb.invalidate(key)

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One access: TLB hierarchy with the range TLB backing L2 misses."""
        self._accesses += 1
        page_key = virtual_page_key(asid, va)
        lookup = self.tlbs[core].lookup(page_key)
        front = 0
        if lookup.level == "l1":
            pa = (lookup.entry.pfn << PAGE_SHIFT) | (va & 0xFFF)
        elif lookup.level == "l2":
            front = self.config.l2_tlb.latency
            pa = (lookup.entry.pfn << PAGE_SHIFT) | (va & 0xFFF)
        else:
            # L1+L2 TLB miss: the range TLB (probed in parallel with the
            # L2 TLB) usually saves the walk.
            try:
                range_result = self.range_tlb.lookup(asid, va)
                front = range_result.cycles
                pa = range_result.pa
                translation_perms = 0x3
            except SegmentFault:
                walk = self.walkers[core].walk(asid, va)
                front = self.config.l2_tlb.latency + walk.cycles
                translation = self.kernel.translate(asid, va)
                pa = translation.pa
                translation_perms = translation.permissions
            self.tlbs[core].fill(TlbEntry(page_key, pa >> PAGE_SHIFT, True,
                                          translation_perms))
        result = self.caches.access(core, physical_block_key(pa), is_write)
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, 0, dram, result.hit_level,
                             translated_pa=pa)


class EnigmaMmu(MmuBase):
    """Intermediate-address-space design with page-based delayed TLB."""

    name = "enigma"

    def __init__(self, kernel: Kernel, config: Optional[SystemConfig] = None) -> None:
        super().__init__(kernel, config)
        self.enigma_stats = self.stats.group("enigma")
        self.delayed_tlb = DelayedTlb(self.config.delayed_tlb)
        self.stats.register(self.delayed_tlb.stats)
        self.walker = PageWalker(self.config.walker, kernel.pte_path,
                                 lambda pa: self.charge_physical_read(0, pa),
                                 stats=StatGroup("delayed_walker"))
        self.stats.register(self.walker.stats)
        kernel.on_shootdown(self._shootdown)
        kernel.on_page_flush(self._flush_page)
        # Shared-region intermediate ranges are allocated from a common
        # pool so all mappers of a region agree on one intermediate name.
        self._shared_intermediate: Dict[int, int] = {}  # pbase -> namespace id
        self._next_shared_id = 1

    #: Latency of the first-level (VA→intermediate) segment translation;
    #: a handful of coarse segment registers on the core-to-L1 path.
    FIRST_LEVEL_CYCLES = 1

    def _shootdown(self, asid: int, page_va: int) -> None:
        intermediate_asid, iva = self._intermediate(asid, page_va)
        self.delayed_tlb.shootdown(virtual_page_key(intermediate_asid, iva))

    def _flush_page(self, asid: int, page_va: int, was_shared: bool) -> None:
        intermediate_asid, iva = self._intermediate(asid, page_va)
        base_key = virtual_block_key(intermediate_asid, iva)
        self.caches.flush_blocks(base_key + i for i in range(64))

    def _intermediate(self, asid: int, va: int) -> tuple[int, int]:
        """First-level translation: (ASID, VA) → intermediate name.

        Private ranges map 1:1 under the process's intermediate partition;
        shared regions map through a common partition keyed by the shared
        backing so synonyms collapse to one intermediate name.
        """
        process = self.kernel.process(asid)
        vma = process.find_vma(va)
        if vma is not None and vma.policy == POLICY_SHARED:
            assert vma.shared_pbase is not None
            namespace = self._shared_intermediate.setdefault(
                vma.shared_pbase, self._pick_shared_id())
            return namespace, vma.shared_pbase + (va - vma.vbase)
        return asid, va

    def _pick_shared_id(self) -> int:
        # Intermediate ASID 0 partitions (one per shared region) live in
        # the ASID space above the process range.
        self._next_shared_id += 1
        return 0xF000 + self._next_shared_id

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One access: first-level segment, intermediate-named caches, delayed TLB."""
        self._accesses += 1
        self.enigma_stats.add("accesses")
        intermediate_asid, iva = self._intermediate(asid, va)
        front = self.FIRST_LEVEL_CYCLES
        key = virtual_block_key(intermediate_asid, iva)
        result = self.caches.access(core, key, is_write)
        delayed = 0
        pa = None
        if result.llc_miss:
            page_key = virtual_page_key(intermediate_asid, iva)
            entry = self.delayed_tlb.lookup(page_key)
            delayed = self.delayed_tlb.latency
            if entry is None:
                walk = self.walker.walk(asid, va)
                delayed += walk.cycles
                translation = self.kernel.translate(asid, va)
                entry = TlbEntry(page_key, translation.pa >> PAGE_SHIFT, True,
                                 translation.permissions)
                self.delayed_tlb.fill(entry)
            pa = (entry.pfn << PAGE_SHIFT) | (iva & 0xFFF)
        if pa is None:
            pa = self.kernel.translate(asid, va).pa
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, delayed, dram,
                             result.hit_level, translated_pa=pa)
