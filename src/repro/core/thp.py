"""Transparent-huge-page baseline MMU (extension study).

The standard modern answer to TLB reach is 2 MB pages: one entry covers
512× the memory.  The paper evaluates against a 4 KB baseline (its
workloads' sparse access and fragmentation limit THP in practice); this
extension adds a THP-enabled conventional MMU so the hybrid design can
be compared against the *stronger* baseline:

* a split L1 TLB: 64 entries for 4 KB pages plus 32 entries for 2 MB
  pages (Haswell-like), backed by a unified L2 TLB holding both sizes;
* walks discover the leaf size from the page table and fill the right
  structure;
* requires a THP kernel (``Kernel(transparent_huge_pages=True)``) whose
  eager allocations are 2 MB-aligned; on non-THP kernels it behaves
  exactly like the conventional baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.common.address import (
    PAGE_SHIFT,
    physical_block_key,
    virtual_huge_page_key,
    virtual_page_key,
)
from repro.common.params import SystemConfig, TlbConfig
from repro.common.stats import StatGroup
from repro.core.mmu_base import AccessOutcome, MmuBase
from repro.osmodel.kernel import Kernel
from repro.osmodel.pagetable import HUGE_PAGE_SHIFT
from repro.tlb.base import SetAssociativeTlb, TlbEntry
from repro.tlb.walker import PageWalker

HUGE_OFFSET_MASK = (1 << HUGE_PAGE_SHIFT) - 1


class ThpBaselineMmu(MmuBase):
    """Conventional physically addressed MMU with 2 MB-page support."""

    name = "baseline_thp"

    def __init__(self, kernel: Kernel, config: Optional[SystemConfig] = None,
                 huge_l1_entries: int = 32) -> None:
        super().__init__(kernel, config)
        cfg = self.config
        self.l1_small = [SetAssociativeTlb(cfg.l1_tlb, f"tlb4k_core{c}")
                         for c in range(cfg.cores)]
        self.l1_huge = [SetAssociativeTlb(TlbConfig(huge_l1_entries, 4,
                                                    cfg.l1_tlb.latency),
                                          f"tlb2m_core{c}")
                        for c in range(cfg.cores)]
        self.l2 = [SetAssociativeTlb(cfg.l2_tlb, f"tlbl2_core{c}")
                   for c in range(cfg.cores)]
        self.walkers = [
            PageWalker(cfg.walker, kernel.pte_path,
                       lambda pa, c=c: self.charge_physical_read(c, pa),
                       stats=StatGroup(f"walker_core{c}"))
            for c in range(cfg.cores)
        ]
        for c in range(cfg.cores):
            self.stats.register(self.l1_small[c].stats)
            self.stats.register(self.l1_huge[c].stats)
            self.stats.register(self.l2[c].stats)
            self.stats.register(self.walkers[c].stats)
        kernel.on_shootdown(self._shootdown)

    # ------------------------------------------------------------------ #
    # OS callbacks
    # ------------------------------------------------------------------ #

    def _shootdown(self, asid: int, page_va: int) -> None:
        small = virtual_page_key(asid, page_va)
        huge = virtual_huge_page_key(asid, page_va)
        for c in range(self.config.cores):
            self.l1_small[c].invalidate(small)
            self.l1_huge[c].invalidate(huge)
            self.l2[c].invalidate(small)
            self.l2[c].invalidate(huge)

    # ------------------------------------------------------------------ #
    # The access path
    # ------------------------------------------------------------------ #

    @staticmethod
    def _pa_of(entry: TlbEntry, va: int, huge: bool) -> int:
        if huge:
            return (entry.pfn << PAGE_SHIFT) | (va & HUGE_OFFSET_MASK)
        return (entry.pfn << PAGE_SHIFT) | (va & 0xFFF)

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One memory access through split 4 KB / 2 MB TLBs and physical caches."""
        self._accesses += 1
        small_key = virtual_page_key(asid, va)
        huge_key = virtual_huge_page_key(asid, va)
        front = 0
        pa = None

        # Split L1: both structures probe in parallel with the L1 cache.
        entry = self.l1_small[core].lookup(small_key)
        if entry is not None:
            pa = self._pa_of(entry, va, huge=False)
        else:
            entry = self.l1_huge[core].lookup(huge_key)
            if entry is not None:
                pa = self._pa_of(entry, va, huge=True)

        if pa is None:
            # Unified L2: one probe covers both sizes (real designs hash
            # both indices in one array; charge a single L2 latency).
            front = self.config.l2_tlb.latency
            entry = self.l2[core].lookup(small_key)
            if entry is not None:
                pa = self._pa_of(entry, va, huge=False)
                self.l1_small[core].fill(entry)
            else:
                entry = self.l2[core].lookup(huge_key)
                if entry is not None:
                    pa = self._pa_of(entry, va, huge=True)
                    self.l1_huge[core].fill(entry)

        if pa is None:
            walk = self.walkers[core].walk(asid, va)
            front += walk.cycles
            self.kernel.translate(asid, va)  # resolve faults
            leaf = self.kernel.process(asid).page_table.entry(va)
            if leaf.is_huge:
                entry = TlbEntry(huge_key, leaf.pfn, True, leaf.permissions)
                self.l1_huge[core].fill(entry)
                pa = self._pa_of(entry, va, huge=True)
            else:
                entry = TlbEntry(small_key, leaf.pfn, True, leaf.permissions)
                self.l1_small[core].fill(entry)
                pa = self._pa_of(entry, va, huge=False)
            self.l2[core].fill(entry)

        result = self.caches.access(core, physical_block_key(pa), is_write)
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(front, result.latency, 0, dram, result.hit_level,
                             translated_pa=pa)

    def tlb_misses(self) -> int:
        """Full-hierarchy misses (walks)."""
        return sum(w.stats["walks"] for w in self.walkers)
