"""Common interface for the MMU front-ends compared in the paper.

Every MMU flavour (physical baseline, hybrid virtual caching with delayed
TLB or many-segment translation, ideal TLB) exposes one entry point:

    outcome = mmu.access(core, asid, va, is_write)

and returns a :class:`AccessOutcome` that decomposes the access into the
phases the paper's timing argument is about:

* ``front_cycles``    — translation cycles *blocking* the L1 access
  (the baseline's TLB-miss walks live here; the hybrid's non-synonym path
  charges zero here);
* ``cache_cycles``    — hierarchy probe latency down to the hit level;
* ``delayed_cycles``  — translation performed *after* an LLC miss
  (delayed TLB / many-segment walk; serial with the LLC per Section IV-C's
  energy-conscious design choice);
* ``dram_cycles``     — main-memory access time on an LLC miss.

The cycle model in ``repro.timing`` combines these with per-workload MLP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.params import SystemConfig
from repro.common.stats import StatRegistry
from repro.obs.histogram import Histogram
from repro.obs.tracer import NULL_TRACER
from repro.osmodel.kernel import Kernel
from repro.timing.dram import DramModel


@dataclass(slots=True)
class AccessOutcome:
    """Phase-by-phase cost of one memory access."""

    front_cycles: int
    cache_cycles: int
    delayed_cycles: int
    dram_cycles: int
    hit_level: str
    translated_pa: Optional[int] = None

    @property
    def total_cycles(self) -> int:
        return (self.front_cycles + self.cache_cycles
                + self.delayed_cycles + self.dram_cycles)

    @property
    def llc_miss(self) -> bool:
        return self.hit_level == "memory"


class MmuBase:
    """Shared datapath plumbing: caches, DRAM, kernel, stat registry."""

    name = "base"

    def __init__(self, kernel: Kernel, config: SystemConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config or kernel.config
        self.stats = StatRegistry()
        self.caches = CacheHierarchy(self.config)
        self.dram = DramModel(self.config.dram)
        self.stats.register(self.caches.stats)
        self.stats.register(self.dram.stats)
        self._accesses = 0
        self.tracer = NULL_TRACER
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Observability plumbing
    # ------------------------------------------------------------------ #

    def attach_tracer(self, tracer) -> None:
        """Install a tracer on this MMU and its cache hierarchy.

        Pass :data:`repro.obs.tracer.NULL_TRACER` to detach; the null
        tracer keeps every probe site to one attribute check.
        """
        self.tracer = tracer
        self.caches.tracer = tracer

    def register_histogram(self, histogram: Histogram) -> Histogram:
        """Adopt a structure-owned histogram into this MMU's result set."""
        self._histograms[histogram.name] = histogram
        return histogram

    def histograms(self) -> dict:
        """Every registered histogram, keyed by name."""
        return dict(self._histograms)

    def histogram_snapshots(self) -> dict:
        """JSON-ready snapshots of every non-empty registered histogram."""
        return {name: h.snapshot() for name, h in self.histograms().items()
                if h.count}

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #

    def charge_physical_read(self, core: int, pa: int) -> int:
        """Route a hardware metadata read (PTE, tree node) through the
        cache hierarchy under its physical key; returns cycles."""
        from repro.common.address import physical_block_key

        result = self.caches.access(core, physical_block_key(pa), is_write=False)
        cycles = result.latency
        if result.llc_miss:
            cycles += self.dram.access(pa, is_write=False)
        return cycles

    def memory_fill(self, pa: int, is_write: bool) -> int:
        """DRAM cycles for an LLC-missing data access."""
        return self.dram.access(pa, is_write)

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        raise NotImplementedError

    @property
    def accesses(self) -> int:
        return self._accesses

    def snapshot(self) -> dict:
        """All component counters (reporting / energy accounting)."""
        return self.stats.snapshot()
