"""Ideal-TLB MMU: the paper's upper-bound configuration.

"The ideal TLB depicts the potential performance of a system without TLB
misses" (Section VI-B): translation is free and never misses; caches are
physically addressed as in the baseline.  Every other cost (cache misses,
DRAM) is identical, so the gap between baseline and ideal is exactly the
translation overhead the proposed schemes try to recover.
"""

from __future__ import annotations

from repro.common.address import physical_block_key
from repro.core.mmu_base import AccessOutcome, MmuBase


class IdealMmu(MmuBase):
    """Zero-cost, never-missing translation."""

    name = "ideal"

    def access(self, core: int, asid: int, va: int, is_write: bool) -> AccessOutcome:
        """One memory access with free, never-missing translation."""
        self._accesses += 1
        pa = self.kernel.translate(asid, va).pa
        result = self.caches.access(core, physical_block_key(pa), is_write)
        dram = self.memory_fill(pa, is_write) if result.llc_miss else 0
        return AccessOutcome(0, result.latency, 0, dram, result.hit_level,
                             translated_pa=pa)
