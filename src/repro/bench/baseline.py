"""Benchmark baseline documents: the ``repro.bench/v2`` schema.

A baseline is the committed record one PR leaves for the next: what the
model produced (per-benchmark *metrics* — IPC, MPKI, miss rates) and
what it cost to produce (per-benchmark wall-clock seconds).  Version 2
separates the two concerns v1 conflated:

* **identity** — ``schema``, the ``benchmarks`` list (name, seconds,
  ``metrics``, job parameters and fingerprints), ``total_seconds``, and
  any ``artifact_lines``;
* **provenance** — everything volatile (``generated_unix``, ``host``,
  ``python``, ``git_sha``) lives under one ``meta`` key, which the
  regression gate ignores entirely, so committed baselines diff cleanly
  across machines and re-records.

v1 documents (flat volatile fields, seconds-only benchmarks) are
migrated on load, and :func:`migrate_file` rewrites one in place.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

BENCH_SCHEMA = "repro.bench/v2"
BENCH_SCHEMA_V1 = "repro.bench/v1"

#: Environment fields that never participate in a regression check.
VOLATILE_FIELDS = ("generated_unix", "host", "python", "git_sha")


def git_sha(root: Union[str, Path, None] = None) -> Optional[str]:
    """The repository HEAD commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def collect_meta() -> Dict[str, Any]:
    """The volatile provenance block — recorded, never compared."""
    return {
        "generated_unix": time.time(),
        "host": platform.node(),
        "python": platform.python_version(),
        "git_sha": git_sha(),
    }


def make_baseline(entries: Iterable[Dict[str, Any]],
                  artifact_lines: Iterable[str] = ()) -> Dict[str, Any]:
    """Assemble a ``repro.bench/v2`` document from benchmark entries."""
    benchmarks: List[Dict[str, Any]] = []
    for entry in entries:
        entry = dict(entry)
        entry.setdefault("metrics", {})
        benchmarks.append(entry)
    return {
        "schema": BENCH_SCHEMA,
        "meta": collect_meta(),
        "benchmarks": benchmarks,
        "total_seconds": sum(e.get("seconds", 0.0) for e in benchmarks),
        "artifact_lines": list(artifact_lines),
    }


def migrate_v1(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Rewrite a v1 document in the v2 layout.

    The flat volatile fields move under ``meta`` and every benchmark
    entry gains an (empty) ``metrics`` map; seconds and artifact lines
    carry over untouched.
    """
    migrated: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "meta": {field: doc.get(field) for field in VOLATILE_FIELDS},
        "benchmarks": [dict(entry, metrics=dict(entry.get("metrics", {})))
                       for entry in doc.get("benchmarks", [])],
        "total_seconds": doc.get("total_seconds", 0.0),
        "artifact_lines": list(doc.get("artifact_lines", [])),
    }
    return migrated


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a baseline document, migrating v1 layouts on the way in."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a baseline document")
    schema = doc.get("schema")
    if schema == BENCH_SCHEMA_V1:
        return migrate_v1(doc)
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected {BENCH_SCHEMA} (or {BENCH_SCHEMA_V1}), "
            f"got {schema!r}")
    doc.setdefault("meta", {})
    doc.setdefault("benchmarks", [])
    return doc


def save_baseline(doc: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a baseline document atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    os.replace(tmp, path)
    return path


def migrate_file(path: Union[str, Path]) -> bool:
    """Migrate one baseline file to v2 in place.

    Returns ``True`` when the file was rewritten, ``False`` when it was
    already v2.
    """
    raw = json.loads(Path(path).read_text())
    if isinstance(raw, dict) and raw.get("schema") == BENCH_SCHEMA:
        return False
    save_baseline(load_baseline(path), path)
    return True
