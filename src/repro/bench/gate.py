"""The regression gate: compare two baseline documents, report, verdict.

Every metric has a *direction* (IPC up is good, MPKI up is bad); a
metric has **regressed** when it moved in the bad direction by more than
the threshold percentage.  Model metrics are deterministic, so a fresh
re-record against an unchanged tree compares exactly equal; wall-clock
``seconds`` are noisy and therefore reported but not gated unless a
separate time threshold is given.

The ``meta`` block (host, Python, timestamps, git SHA) never enters the
comparison — it identifies a record, it does not describe the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Metric direction: +1 = higher is better, -1 = lower is better.
METRIC_DIRECTIONS: Dict[str, int] = {
    "ipc": +1,
    "tlb_bypass_rate": +1,
    "cycles": -1,
    "llc_miss_rate": -1,
    "delayed_tlb_mpki": -1,
    "seconds": -1,
}


@dataclass
class MetricDelta:
    """One (benchmark, metric) comparison."""

    benchmark: str
    metric: str
    baseline: float
    current: float
    change_pct: float          # signed; + means the value increased
    regressed: bool            # moved the bad way past the threshold
    improved: bool             # moved the good way past the threshold
    gated: bool                # participates in the exit-code verdict
    #: Recorded values of this metric across prior ingested runs
    #: (oldest → newest), filled by :func:`attach_history` when a
    #: cross-run store is in play — the gate's one-baseline view,
    #: widened to a trajectory.
    history: Optional[List[float]] = None

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSED" if self.gated else "regressed (ungated)"
        if self.improved:
            return "improved"
        return "ok"

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "benchmark": self.benchmark, "metric": self.metric,
            "baseline": self.baseline, "current": self.current,
            "change_pct": self.change_pct, "regressed": self.regressed,
            "improved": self.improved, "gated": self.gated,
            "status": self.status,
        }
        if self.history is not None:
            doc["history"] = list(self.history)
        return doc


@dataclass
class GateReport:
    """The full outcome of one baseline-vs-current comparison."""

    threshold_pct: float
    seconds_threshold_pct: Optional[float]
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Baseline benchmarks with no counterpart in the current document.
    missing: List[str] = field(default_factory=list)
    #: Current benchmarks the baseline has never seen.
    added: List[str] = field(default_factory=list)
    baseline_sha: Optional[str] = None
    current_sha: Optional[str] = None

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed and d.gated]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.bench.report/v1",
            "ok": self.ok,
            "threshold_pct": self.threshold_pct,
            "seconds_threshold_pct": self.seconds_threshold_pct,
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "regressions": len(self.regressions),
            "deltas": [d.to_dict() for d in self.deltas],
            "missing": list(self.missing),
            "added": list(self.added),
        }

    def to_html(self) -> str:
        """This report as a standalone self-contained HTML page (the
        ``repro report bench`` rendering — inline CSS/SVG, no external
        references)."""
        from repro.report import build_bench_report_page

        return build_bench_report_page(self.to_json_dict())

    def to_markdown(self) -> str:
        verdict = ("PASS" if self.ok
                   else f"FAIL — {len(self.regressions)} regression(s)")
        lines = [
            "# Benchmark regression report",
            "",
            f"**Verdict: {verdict}** "
            f"(model-metric threshold {self.threshold_pct:g} %"
            + (f", seconds threshold {self.seconds_threshold_pct:g} %"
               if self.seconds_threshold_pct is not None
               else ", seconds reported but not gated") + ")",
            "",
        ]
        if self.baseline_sha or self.current_sha:
            lines += [f"baseline `{self.baseline_sha or 'unknown'}` → "
                      f"current `{self.current_sha or 'unknown'}`", ""]
        with_history = any(d.history for d in self.deltas)
        header = "| benchmark | metric | baseline | current | Δ % | status |"
        rule = "|---|---|---|---|---|---|"
        if with_history:
            header += " history |"
            rule += "---|"
        lines += [header, rule]
        for d in sorted(self.deltas,
                        key=lambda d: (not d.regressed, d.benchmark, d.metric)):
            change = ("inf" if math.isinf(d.change_pct)
                      else f"{d.change_pct:+.2f}")
            row = (f"| {d.benchmark} | {d.metric} | {d.baseline:.6g} "
                   f"| {d.current:.6g} | {change} | {d.status} |")
            if with_history:
                row += (" " + _render_history(d.history) + " |"
                        if d.history else " — |")
            lines.append(row)
        blank = " — |" if with_history else ""
        for name in self.missing:
            lines.append(
                f"| {name} | — | — | — | — | missing from current |" + blank)
        for name in self.added:
            lines.append(
                f"| {name} | — | — | — | — | new (no baseline) |" + blank)
        return "\n".join(lines)


def _render_history(values: List[float]) -> str:
    """Spark bar + oldest→newest values, the markdown history cell.

    Uses the shared :func:`repro.sim.report.spark_line`, so single-point
    and flat histories render mid-height (a level trend), matching
    ``repro db trend``.
    """
    from repro.sim.report import spark_line

    return f"{spark_line(values)} " + "→".join(f"{v:.4g}" for v in values)


def attach_history(report: GateReport, current: Dict[str, Any],
                   store: Any, limit: int = 5) -> None:
    """Annotate a report's deltas with cross-run history.

    ``store`` is duck-typed on ``metric_history(workload, mmu, metric,
    limit)`` (a :class:`repro.obs.store.MetricsStore`); benchmarks are
    matched to store rows through the workload/MMU the ``current``
    document records per entry.  Call this *before* ingesting the
    current document, so the history shows only prior runs.
    """
    index = {entry.get("name"): entry
             for entry in current.get("benchmarks", [])}
    for delta in report.deltas:
        entry = index.get(delta.benchmark)
        if entry is None or "workload" not in entry:
            continue
        values = store.metric_history(entry["workload"],
                                      entry.get("mmu", "-"),
                                      delta.metric, limit=limit)
        if values:
            delta.history = values


def _entry_index(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {entry.get("name", f"#{i}"): entry
            for i, entry in enumerate(doc.get("benchmarks", []))}


def _compare_one(name: str, metric: str, base: float, cur: float,
                 threshold: float, gated: bool) -> MetricDelta:
    if base == 0:
        change = 0.0 if cur == 0 else math.copysign(math.inf, cur)
    else:
        change = 100.0 * (cur - base) / abs(base)
    direction = METRIC_DIRECTIONS.get(metric, -1)
    bad = change * direction < 0          # moved against the direction
    beyond = abs(change) > threshold
    return MetricDelta(benchmark=name, metric=metric, baseline=base,
                       current=cur, change_pct=change,
                       regressed=bad and beyond,
                       improved=(not bad) and beyond and change != 0.0,
                       gated=gated)


def compare_baselines(baseline: Dict[str, Any], current: Dict[str, Any],
                      threshold_pct: float = 10.0,
                      seconds_threshold_pct: Optional[float] = None
                      ) -> GateReport:
    """Compare two ``repro.bench/v2`` documents, metric by metric.

    ``meta`` is ignored on both sides.  Benchmarks match by name; a
    baseline benchmark absent from ``current`` is listed as missing (and
    fails the gate — a silently dropped benchmark is how trajectories
    rot), new current-only benchmarks are informational.
    """
    report = GateReport(
        threshold_pct=threshold_pct,
        seconds_threshold_pct=seconds_threshold_pct,
        baseline_sha=(baseline.get("meta") or {}).get("git_sha"),
        current_sha=(current.get("meta") or {}).get("git_sha"),
    )
    base_entries = _entry_index(baseline)
    cur_entries = _entry_index(current)
    report.added = sorted(set(cur_entries) - set(base_entries))
    for name, base_entry in base_entries.items():
        cur_entry = cur_entries.get(name)
        if cur_entry is None:
            report.missing.append(name)
            continue
        base_metrics = base_entry.get("metrics", {})
        cur_metrics = cur_entry.get("metrics", {})
        for metric in base_metrics:
            if metric not in cur_metrics:
                continue
            report.deltas.append(_compare_one(
                name, metric, float(base_metrics[metric]),
                float(cur_metrics[metric]), threshold_pct, gated=True))
        if "seconds" in base_entry and "seconds" in cur_entry:
            report.deltas.append(_compare_one(
                name, "seconds", float(base_entry["seconds"]),
                float(cur_entry["seconds"]),
                seconds_threshold_pct
                if seconds_threshold_pct is not None else threshold_pct,
                gated=seconds_threshold_pct is not None))
    if report.missing:
        # A vanished benchmark is a gated failure: register a sentinel
        # delta so `ok` reflects it without special-casing consumers.
        for name in report.missing:
            report.deltas.append(MetricDelta(
                benchmark=name, metric="(present)", baseline=1.0,
                current=0.0, change_pct=-100.0, regressed=True,
                improved=False, gated=True))
    return report
