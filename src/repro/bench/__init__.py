"""Benchmark baselines and the regression gate.

The write half of the repo's observability loop records what a revision
produced; this package closes the loop by reading it back and judging
the next revision against it:

* :mod:`repro.bench.baseline` — the ``repro.bench/v2`` document layout
  (volatile provenance under ``meta``, per-benchmark model metrics and
  seconds, git SHA and config fingerprints), v1 migration, atomic save;
* :mod:`repro.bench.suite`    — the canonical model-metric suite
  ``repro bench record`` runs, self-describing so ``check`` can re-run
  exactly what was recorded;
* :mod:`repro.bench.gate`     — direction-aware metric comparison with
  a threshold, a markdown/JSON report, and a pass/fail verdict
  (``repro bench check`` exits non-zero on regression).

CLI: ``repro bench record | check | migrate`` — see
``docs/observability.md`` ("Regression gate").
"""

from repro.bench.baseline import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    collect_meta,
    git_sha,
    load_baseline,
    make_baseline,
    migrate_file,
    migrate_v1,
    save_baseline,
)
from repro.bench.gate import (
    METRIC_DIRECTIONS,
    GateReport,
    MetricDelta,
    attach_history,
    compare_baselines,
)
from repro.bench.suite import (
    DEFAULT_ACCESSES,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    SUITE_POINTS,
    jobs_from_baseline,
    metrics_from_result,
    run_suite,
    suite_jobs,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V1",
    "collect_meta",
    "git_sha",
    "load_baseline",
    "make_baseline",
    "migrate_file",
    "migrate_v1",
    "save_baseline",
    "METRIC_DIRECTIONS",
    "GateReport",
    "MetricDelta",
    "attach_history",
    "compare_baselines",
    "DEFAULT_ACCESSES",
    "DEFAULT_SEED",
    "DEFAULT_WARMUP",
    "SUITE_POINTS",
    "jobs_from_baseline",
    "metrics_from_result",
    "run_suite",
    "suite_jobs",
]
