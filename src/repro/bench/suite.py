"""The canonical model-metric suite behind ``repro bench record``.

A handful of fast (workload, MMU) points spanning the paper's main
comparison — conventional baseline, delayed page-granularity TLB, and
many-segment delayed translation, on a streaming and a pointer-chasing
workload.  Each point contributes *model* metrics (IPC, LLC miss rate,
delayed-TLB MPKI, TLB bypass rate) pulled from its result document plus
its wall-clock seconds, so the gate sees regressions in what the model
computes and in what the harness costs.

Every entry records the exact job parameters and fingerprint that
produced it, which makes a baseline self-describing: ``repro bench
check`` rebuilds the same jobs from the baseline alone — no drift
between what was recorded and what is re-measured.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.cache import ResultCache
from repro.exec.job import Job
from repro.exec.plan import ExperimentPlan, ProgressCallback

#: ``(name, workload, mmu)`` points of the canonical suite.
SUITE_POINTS: Tuple[Tuple[str, str, str], ...] = (
    ("stream/baseline", "stream", "baseline"),
    ("stream/hybrid_tlb", "stream", "hybrid_tlb"),
    ("stream/hybrid_segments", "stream", "hybrid_segments"),
    ("gups/baseline", "gups", "baseline"),
    ("gups/hybrid_segments", "gups", "hybrid_segments"),
)

DEFAULT_ACCESSES = 6_000
DEFAULT_WARMUP = 2_000
DEFAULT_SEED = 42


def metrics_from_result(result) -> Dict[str, float]:
    """The gated model metrics of one ``SimulationResult``."""
    metrics: Dict[str, float] = {
        "ipc": result.ipc,
        "cycles": float(result.cycles),
        "llc_miss_rate": result.llc_miss_rate(),
    }
    if result.group("delayed_tlb"):
        metrics["delayed_tlb_mpki"] = result.tlb_mpki()
    hybrid = result.group("hybrid")
    if hybrid.get("accesses"):
        metrics["tlb_bypass_rate"] = (
            hybrid.get("tlb_bypasses", 0) / hybrid["accesses"])
    return metrics


def suite_jobs(points: Sequence[Tuple[str, str, str]] = SUITE_POINTS,
               accesses: int = DEFAULT_ACCESSES,
               warmup: int = DEFAULT_WARMUP,
               seed: int = DEFAULT_SEED) -> List[Tuple[str, Job]]:
    """``(name, Job)`` pairs for the canonical suite."""
    return [(name, Job(workload=workload, mmu=mmu, accesses=accesses,
                       warmup=warmup, seed=seed))
            for name, workload, mmu in points]


def jobs_from_baseline(doc: Dict[str, Any]) -> List[Tuple[str, Job]]:
    """Rebuild the recorded jobs from a baseline's benchmark entries.

    Entries without job parameters (e.g. the pytest-session timings in
    ``benchmarks/results/latest.json``) are skipped — they carry only
    seconds and can be compared against an explicit ``--current``
    document, not re-run from here.
    """
    jobs: List[Tuple[str, Job]] = []
    for entry in doc.get("benchmarks", []):
        if not all(key in entry for key in
                   ("workload", "mmu", "accesses", "warmup", "seed")):
            continue
        jobs.append((entry["name"],
                     Job(workload=entry["workload"], mmu=entry["mmu"],
                         accesses=entry["accesses"], warmup=entry["warmup"],
                         seed=entry["seed"])))
    return jobs


def run_suite(jobs: Sequence[Tuple[str, Job]],
              executor=None,
              cache: Optional[ResultCache] = None,
              progress: Optional[ProgressCallback] = None
              ) -> List[Dict[str, Any]]:
    """Execute the suite and return v2 benchmark entries.

    Seconds come from each result's manifest (per-run wall-clock);
    metrics from :func:`metrics_from_result`.  A failed point raises —
    a baseline must never silently record a partial suite.
    """
    plan = ExperimentPlan(job for _, job in jobs)
    outcomes = plan.run(executor=executor, cache=cache, progress=progress)
    entries: List[Dict[str, Any]] = []
    for name, job in jobs:
        result = outcomes.result(job)
        entries.append({
            "name": name,
            "workload": job.workload_name,
            "mmu": job.mmu,
            "accesses": job.accesses,
            "warmup": job.warmup,
            "seed": job.seed,
            "fingerprint": job.fingerprint(),
            "config_hash": job.identity()["config_hash"],
            "seconds": (result.manifest.duration_s if result.manifest
                        else 0.0),
            "metrics": metrics_from_result(result),
        })
    return entries
