"""Tests for virtualization: hypervisor, 2-D walks, virtualized MMUs."""

import pytest

from repro.common.address import PAGE_SIZE, page_base
from repro.common.params import SystemConfig
from repro.osmodel.pagetable import PERM_READ, PageFault
from repro.sim import Simulator, lay_out
from repro.virt import (
    Hypervisor,
    TwoDWalker,
    VirtConventionalMmu,
    VirtHybridMmu,
)

MB = 1024 * 1024


@pytest.fixture()
def hv():
    return Hypervisor(machine_bytes=8 * 1024 ** 3)


@pytest.fixture()
def vm(hv):
    return hv.create_vm("vm0")


def guest_with_memory(vm, size=4 * MB, policy="eager"):
    guest = vm.guest_kernel
    p = guest.create_process("app")
    vma = guest.mmap(p, size, policy=policy)
    return p, vma


class TestVirtualMachine:
    def test_host_backing_covers_guest_space(self, vm):
        # First and last guest-physical pages translate.
        last = vm.guest_kernel.config.physical_memory_bytes - PAGE_SIZE
        assert vm.host_translate(0) is not None
        assert vm.host_translate(last) is not None

    def test_host_translate_linear_within_segment(self, vm):
        seg = vm.host_segments[0]
        assert vm.host_translate(100) == seg.ma_base + 100
        assert vm.host_translate(seg.length - 1) == seg.ma_base + seg.length - 1

    def test_host_segment_fault_outside(self, vm):
        with pytest.raises(PageFault):
            vm.host_segment_for(1 << 45)

    def test_translate_2d_composes(self, vm):
        p, vma = guest_with_memory(vm)
        gva = vma.vbase + 0x1234
        gpa = vm.guest_kernel.translate(p.asid, gva).pa
        ma, _perms, _shared = vm.translate_2d(p.asid, gva)
        assert ma == vm.host_translate(gpa)

    def test_host_walk_path_four_levels(self, vm):
        assert len(vm.host_walk_path(0x1000)) == 4

    def test_vmid_extended_asids_unique(self, hv):
        vm1, vm2 = hv.create_vm("a"), hv.create_vm("b")
        assert hv.global_asid(vm1, 1) != hv.global_asid(vm2, 1)


class TestContentSharing:
    def test_share_folds_machine_frames(self, hv, vm):
        p, vma = guest_with_memory(vm)
        gva_a, gva_b = vma.vbase, vma.vbase + 4 * PAGE_SIZE
        gpa_a = vm.guest_kernel.translate(p.asid, gva_a).pa
        gpa_b = vm.guest_kernel.translate(p.asid, gva_b).pa
        hv.share_content_pages([(vm, gpa_a), (vm, gpa_b)])
        assert page_base(vm.host_translate(gpa_a)) == \
            page_base(vm.host_translate(gpa_b))
        # Permissions downgraded to r/o in the host table.
        assert vm.host_page_table.entry(page_base(gpa_b)).permissions == PERM_READ

    def test_synonym_naming_updates_host_filter(self, hv, vm):
        p, vma = guest_with_memory(vm)
        gva_a, gva_b = vma.vbase, vma.vbase + 4 * PAGE_SIZE
        gpa_a = vm.guest_kernel.translate(p.asid, gva_a).pa
        gpa_b = vm.guest_kernel.translate(p.asid, gva_b).pa
        vm.record_gva(p.asid, gva_a, gpa_a)
        vm.record_gva(p.asid, gva_b, gpa_b)
        hv.share_content_pages([(vm, gpa_a), (vm, gpa_b)],
                               readonly_virtual=False)
        assert vm.host_filter.is_synonym_candidate(gva_a)
        assert vm.host_filter.is_synonym_candidate(gva_b)

    def test_readonly_virtual_skips_filter(self, hv, vm):
        p, vma = guest_with_memory(vm)
        gva = vma.vbase
        gpa = vm.guest_kernel.translate(p.asid, gva).pa
        vm.record_gva(p.asid, gva, gpa)
        hv.share_content_pages([(vm, gpa)], readonly_virtual=True)
        assert not vm.host_filter.is_synonym_candidate(gva)

    def test_cow_break(self, hv, vm):
        p, vma = guest_with_memory(vm)
        gpa = vm.guest_kernel.translate(p.asid, vma.vbase).pa
        shared_ma = hv.share_content_pages([(vm, gpa)])
        new_ma = hv.unshare_on_write(vm, gpa)
        assert page_base(new_ma) != page_base(shared_ma)
        assert page_base(vm.host_translate(gpa)) == page_base(new_ma)


class TestTwoDWalker:
    def test_worst_case_bounded_by_24_reads(self, vm):
        p, vma = guest_with_memory(vm)
        walker = TwoDWalker(vm, SystemConfig().walker, charge=lambda ma: 1)
        result = walker.walk(p.asid, vma.vbase)
        assert 1 <= result.memory_reads <= 24

    def test_caches_shrink_second_walk(self, vm):
        p, vma = guest_with_memory(vm)
        walker = TwoDWalker(vm, SystemConfig().walker, charge=lambda ma: 1)
        cold = walker.walk(p.asid, vma.vbase)
        warm = walker.walk(p.asid, vma.vbase + PAGE_SIZE)  # same 2 MB region
        assert warm.memory_reads < cold.memory_reads

    def test_walk_result_matches_2d_translation(self, vm):
        p, vma = guest_with_memory(vm)
        walker = TwoDWalker(vm, SystemConfig().walker, charge=lambda ma: 1)
        gva = vma.vbase + 0x777
        result = walker.walk(p.asid, gva)
        assert result.ma == vm.translate_2d(p.asid, gva)[0]


class TestVirtMmus:
    def test_translation_agreement(self, hv):
        mas = {}
        for kind in ("baseline", "hybrid_tlb", "hybrid_seg"):
            vm = hv.create_vm(f"vm-{kind}")
            p, vma = guest_with_memory(vm, size=2 * MB)
            if kind == "baseline":
                mmu = VirtConventionalMmu(hv, vm)
            else:
                mmu = VirtHybridMmu(hv, vm,
                                    delayed="tlb" if kind == "hybrid_tlb"
                                    else "segments")
            seg = vma.segments[0]
            host = vm.host_segments[0]
            mas[kind] = [
                mmu.access(0, p.asid, vma.vbase + off, False).translated_pa
                - host.ma_base - seg.pbase
                for off in (0, 4096, 65536, 2 * MB - 64)
            ]
        assert mas["baseline"] == mas["hybrid_tlb"] == mas["hybrid_seg"]

    def test_hybrid_bypasses_front_translation(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest_with_memory(vm)
        mmu = VirtHybridMmu(hv, vm, delayed="segments")
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles == 0
        assert out.delayed_cycles > 0

    def test_baseline_pays_nested_walk(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest_with_memory(vm)
        mmu = VirtConventionalMmu(hv, vm)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles > 0

    def test_hybrid_outperforms_baseline_on_tlb_hostile(self, hv):
        results = {}
        for kind in ("baseline", "hybrid"):
            vm = hv.create_vm(f"vm-{kind}")
            w = lay_out("mcf", vm.guest_kernel)
            mmu = (VirtConventionalMmu(hv, vm) if kind == "baseline"
                   else VirtHybridMmu(hv, vm, delayed="segments"))
            results[kind] = Simulator(mmu).run(w, accesses=4000, warmup=1000)
        assert results["hybrid"].ipc > results["baseline"].ipc

    def test_guest_synonyms_detected(self, hv):
        vm = hv.create_vm("vm")
        guest = vm.guest_kernel
        a = guest.create_process("a")
        b = guest.create_process("b")
        guest.mmap(a, MB, policy="eager")
        guest.mmap(b, MB, policy="eager")
        vmas = guest.mmap_shared([a, b], 16 * PAGE_SIZE)
        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        out_a = mmu.access(0, a.asid, vmas[a.asid].vbase, True)
        out_b = mmu.access(0, b.asid, vmas[b.asid].vbase, False)
        assert out_a.translated_pa == out_b.translated_pa
        assert mmu.hybrid_stats["true_synonym_accesses"] == 2
