"""Tests for Bloom filters, the paper's hashes, and the synonym filter.

The load-bearing property throughout: **no false negatives** — every page
the OS marks shared must be reported as a synonym candidate, or the
hybrid design is incorrect (a synonym would be cached under ASID+VA).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import PAGE_SIZE, VA_MASK, page_base
from repro.common.params import SynonymFilterConfig
from repro.filters import (
    BloomFilter,
    SynonymFilter,
    VirtualizedSynonymFilter,
    make_hash_pair,
    partition_hash,
    xor_fold,
)

vas = st.integers(min_value=0, max_value=VA_MASK)


class TestXorFold:
    def test_small_value_unchanged(self):
        assert xor_fold(0b10110) == 0b10110

    def test_fold_range(self):
        for v in (0, 1, 0xFFFF_FFFF, 123456789):
            assert 0 <= xor_fold(v) < 32

    def test_fold_is_xor_of_chunks(self):
        v = (0b00111 << 10) | (0b01010 << 5) | 0b00001
        assert xor_fold(v) == 0b00111 ^ 0b01010 ^ 0b00001

    @given(st.integers(min_value=0, max_value=2 ** 60))
    def test_fold_bounded(self, v):
        assert 0 <= xor_fold(v) < 32


class TestPartitionHash:
    def test_index_is_10_bits(self):
        for trimmed in (0, 1, 0xFFFF, 0xABCDEF):
            assert 0 <= partition_hash(trimmed, 24, 1, 2) < 1024

    def test_low_bits_affect_low_fold(self):
        a = partition_hash(0b0001, 24, 1, 2)
        b = partition_hash(0b0010, 24, 1, 2)
        assert a != b

    def test_split_ratios_differ(self):
        # The two hash functions must actually hash differently.
        trimmed = 0b1010101010101010101010
        assert (partition_hash(trimmed, 22, 1, 2)
                != partition_hash(trimmed, 22, 1, 3)) or True  # may collide
        # ...but over many values they must not be identical everywhere:
        diffs = sum(
            partition_hash(v, 22, 1, 2) != partition_hash(v, 22, 1, 3)
            for v in range(1, 2000)
        )
        assert diffs > 0


class TestMakeHashPair:
    def test_pair_covers_granularity(self):
        h_even, h_skew = make_hash_pair(15)
        va = 0x7F12_3456_7000
        # Addresses in the same 32 KB region hash identically.
        assert h_even(va) == h_even(va + 0x7FFF - (va & 0x7FFF))
        assert h_skew(va) == h_skew(va | 0x7000)

    def test_distinct_regions_usually_distinct(self):
        h_even, _ = make_hash_pair(15)
        indexes = {h_even(i << 15) for i in range(200)}
        assert len(indexes) > 20  # far from degenerate


class TestBloomFilter:
    def _filter(self, bits=1024):
        return BloomFilter(bits, make_hash_pair(15))

    def test_empty_filter_rejects(self):
        f = self._filter()
        assert not f.query(0x1234_5000)

    def test_no_false_negatives_basic(self):
        f = self._filter()
        keys = [0x1000_0000 + i * 0x8000 for i in range(50)]
        f.insert_all(keys)
        assert all(f.query(k) for k in keys)

    @settings(max_examples=50)
    @given(st.lists(vas, min_size=1, max_size=100))
    def test_no_false_negatives_property(self, keys):
        f = self._filter()
        f.insert_all(keys)
        assert all(f.query(k) for k in keys)

    def test_clear(self):
        f = self._filter()
        f.insert(0x8000)
        f.clear()
        assert not f.query(0x8000)
        assert f.popcount() == 0
        assert f.inserted == 0

    def test_popcount_and_fill_ratio(self):
        f = self._filter()
        assert f.fill_ratio() == 0.0
        f.insert(0x1_0000)
        assert 1 <= f.popcount() <= 2
        assert f.fill_ratio() == f.popcount() / 1024

    def test_union(self):
        a, b = self._filter(), self._filter()
        a.insert(0x10_0000)
        b.insert(0x20_0000)
        a.union_update(b)
        assert a.query(0x10_0000) and a.query(0x20_0000)

    def test_union_size_mismatch(self):
        a = self._filter(1024)
        b = BloomFilter(512, make_hash_pair(15))
        with pytest.raises(ValueError):
            a.union_update(b)

    def test_dump_load_roundtrip(self):
        a, b = self._filter(), self._filter()
        a.insert(0x30_0000)
        b.load_bits(a.dump_bits())
        assert b.query(0x30_0000)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BloomFilter(1000, make_hash_pair(15))

    def test_rejects_no_hashes(self):
        with pytest.raises(ValueError):
            BloomFilter(1024, [])


class TestSynonymFilter:
    def test_unmarked_address_not_candidate_in_fresh_filter(self):
        f = SynonymFilter()
        assert not f.is_synonym_candidate(0x7000_0000)

    def test_marked_page_is_candidate(self):
        f = SynonymFilter()
        f.mark_shared(0x7F00_0000_2000)
        assert f.is_synonym_candidate(0x7F00_0000_2345)

    @settings(max_examples=50)
    @given(st.lists(vas, min_size=1, max_size=60))
    def test_guaranteed_detection_property(self, pages):
        """The correctness guarantee: every marked page is detected."""
        f = SynonymFilter()
        for va in pages:
            f.mark_shared(va)
        for va in pages:
            assert f.is_synonym_candidate(page_base(va))

    def test_mark_range(self):
        f = SynonymFilter()
        f.mark_shared_range(0x5000_0000, 5 * PAGE_SIZE)
        for i in range(5):
            assert f.is_synonym_candidate(0x5000_0000 + i * PAGE_SIZE)

    def test_distant_private_region_not_flagged(self):
        """The Linux-like VA split keeps heap and mmap hash-distinct."""
        f = SynonymFilter()
        f.mark_shared_range(0x7F00_0000_0000, 64 * PAGE_SIZE)
        false_positives = sum(
            f.is_synonym_candidate(0x1000_0000 + i * PAGE_SIZE)
            for i in range(512)
        )
        assert false_positives / 512 < 0.05

    def test_rebuild_drops_stale_entries(self):
        f = SynonymFilter()
        f.mark_shared(0x7F00_1111_0000)
        f.mark_shared(0x7F00_2222_0000)
        f.rebuild([0x7F00_1111_0000])
        assert f.is_synonym_candidate(0x7F00_1111_0000)

    def test_state_bits_roundtrip(self):
        a = SynonymFilter()
        a.mark_shared(0x7F00_0000_4000)
        fine, coarse = a.state_bits()
        b = SynonymFilter()
        b.load_state_bits(fine, coarse)
        assert b.is_synonym_candidate(0x7F00_0000_4000)

    def test_stats_counted(self):
        f = SynonymFilter()
        f.mark_shared(0x7F00_0000_0000)
        f.is_synonym_candidate(0x7F00_0000_0000)
        f.is_synonym_candidate(0x1000)
        assert f.stats["lookups"] == 2
        assert f.stats["candidates"] >= 1
        assert f.stats["pages_marked"] == 1


class TestVirtualizedSynonymFilter:
    def test_guest_or_host_triggers(self):
        v = VirtualizedSynonymFilter()
        v.mark_guest_shared(0x7F00_0000_0000)
        v.mark_host_shared(0x7F11_0000_0000)
        assert v.is_synonym_candidate(0x7F00_0000_0000)
        assert v.is_synonym_candidate(0x7F11_0000_0000)
        assert not v.is_synonym_candidate(0x1000_0000)

    def test_guest_switch_preserves_host(self):
        v = VirtualizedSynonymFilter()
        v.mark_host_shared(0x7F11_0000_0000)
        empty = SynonymFilter(SynonymFilterConfig())
        fine, coarse = empty.state_bits()
        v.switch_guest_process(fine, coarse)
        assert v.is_synonym_candidate(0x7F11_0000_0000)

    def test_vm_switch_preserves_guest(self):
        v = VirtualizedSynonymFilter()
        v.mark_guest_shared(0x7F00_0000_0000)
        v.switch_vm(0, 0)
        assert v.is_synonym_candidate(0x7F00_0000_0000)
