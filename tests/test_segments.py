"""Tests for OS segments: table, allocator, reservations, utilization."""

import pytest

from repro.common.rng import make_rng
from repro.osmodel import (
    FrameAllocator,
    OsSegmentTable,
    SegmentAllocator,
    SegmentFault,
)

MB = 1024 * 1024
PAGE = 4096


@pytest.fixture()
def system():
    frames = FrameAllocator(256 * MB)
    table = OsSegmentTable(capacity=2048)
    return frames, table


class TestSegment:
    def test_translate_with_offset(self, system):
        frames, table = system
        seg = table.insert(asid=1, vbase=0x1000_0000, length=1 * MB,
                           pbase=0x40_0000)
        assert seg.offset == 0x40_0000 - 0x1000_0000
        assert seg.translate(0x1000_0123) == 0x40_0123

    def test_translate_outside_raises(self, system):
        _frames, table = system
        seg = table.insert(1, 0x1000_0000, 1 * MB, 0)
        with pytest.raises(SegmentFault):
            seg.translate(0x1000_0000 + 2 * MB)

    def test_touch_and_utilization(self, system):
        _frames, table = system
        seg = table.insert(1, 0, 10 * PAGE, 0)
        for i in range(4):
            seg.touch(i * PAGE)
        seg.touch(PAGE)  # duplicate touch doesn't double count
        assert seg.utilization() == pytest.approx(0.4)


class TestOsSegmentTable:
    def test_find_by_containment(self, system):
        _frames, table = system
        table.insert(1, 0x1000, 0x1000, 0)
        seg = table.insert(1, 0x1_0000, 0x2000, 0x8000)
        assert table.find(1, 0x1_0800) is seg

    def test_find_wrong_asid_faults(self, system):
        _frames, table = system
        table.insert(1, 0x1000, 0x1000, 0)
        with pytest.raises(SegmentFault):
            table.find(2, 0x1000)

    def test_find_gap_faults(self, system):
        _frames, table = system
        table.insert(1, 0x1000, 0x1000, 0)
        with pytest.raises(SegmentFault):
            table.find(1, 0x5000)

    def test_capacity_enforced(self):
        table = OsSegmentTable(capacity=2)
        table.insert(1, 0x1000, PAGE, 0)
        table.insert(1, 0x3000, PAGE, 0)
        with pytest.raises(MemoryError):
            table.insert(1, 0x5000, PAGE, 0)

    def test_remove(self, system):
        _frames, table = system
        seg = table.insert(1, 0x1000, PAGE, 0)
        table.remove(seg.seg_id)
        with pytest.raises(SegmentFault):
            table.find(1, 0x1000)
        assert table.live_count() == 0

    def test_grow(self, system):
        _frames, table = system
        seg = table.insert(1, 0x1000, PAGE, 0)
        table.grow(seg.seg_id, PAGE)
        assert table.find(1, 0x1000 + PAGE) is seg

    def test_generation_bumps_on_mutation(self, system):
        _frames, table = system
        g0 = table.generation
        seg = table.insert(1, 0x1000, PAGE, 0)
        g1 = table.generation
        table.grow(seg.seg_id, PAGE)
        g2 = table.generation
        table.remove(seg.seg_id)
        g3 = table.generation
        assert g0 < g1 < g2 < g3

    def test_peak_live_tracked(self, system):
        _frames, table = system
        a = table.insert(1, 0x1000, PAGE, 0)
        b = table.insert(1, 0x3000, PAGE, 0)
        table.remove(a.seg_id)
        table.remove(b.seg_id)
        assert table.peak_live == 2

    def test_segments_sorted_order(self, system):
        _frames, table = system
        table.insert(2, 0x2000, PAGE, 0)
        table.insert(1, 0x9000, PAGE, 0)
        table.insert(1, 0x1000, PAGE, 0)
        order = [(s.asid, s.vbase) for s in table.segments_sorted()]
        assert order == sorted(order)


class TestSegmentAllocator:
    def test_contiguous_requests_merge(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        alloc.allocate(1 * MB)
        alloc.allocate(1 * MB)  # physically adjacent -> merged
        assert table.live_count() == 1
        assert table.find(1, alloc._va_cursor - 1).length == 2 * MB

    def test_noise_breaks_merge(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        alloc.allocate(1 * MB)
        frames.alloc_frame()  # someone else allocates in between
        alloc.allocate(1 * MB)
        assert table.live_count() == 2

    def test_fragmented_memory_splits_request(self, system):
        frames, table = system
        frames.fragment(max_extent_frames=64, rng=make_rng(3))
        alloc = SegmentAllocator(1, table, frames)
        segments = alloc.allocate(1 * MB)  # 256 frames > any extent
        assert len(segments) > 1
        assert sum(s.length for s in segments) == 1 * MB

    def test_translation_consistency(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        segs = alloc.allocate(4 * MB)
        for seg in segs:
            va = seg.vbase + seg.length // 2
            assert table.find(1, va).translate(va) == va + seg.offset


class TestReservationAllocation:
    def test_promotion_on_touch(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        vbase, length = alloc.reserve(8 * MB)
        assert table.live_count() == 0  # nothing promoted yet
        seg = alloc.touch_reserved(vbase + 100)
        assert seg is not None
        assert table.live_count() == 1
        assert seg.length == SegmentAllocator.RESERVATION_CHUNK

    def test_adjacent_promotions_merge(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        vbase, _length = alloc.reserve(8 * MB)
        chunk = SegmentAllocator.RESERVATION_CHUNK
        alloc.touch_reserved(vbase)
        alloc.touch_reserved(vbase + chunk)
        assert table.live_count() == 1  # merged into one segment
        assert table.find(1, vbase).length == 2 * chunk

    def test_forward_merge_of_disjoint_promotions(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        vbase, _ = alloc.reserve(8 * MB)
        chunk = SegmentAllocator.RESERVATION_CHUNK
        alloc.touch_reserved(vbase)              # segment A
        alloc.touch_reserved(vbase + 2 * chunk)  # segment B (gap)
        assert table.live_count() == 2
        alloc.touch_reserved(vbase + chunk)      # fills the gap -> one seg
        assert table.live_count() == 1
        assert table.find(1, vbase).length == 3 * chunk

    def test_touch_outside_reservation_returns_none(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        alloc.reserve(2 * MB)
        assert alloc.touch_reserved(0xDEAD_0000_0000) is None

    def test_repeated_touch_returns_same_segment(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        vbase, _ = alloc.reserve(4 * MB)
        a = alloc.touch_reserved(vbase + 10)
        b = alloc.touch_reserved(vbase + 20)
        assert a is b

    def test_reserved_translation_correct(self, system):
        frames, table = system
        alloc = SegmentAllocator(1, table, frames)
        vbase, _ = alloc.reserve(4 * MB)
        seg = alloc.touch_reserved(vbase)
        chunk = SegmentAllocator.RESERVATION_CHUNK
        alloc.touch_reserved(vbase + chunk)
        # Translation through the merged segment must match the
        # reservation's linear mapping.
        va = vbase + chunk + 123
        assert table.find(1, va).translate(va) == seg.pbase + chunk + 123
