"""Tests for the simulation drivers and result containers."""

import pytest

from repro.common.params import SystemConfig
from repro.sim import (
    MMU_CONFIGS,
    Simulator,
    build_mmu,
    compare_configs,
    geometric_mean,
    lay_out,
    run_workload,
    sweep_delayed_tlb,
)
from repro.sim.results import SimulationResult
from repro.osmodel import Kernel

SMALL = dict(accesses=2000, warmup=500)


class TestBuilders:
    def test_all_configs_constructible(self):
        for name in MMU_CONFIGS:
            kernel = Kernel(SystemConfig())
            mmu = build_mmu(name, kernel)
            assert mmu is not None

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            build_mmu("nope", Kernel(SystemConfig()))

    def test_lay_out_by_name_and_spec(self):
        from repro.workloads import spec
        kernel = Kernel(SystemConfig())
        w1 = lay_out("stream", kernel)
        assert w1.spec.name == "stream"
        kernel2 = Kernel(SystemConfig())
        w2 = lay_out(spec("stream"), kernel2)
        assert w2.spec.name == "stream"


class TestRunWorkload:
    def test_result_fields_populated(self):
        result = run_workload("stream", "baseline", **SMALL)
        assert result.workload == "stream"
        assert result.mmu == "baseline"
        assert result.accesses == 2000
        assert result.instructions == 2000 * (1 + 1)  # mem_ratio 0.4 -> gap 1
        assert result.cycles > 0
        assert 0 < result.ipc < 4
        assert result.stats  # snapshot present

    def test_deterministic_across_runs(self):
        a = run_workload("omnetpp", "hybrid_tlb", **SMALL, seed=3)
        b = run_workload("omnetpp", "hybrid_tlb", **SMALL, seed=3)
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_warmup_excluded_from_timing(self):
        result = run_workload("stream", "ideal", accesses=1000, warmup=500)
        assert result.accesses == 1000


class TestCompareConfigs:
    def test_normalized_baseline_is_one(self):
        row = compare_configs("stream", mmu_names=("baseline", "ideal"),
                              **SMALL)
        normalized = row.normalized()
        assert normalized["baseline"] == pytest.approx(1.0)
        assert normalized["ideal"] >= 1.0

    def test_hybrid_never_slower_than_baseline_much(self):
        row = compare_configs("omnetpp",
                              mmu_names=("baseline", "hybrid_segments"),
                              **SMALL)
        assert row.normalized()["hybrid_segments"] > 0.9


class TestSweep:
    def test_delayed_tlb_sweep_monotone_misses(self):
        results = sweep_delayed_tlb("omnetpp", (512, 4096), **SMALL)
        assert len(results) == 2
        small_misses = results[0].counter("delayed_tlb", "misses")
        large_misses = results[1].counter("delayed_tlb", "misses")
        assert large_misses <= small_misses


class TestResults:
    def test_llc_miss_rate(self):
        result = run_workload("gups", "baseline", **SMALL)
        assert 0 < result.llc_miss_rate() <= 1

    def test_speedup_over(self):
        a = SimulationResult("w", "m", 1, 1, 100.0, 2.0, {})
        b = SimulationResult("w", "m", 1, 1, 100.0, 1.0, {})
        assert a.speedup_over(b) == 2.0
        zero = SimulationResult("w", "m", 1, 1, 0.0, 0.0, {})
        assert a.speedup_over(zero) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)

    def test_tlb_mpki(self):
        result = run_workload("gups", "hybrid_tlb", **SMALL)
        assert result.tlb_mpki("delayed_tlb") > 0


class TestSimulatorDirect:
    def test_custom_timing_model(self):
        from repro.timing import TimingModel
        kernel = Kernel(SystemConfig())
        w = lay_out("stream", kernel)
        mmu = build_mmu("ideal", kernel)
        timing = TimingModel(mlp=8.0)
        result = Simulator(mmu, timing).run(w, accesses=500)
        assert result.ipc > 0
