"""Tests for the generic configuration sweep utilities."""

import pytest

from repro.common.params import SystemConfig
from repro.sim.sweep import sweep_config, sweep_grid, with_overrides

FAST = dict(accesses=1200, warmup=400)


class TestWithOverrides:
    def test_top_level_field(self):
        config = with_overrides(SystemConfig(), {"cores": 4})
        assert config.cores == 4

    def test_nested_field(self):
        config = with_overrides(SystemConfig(),
                                {"llc.size_bytes": 8 * 1024 * 1024})
        assert config.llc.size_bytes == 8 * 1024 * 1024
        assert config.llc.ways == 16  # siblings preserved

    def test_deeply_nested(self):
        config = with_overrides(SystemConfig(),
                                {"segments.index_cache_size": 65536})
        assert config.segments.index_cache_size == 65536

    def test_multiple_overrides(self):
        config = with_overrides(SystemConfig(), {
            "cores": 2,
            "delayed_tlb.entries": 4096,
        })
        assert config.cores == 2
        assert config.delayed_tlb.entries == 4096

    def test_original_untouched(self):
        base = SystemConfig()
        with_overrides(base, {"cores": 8})
        assert base.cores == 1

    def test_unknown_path_fails_loudly(self):
        with pytest.raises(AttributeError, match="no field"):
            with_overrides(SystemConfig(), {"llc.bogus_field": 1})
        with pytest.raises(AttributeError):
            with_overrides(SystemConfig(), {"nonexistent.size": 1})


class TestSweepConfig:
    def test_sweep_produces_per_value_results(self):
        results = sweep_config("stream", "hybrid_tlb",
                               "delayed_tlb.entries", [512, 2048], **FAST)
        assert set(results) == {512, 2048}
        for result in results.values():
            assert result.ipc > 0

    def test_sweep_actually_varies_the_field(self):
        results = sweep_config("gups", "hybrid_tlb",
                               "delayed_tlb.entries", [512, 8192], **FAST)
        misses = {v: r.counter("delayed_tlb", "misses")
                  for v, r in results.items()}
        assert misses[8192] <= misses[512]


class TestSweepGrid:
    def test_cartesian_product(self):
        rows = sweep_grid("stream", "baseline", {
            "llc.size_bytes": [1 * 1024 * 1024, 2 * 1024 * 1024],
            "cores": [1],
        }, **FAST)
        assert len(rows) == 2
        assert {r["params"]["llc.size_bytes"] for r in rows} == {
            1 * 1024 * 1024, 2 * 1024 * 1024}
        for row in rows:
            assert row["result"].cycles > 0
