"""Documentation hygiene: code snippets parse, referenced names exist."""

import ast
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


def python_blocks(path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestDocSnippets:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_python_blocks_parse(self, path):
        for i, block in enumerate(python_blocks(path)):
            try:
                ast.parse(block)
            except SyntaxError as exc:  # pragma: no cover - failure path
                pytest.fail(f"{path.name} block {i}: {exc}")

    def test_mechanisms_references_resolve(self):
        """Every `repro.x.y` dotted module named in mechanisms.md imports."""
        import importlib

        text = (ROOT / "docs" / "mechanisms.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Import the longest importable prefix, then walk attributes
            # (class members referenced as module.Class.method).
            obj = None
            consumed = 0
            for i in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:i]))
                    consumed = i
                    break
                except ImportError:
                    continue
            assert obj is not None, dotted
            for attr in parts[consumed:]:
                assert hasattr(obj, attr), dotted
                obj = getattr(obj, attr)

    def test_experiments_lists_every_benchmark(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("test_*.py")):
            assert bench.name in text, f"{bench.name} missing from EXPERIMENTS.md"

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for line in re.findall(r"python (examples/\w+\.py)", text):
            assert (ROOT / line).exists(), line


class TestDocLinks:
    """Relative markdown links must resolve to real files (run in CI's
    lint job as the docs link-integrity gate)."""

    LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        for target in self.LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{path.name}: broken link {target!r}"

    def test_backticked_paths_exist(self):
        """File-looking `path` references in README/EXPERIMENTS exist."""
        for doc in (ROOT / "README.md", ROOT / "EXPERIMENTS.md"):
            for ref in re.findall(r"`((?:docs|examples|benchmarks|tests)/"
                                  r"[\w./]+)`", doc.read_text()):
                assert (ROOT / ref).exists(), f"{doc.name}: {ref!r} missing"
