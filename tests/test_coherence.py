"""Tests for the directory MESI engine, including the synonym argument."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.coherence import (
    CoherenceEngine,
    CoherenceViolation,
    STATE_E,
    STATE_I,
    STATE_M,
    STATE_S,
)
from repro.common.address import physical_block_key, virtual_block_key
from repro.common.rng import make_rng


@pytest.fixture()
def engine():
    return CoherenceEngine(cores=4)


class TestBasicTransitions:
    def test_first_load_exclusive(self, engine):
        engine.load(0, 0x100)
        assert engine.state_of(0, 0x100) == STATE_E

    def test_second_load_shares(self, engine):
        engine.load(0, 0x100)
        engine.load(1, 0x100)
        assert engine.state_of(1, 0x100) == STATE_S
        # Core 0 stays readable (E is compatible with a new S reader
        # after directory downgrade paths; here it had no M data).
        assert engine.state_of(0, 0x100) in (STATE_E, STATE_S)

    def test_store_modifies(self, engine):
        engine.store(0, 0x100)
        assert engine.state_of(0, 0x100) == STATE_M
        assert engine.directory_state(0x100) == STATE_M

    def test_silent_e_to_m_upgrade(self, engine):
        engine.load(0, 0x100)
        before = engine.stats["messages"]
        engine.store(0, 0x100)
        assert engine.state_of(0, 0x100) == STATE_M
        assert engine.stats["messages"] == before  # no traffic
        assert engine.stats["silent_upgrades"] == 1

    def test_store_invalidates_sharers(self, engine):
        engine.load(0, 0x100)
        engine.load(1, 0x100)
        engine.load(2, 0x100)
        engine.store(3, 0x100)
        for core in (0, 1, 2):
            assert engine.state_of(core, 0x100) == STATE_I
        assert engine.state_of(3, 0x100) == STATE_M

    def test_load_forwards_from_owner(self, engine):
        v = engine.store(0, 0x100)
        seen = engine.load(1, 0x100)
        assert seen == v                     # reader sees the write
        assert engine.state_of(0, 0x100) == STATE_S  # owner downgraded

    def test_store_recalls_owner(self, engine):
        v0 = engine.store(0, 0x100)
        v1 = engine.store(1, 0x100)
        assert v1 == v0 + 1                  # version chain continues
        assert engine.state_of(0, 0x100) == STATE_I

    def test_eviction_of_modified_writes_back(self, engine):
        v = engine.store(0, 0x100)
        engine.evict(0, 0x100)
        assert engine.stats["writebacks"] == 1
        assert engine.load(1, 0x100) == v    # data survived via PutM

    def test_eviction_of_shared_is_silent_data_wise(self, engine):
        engine.load(0, 0x100)
        engine.load(1, 0x100)
        engine.evict(0, 0x100)
        assert engine.state_of(0, 0x100) == STATE_I
        assert engine.state_of(1, 0x100) == STATE_S

    def test_evict_invalid_is_noop(self, engine):
        engine.evict(0, 0x999)
        assert engine.stats["messages"] == 0

    def test_hits_counted(self, engine):
        engine.load(0, 0x100)
        engine.load(0, 0x100)
        engine.store(0, 0x200)
        engine.store(0, 0x200)
        assert engine.stats["load_hits"] == 1
        assert engine.stats["store_hits"] == 1

    def test_requires_a_core(self):
        with pytest.raises(ValueError):
            CoherenceEngine(cores=0)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),       # core
                              st.integers(0, 20),      # block
                              st.sampled_from(["load", "store", "evict"])),
                    min_size=1, max_size=300))
    def test_random_interleavings_never_violate(self, ops):
        engine = CoherenceEngine(cores=4)
        for core, block, op in ops:
            getattr(engine, op)(core, block)
        engine.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_readers_always_see_last_write(self, seed):
        """Data-value invariant under random traffic."""
        engine = CoherenceEngine(cores=4)
        rng = make_rng(seed)
        last_version = {}
        for _ in range(200):
            core = rng.randrange(4)
            block = rng.randrange(8)
            action = rng.random()
            if action < 0.4:
                last_version[block] = engine.store(core, block)
            elif action < 0.8:
                seen = engine.load(core, block)
                assert seen == last_version.get(block, 0)
            else:
                engine.evict(core, block)
        engine.check_invariants()


class TestSynonymCoherenceArgument:
    """The paper's Section III-A claim, against the real protocol."""

    def test_single_name_keeps_synonyms_coherent(self):
        """Two processes write a shared page through different VAs; the
        hybrid design names the block by its PA, so the protocol sees one
        block and readers always see the latest write."""
        engine = CoherenceEngine(cores=2)
        pa = 0x5000
        single_name = physical_block_key(pa)
        v1 = engine.store(0, single_name)    # process A writes via VA1
        assert engine.load(1, single_name) == v1  # process B reads via VA2
        v2 = engine.store(1, single_name)
        assert engine.load(0, single_name) == v2
        engine.check_invariants()

    def test_two_names_break_coherence(self):
        """Counterfactual: if synonyms were cached under their own VAs,
        the protocol would treat them as unrelated blocks and a reader
        could see stale data — the classic synonym bug."""
        engine = CoherenceEngine(cores=2)
        name_a = virtual_block_key(1, 0x7000_0000)  # VA in process A
        name_b = virtual_block_key(2, 0x9000_0000)  # synonym VA in B
        engine.store(0, name_a)              # A writes "the" data
        stale = engine.load(1, name_b)       # B reads via its own name
        assert stale == 0                    # ...and misses the update
