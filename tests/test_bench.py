"""Tests for the benchmark baseline schema and the regression gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V1,
    compare_baselines,
    jobs_from_baseline,
    load_baseline,
    make_baseline,
    metrics_from_result,
    migrate_file,
    migrate_v1,
    run_suite,
    save_baseline,
    suite_jobs,
)
from repro.cli import main

FAST = dict(accesses=600, warmup=200)


def _v1_doc():
    return {
        "schema": BENCH_SCHEMA_V1,
        "generated_unix": 1_700_000_000.0,
        "host": "somewhere",
        "python": "3.11.7",
        "benchmarks": [{"name": "test_fig4", "seconds": 12.5}],
        "total_seconds": 12.5,
        "artifact_lines": ["a line"],
    }


def _entry(name="w/m", seconds=1.0, **metrics):
    return {"name": name, "seconds": seconds, "metrics": metrics}


class TestSchema:
    def test_make_baseline_shape(self):
        doc = make_baseline([_entry(ipc=0.5)], artifact_lines=["x"])
        assert doc["schema"] == BENCH_SCHEMA
        assert set(doc["meta"]) == {"generated_unix", "host", "python",
                                    "git_sha"}
        assert doc["benchmarks"][0]["metrics"] == {"ipc": 0.5}
        assert doc["total_seconds"] == 1.0
        assert doc["artifact_lines"] == ["x"]

    def test_volatile_fields_only_under_meta(self):
        doc = make_baseline([_entry()])
        for field in ("generated_unix", "host", "python", "git_sha"):
            assert field in doc["meta"]
            assert field not in doc

    def test_migrate_v1(self):
        migrated = migrate_v1(_v1_doc())
        assert migrated["schema"] == BENCH_SCHEMA
        assert migrated["meta"]["host"] == "somewhere"
        assert migrated["meta"]["git_sha"] is None
        assert "host" not in migrated
        assert migrated["benchmarks"][0] == {"name": "test_fig4",
                                             "seconds": 12.5, "metrics": {}}
        assert migrated["artifact_lines"] == ["a line"]

    def test_load_migrates_v1_and_round_trips_v2(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(_v1_doc()))
        doc = load_baseline(path)
        assert doc["schema"] == BENCH_SCHEMA
        save_baseline(doc, path)
        assert load_baseline(path) == doc

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/v9"}))
        with pytest.raises(ValueError, match="expected repro.bench/v2"):
            load_baseline(path)

    def test_migrate_file_in_place(self, tmp_path):
        path = tmp_path / "latest.json"
        path.write_text(json.dumps(_v1_doc()))
        assert migrate_file(path) is True
        assert json.loads(path.read_text())["schema"] == BENCH_SCHEMA
        assert migrate_file(path) is False  # second pass is a no-op

    def test_committed_baselines_are_v2(self):
        for name in ("latest.json", "model_baseline.json"):
            doc = load_baseline(f"benchmarks/results/{name}")
            assert doc["schema"] == BENCH_SCHEMA


class TestGate:
    def test_equal_documents_pass(self):
        doc = make_baseline([_entry(ipc=0.5, cycles=1000.0)])
        report = compare_baselines(doc, copy.deepcopy(doc))
        assert report.ok
        assert all(d.status == "ok" for d in report.deltas
                   if d.metric != "seconds")

    def test_meta_differences_ignored(self):
        base = make_baseline([_entry(ipc=0.5)])
        current = copy.deepcopy(base)
        current["meta"] = {"generated_unix": 0.0, "host": "elsewhere",
                          "python": "9.9", "git_sha": "f" * 40}
        assert compare_baselines(base, current).ok

    def test_directional_regression(self):
        base = make_baseline([_entry(ipc=0.5, cycles=1000.0)])
        worse = make_baseline([_entry(ipc=0.4, cycles=1200.0)])
        report = compare_baselines(base, worse, threshold_pct=10.0)
        assert not report.ok
        assert {(d.metric, d.regressed) for d in report.deltas
                if d.metric in ("ipc", "cycles")} == \
            {("ipc", True), ("cycles", True)}
        # The same moves in the good direction are improvements.
        better = compare_baselines(worse, base, threshold_pct=10.0)
        assert better.ok
        assert any(d.improved for d in better.deltas)

    def test_threshold_is_a_deadband(self):
        base = make_baseline([_entry(ipc=0.5)])
        slightly = make_baseline([_entry(ipc=0.48)])  # -4%
        assert compare_baselines(base, slightly, threshold_pct=10.0).ok
        assert not compare_baselines(base, slightly, threshold_pct=1.0).ok

    def test_seconds_reported_not_gated_by_default(self):
        base = make_baseline([_entry(seconds=1.0, ipc=0.5)])
        slow = make_baseline([_entry(seconds=10.0, ipc=0.5)])
        report = compare_baselines(base, slow)
        assert report.ok
        delta = [d for d in report.deltas if d.metric == "seconds"][0]
        assert delta.regressed and not delta.gated
        assert "ungated" in delta.status
        gated = compare_baselines(base, slow, seconds_threshold_pct=50.0)
        assert not gated.ok

    def test_missing_benchmark_fails_gate(self):
        base = make_baseline([_entry("a", ipc=0.5), _entry("b", ipc=0.5)])
        current = make_baseline([_entry("a", ipc=0.5)])
        report = compare_baselines(base, current)
        assert report.missing == ["b"]
        assert not report.ok

    def test_added_benchmark_is_informational(self):
        base = make_baseline([_entry("a", ipc=0.5)])
        current = make_baseline([_entry("a", ipc=0.5),
                                 _entry("new", ipc=0.1)])
        report = compare_baselines(base, current)
        assert report.added == ["new"]
        assert report.ok

    def test_zero_baseline_handled(self):
        base = make_baseline([_entry(mpki=0.0)])
        same = make_baseline([_entry(mpki=0.0)])
        grew = make_baseline([_entry(mpki=3.0)])
        assert compare_baselines(base, same).ok
        report = compare_baselines(base, grew)
        assert not report.ok

    def test_markdown_and_json_report(self):
        base = make_baseline([_entry(ipc=0.5)])
        worse = make_baseline([_entry(ipc=0.3)])
        report = compare_baselines(base, worse)
        md = report.to_markdown()
        assert "FAIL" in md and "| w/m | ipc |" in md
        doc = json.loads(json.dumps(report.to_json_dict()))
        assert doc["schema"] == "repro.bench.report/v1"
        assert doc["ok"] is False and doc["regressions"] >= 1


class TestSuite:
    def test_suite_jobs_self_describing_round_trip(self):
        jobs = suite_jobs(accesses=600, warmup=200, seed=7)
        entries = [{"name": name, "workload": job.workload_name,
                    "mmu": job.mmu, "accesses": job.accesses,
                    "warmup": job.warmup, "seed": job.seed}
                   for name, job in jobs]
        rebuilt = jobs_from_baseline({"benchmarks": entries})
        assert [(n, j.fingerprint()) for n, j in rebuilt] == \
            [(n, j.fingerprint()) for n, j in jobs]

    def test_jobs_from_baseline_skips_seconds_only_entries(self):
        doc = {"benchmarks": [{"name": "timing-only", "seconds": 3.0}]}
        assert jobs_from_baseline(doc) == []

    def test_run_suite_records_metrics(self):
        jobs = suite_jobs(points=[("stream/hybrid_tlb", "stream",
                                   "hybrid_tlb")], **FAST)
        entries = run_suite(jobs)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["name"] == "stream/hybrid_tlb"
        assert entry["fingerprint"] and entry["config_hash"]
        assert entry["seconds"] > 0
        assert {"ipc", "cycles", "llc_miss_rate",
                "delayed_tlb_mpki", "tlb_bypass_rate"} <= \
            set(entry["metrics"])

    def test_metrics_deterministic(self):
        jobs = suite_jobs(points=[("stream/baseline", "stream", "baseline")],
                          **FAST)
        first = run_suite(jobs)[0]["metrics"]
        second = run_suite(suite_jobs(
            points=[("stream/baseline", "stream", "baseline")],
            **FAST))[0]["metrics"]
        assert first == second

    def test_metrics_from_result_shape(self):
        from repro.sim import run_workload
        result = run_workload("stream", "baseline", seed=42, **FAST)
        metrics = metrics_from_result(result)
        assert metrics["ipc"] == pytest.approx(result.ipc)
        assert "delayed_tlb_mpki" not in metrics  # baseline has no one


class TestCli:
    def _record(self, tmp_path, capsys, name="base.json"):
        path = tmp_path / name
        assert main(["bench", "record", "--out", str(path),
                     "--accesses", "600", "--warmup", "200"]) == 0
        capsys.readouterr()
        return path

    def test_record_then_check_passes(self, tmp_path, capsys):
        """ISSUE 4 acceptance: check exits 0 against a fresh baseline."""
        path = self._record(tmp_path, capsys)
        assert main(["bench", "check", "--baseline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_injected_regression_fails(self, tmp_path, capsys):
        """ISSUE 4 acceptance: a >=10% metric regression exits non-zero."""
        path = self._record(tmp_path, capsys)
        doc = json.loads(path.read_text())
        for entry in doc["benchmarks"]:
            if entry["name"] == "stream/baseline":
                entry["metrics"]["ipc"] *= 1.15  # current will be 13% lower
        injected = tmp_path / "inflated.json"
        injected.write_text(json.dumps(doc))
        code = main(["bench", "check", "--baseline", str(injected)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_against_current_document(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        report_md = tmp_path / "report.md"
        report_json = tmp_path / "report.json"
        assert main(["bench", "check", "--baseline", str(path),
                     "--current", str(path),
                     "--report", str(report_md),
                     "--json-report", str(report_json), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert "PASS" in report_md.read_text()
        assert json.loads(report_json.read_text())["ok"] is True

    def test_check_without_runnable_jobs_errors(self, tmp_path):
        path = tmp_path / "timings.json"
        save_baseline(make_baseline([{"name": "t", "seconds": 1.0}]), path)
        with pytest.raises(SystemExit, match="no re-runnable"):
            main(["bench", "check", "--baseline", str(path)])

    def test_migrate_command(self, tmp_path, capsys):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(_v1_doc()))
        assert main(["bench", "migrate", str(path)]) == 0
        assert "migrated to v2" in capsys.readouterr().out
        assert main(["bench", "migrate", str(path)]) == 0
        assert "already v2" in capsys.readouterr().out

    def test_migrate_missing_file_fails(self, tmp_path, capsys):
        assert main(["bench", "migrate", str(tmp_path / "none.json")]) == 1
