"""Tests for trace persistence (binary + text formats)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.osmodel import Kernel
from repro.sim import lay_out
from repro.workloads import tracefile
from repro.workloads.trace import TraceRecord

records_strategy = st.lists(
    st.builds(TraceRecord,
              asid=st.integers(0, 0xFFFF),
              core=st.integers(0, 255),
              va=st.integers(0, (1 << 48) - 1),
              is_write=st.booleans(),
              gap=st.integers(0, 1000)),
    max_size=200)


def sample_records(n=10):
    return [TraceRecord(asid=1 + i % 3, core=i % 2, va=0x1000 + 8 * i,
                        is_write=i % 2 == 0, gap=2) for i in range(n)]


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.trc"
        original = sample_records()
        assert tracefile.save_binary(path, original) == len(original)
        loaded = list(tracefile.load_binary(path))
        assert loaded == original

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "t.trc"
        path.write_bytes(b"NOTATRACE!!!")
        with pytest.raises(tracefile.TraceFormatError):
            list(tracefile.load_binary(path))

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "t.trc"
        tracefile.save_binary(path, sample_records(3))
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(tracefile.TraceFormatError):
            list(tracefile.load_binary(path))

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "t.trc"
        assert tracefile.save_binary(path, []) == 0
        assert list(tracefile.load_binary(path)) == []

    @settings(max_examples=25)
    @given(records_strategy)
    def test_roundtrip_property(self, records):
        import os
        import tempfile

        fd, path = tempfile.mkstemp(suffix=".trc")
        os.close(fd)
        try:
            tracefile.save_binary(path, records)
            assert list(tracefile.load_binary(path)) == records
        finally:
            os.unlink(path)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        original = sample_records()
        tracefile.save_text(path, original)
        assert list(tracefile.load_text(path)) == original

    def test_header_required(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,0,0x1000,r,2\n")
        with pytest.raises(tracefile.TraceFormatError):
            list(tracefile.load_text(path))

    def test_malformed_line_located(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# repro trace v1: asid,core,va,rw,gap\n"
                        "1,0,0x1000,r,2\n"
                        "garbage line\n")
        with pytest.raises(tracefile.TraceFormatError, match=":3"):
            list(tracefile.load_text(path))

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# repro trace v1: asid,core,va,rw,gap\n"
                        "\n# comment\n1,0,0x1000,w,3\n")
        loaded = list(tracefile.load_text(path))
        assert len(loaded) == 1
        assert loaded[0].is_write and loaded[0].gap == 3


class TestDispatch:
    def test_extension_picks_binary(self, tmp_path):
        path = tmp_path / "t.trc"
        tracefile.save(path, sample_records(3))
        assert path.read_bytes().startswith(tracefile.MAGIC)

    def test_sniffing_load(self, tmp_path):
        binary = tmp_path / "a.trc"
        text = tmp_path / "b.csv"
        records = sample_records(4)
        tracefile.save(binary, records)
        tracefile.save(text, records)
        assert list(tracefile.load(binary)) == records
        assert list(tracefile.load(text)) == records


class TestWorkloadIntegration:
    def test_recorded_workload_replays_identically(self, tmp_path):
        """Save a generated trace, replay it through a simulation."""
        from repro.core import IdealMmu
        from repro.sim import Simulator

        kernel = Kernel(SystemConfig())
        workload = lay_out("stream", kernel)
        path = tmp_path / "stream.trc"
        tracefile.save(path, workload.trace(500))

        mmu = IdealMmu(kernel, kernel.config)
        pas = [mmu.access(r.core, r.asid, r.va, r.is_write).translated_pa
               for r in tracefile.load(path)]
        assert len(pas) == 500
        for record, pa in zip(tracefile.load(path), pas):
            assert kernel.translate(record.asid, record.va).pa == pa
