"""Property tests for the timing model's accounting identities."""

from hypothesis import given, strategies as st

from repro.common.params import CoreConfig
from repro.core.mmu_base import AccessOutcome
from repro.timing import TimingModel

outcomes = st.builds(
    AccessOutcome,
    front_cycles=st.integers(0, 500),
    cache_cycles=st.integers(0, 100),
    delayed_cycles=st.integers(0, 100),
    dram_cycles=st.integers(0, 300),
    hit_level=st.sampled_from(["l1", "l2", "llc", "memory"]),
)


class TestAccountingIdentities:
    @given(st.lists(outcomes, min_size=1, max_size=50),
           st.floats(1.0, 8.0))
    def test_breakdown_sums_to_total(self, records, mlp):
        model = TimingModel(CoreConfig(), mlp=mlp)
        for outcome in records:
            model.record(outcome, instructions_between=2)
        assert abs(sum(model.breakdown().values())
                   - model.total_cycles()) < 1e-6

    @given(st.lists(outcomes, min_size=1, max_size=50))
    def test_higher_mlp_never_slower(self, records):
        low = TimingModel(CoreConfig(), mlp=1.0)
        high = TimingModel(CoreConfig(), mlp=4.0)
        for outcome in records:
            low.record(outcome)
            high.record(outcome)
        assert high.total_cycles() <= low.total_cycles() + 1e-9

    @given(st.lists(outcomes, min_size=1, max_size=50))
    def test_total_cycles_monotone_in_work(self, records):
        model = TimingModel(CoreConfig(), mlp=2.0)
        previous = 0.0
        for outcome in records:
            model.record(outcome)
            current = model.total_cycles()
            assert current >= previous
            previous = current

    @given(outcomes)
    def test_outcome_total_is_component_sum(self, outcome):
        assert outcome.total_cycles == (outcome.front_cycles
                                        + outcome.cache_cycles
                                        + outcome.delayed_cycles
                                        + outcome.dram_cycles)
        assert outcome.llc_miss == (outcome.hit_level == "memory")

    @given(st.lists(outcomes, min_size=1, max_size=30))
    def test_ipc_cpi_reciprocal(self, records):
        model = TimingModel(CoreConfig(), mlp=1.5)
        for outcome in records:
            model.record(outcome, instructions_between=3)
        if model.total_cycles() > 0:
            assert abs(model.ipc() * model.cpi() - 1.0) < 1e-9
