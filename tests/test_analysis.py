"""Tests for the trace-analysis module, including calibration checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.osmodel import Kernel
from repro.sim import lay_out
from repro.workloads import (
    TraceAnalyzer,
    analyze,
    estimate_tlb_hit_rate,
    spec,
)
from repro.workloads.trace import TraceRecord


def record(va, asid=1, write=False):
    return TraceRecord(asid=asid, core=0, va=va, is_write=write, gap=2)


class TestTraceAnalyzer:
    def test_counts(self):
        profile = analyze([record(0x1000), record(0x1008, write=True),
                           record(0x2000)])
        assert profile.accesses == 3
        assert profile.write_fraction == pytest.approx(1 / 3)
        assert profile.distinct_pages == 2
        assert profile.distinct_blocks == 2

    def test_blocks_finer_than_pages(self):
        profile = analyze([record(0x1000), record(0x1040), record(0x1080)])
        assert profile.distinct_pages == 1
        assert profile.distinct_blocks == 3

    def test_asids_separate_pages(self):
        profile = analyze([record(0x1000, asid=1), record(0x1000, asid=2)])
        assert profile.distinct_pages == 2
        assert profile.per_asid_accesses == {1: 1, 2: 1}

    def test_coverage_small_footprint_saturates(self):
        trace = [record(0x1000)] * 99 + [record(0x2000)]
        profile = analyze(trace)
        # Two pages: any capacity point beyond the footprint covers all.
        assert profile.coverage(64) == pytest.approx(1.0)

    def test_coverage_hot_page_dominates(self):
        trace = ([record(0x1000)] * 100
                 + [record(0x1000 + i * 4096) for i in range(1, 101)])
        profile = analyze(trace)
        # Top-64 pages: the hot page (100 accesses) + 63 singletons.
        assert profile.coverage(64) == pytest.approx(163 / 200)
        assert profile.coverage(4096) == pytest.approx(1.0)

    def test_coverage_monotone(self):
        kernel = Kernel(SystemConfig())
        w = lay_out("xalancbmk", kernel)
        profile = analyze(w.trace(5000))
        shares = [s for _n, s in profile.page_coverage]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0)

    def test_reuse_histogram_binning(self):
        # Page revisited after exactly 1 and then 3 intervening accesses.
        trace = [record(0x1000), record(0x1000),
                 record(0x2000), record(0x3000), record(0x1000)]
        profile = analyze(trace)
        assert profile.reuse_time_histogram.get("1-1") == 1
        assert sum(profile.reuse_time_histogram.values()) == 2

    def test_empty_trace(self):
        profile = analyze([])
        assert profile.accesses == 0
        assert profile.write_fraction == 0.0
        assert profile.coverage(1024) == 0.0

    def test_footprint_bytes(self):
        profile = analyze([record(0x1000), record(0x5000)])
        assert profile.footprint_bytes() == 2 * 4096

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=1, max_size=200))
    def test_invariants_property(self, vas):
        profile = analyze([record(va & ~7) for va in vas])
        assert profile.accesses == len(vas)
        assert profile.distinct_pages <= profile.distinct_blocks <= len(vas)
        assert 0.0 <= profile.coverage(64) <= 1.0


class TestCalibrationChecks:
    """The analyzer as an oracle for the workload catalog."""

    def test_gups_page_working_set_defeats_tlbs(self):
        kernel = Kernel(SystemConfig())
        w = lay_out("gups", kernel)
        profile = analyze(w.trace(20_000))
        # A 1088-entry TLB captures little beyond the stack traffic.
        assert estimate_tlb_hit_rate(profile, 1024) < 0.5

    def test_omnetpp_within_large_tlb_reach(self):
        kernel = Kernel(SystemConfig())
        w = lay_out("omnetpp", kernel)
        profile = analyze(w.trace(20_000))
        assert estimate_tlb_hit_rate(profile, 16384) > 0.95

    def test_estimate_upper_bounds_simulated_hit_rate(self):
        """Perfect-retention coverage ≥ measured LRU TLB hit rate."""
        from repro.core import ConventionalMmu
        from repro.sim import Simulator

        config = SystemConfig()
        kernel = Kernel(config)
        w = lay_out("xalancbmk", kernel)
        analyzer = TraceAnalyzer()
        for r in w.trace(15_000):
            analyzer.feed(r)
        profile = analyzer.profile()

        kernel2 = Kernel(config)
        w2 = lay_out("xalancbmk", kernel2)
        mmu = ConventionalMmu(kernel2, config)
        Simulator(mmu).run(w2, accesses=15_000)
        tlb = mmu.tlbs[0]
        measured = 1 - tlb.misses() / tlb.stats["lookups"]
        estimate = estimate_tlb_hit_rate(profile, 1024 + 64)
        assert measured <= estimate + 0.05

    def test_write_fractions_match_specs(self):
        for name in ("gups", "omnetpp"):
            kernel = Kernel(SystemConfig())
            w = lay_out(name, kernel)
            profile = analyze(w.trace(8000))
            assert profile.write_fraction == pytest.approx(
                spec(name).write_fraction, abs=0.05)
