"""Cross-subsystem property-based tests (hypothesis).

These exercise the invariants the paper's correctness argument rests on:

* single name per physical block (synonym coherence),
* inclusion in the cache hierarchy,
* functional equivalence of every translation path,
* no-false-negative synonym detection under arbitrary OS behaviour.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.common.address import PAGE_SIZE, VA_MASK
from repro.common.params import CacheConfig, SystemConfig
from repro.common.rng import make_rng
from repro.core import ConventionalMmu, HybridMmu
from repro.osmodel import FrameAllocator, IndexTree, Kernel, OsSegmentTable
from repro.cache.hierarchy import CacheHierarchy

MB = 1024 * 1024


def tiny_config(cores=2):
    return dataclasses.replace(
        SystemConfig(),
        cores=cores,
        l1=CacheConfig(512, 2, 2),
        l2=CacheConfig(2048, 4, 6),
        llc=CacheConfig(8192, 8, 27),
    )


class TestInclusionInvariant:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1),        # core
                              st.integers(0, 400),      # block id
                              st.booleans()),            # write
                    min_size=1, max_size=300))
    def test_private_copies_always_in_llc(self, accesses):
        """Inclusive hierarchy: every L1/L2-resident block is LLC-resident."""
        h = CacheHierarchy(tiny_config())
        for core, block, is_write in accesses:
            h.access(core, block << 1, is_write)
        for core in range(2):
            for level in (h.l1[core], h.l2[core]):
                for key in level.resident_keys():
                    assert h.llc.probe(key) is not None

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 200),
                              st.booleans()),
                    min_size=1, max_size=200))
    def test_no_block_dirty_in_two_private_caches(self, accesses):
        """Single-writer: a modified block lives in at most one core's L1."""
        h = CacheHierarchy(tiny_config())
        for core, block, is_write in accesses:
            h.access(core, block, is_write)
        from repro.cache.line import STATE_MODIFIED
        for key in set(h.l1[0].resident_keys()) & set(h.l1[1].resident_keys()):
            states = [h.l1[c].probe(key).state for c in range(2)]
            assert states.count(STATE_MODIFIED) <= 1, key


class TestTranslationEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(2, 6))
    def test_hybrid_and_baseline_agree_under_random_ops(self, seed, regions):
        """Interleaved mmaps + accesses: all MMUs yield identical PAs."""
        rng = make_rng(seed)
        layout = [(rng.choice(["eager", "demand"]),
                   rng.randrange(1, 8) * 64 * 1024) for _ in range(regions)]
        probes = [rng.random() for _ in range(40)]

        def run(mmu_cls, **kw):
            config = dataclasses.replace(SystemConfig(), cores=1)
            kernel = Kernel(config)
            p = kernel.create_process("p")
            vmas = [kernel.mmap(p, size, policy=policy)
                    for policy, size in layout]
            mmu = mmu_cls(kernel, config, **kw)
            pas = []
            truth = []
            for i, frac in enumerate(probes):
                vma = vmas[i % len(vmas)]
                va = vma.vbase + int(frac * (vma.length - 8))
                pas.append(mmu.access(0, p.asid, va, i % 3 == 0).translated_pa)
                truth.append(kernel.translate(p.asid, va).pa)
            # Every MMU must agree with its own kernel's functional
            # translation at every step.  (Raw PAs can differ *between*
            # kernels: the segments engine allocates index-tree frames
            # mid-run, shifting later demand allocations.)
            assert pas == truth
            return pas

        base = run(ConventionalMmu)
        # The delayed-TLB hybrid allocates nothing extra, so its physical
        # layout — and hence its PA sequence — matches the baseline's.
        assert run(HybridMmu, delayed="tlb") == base
        run(HybridMmu, delayed="segments")


class TestSynonymSingleName:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31))
    def test_synonym_accesses_share_physical_name(self, seed):
        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 16 * PAGE_SIZE)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        rng = make_rng(seed)
        for _ in range(60):
            offset = rng.randrange(0, 16 * PAGE_SIZE) & ~7
            pa_a = mmu.access(0, a.asid, vmas[a.asid].vbase + offset,
                              rng.random() < 0.5).translated_pa
            pa_b = mmu.access(1, b.asid, vmas[b.asid].vbase + offset,
                              rng.random() < 0.5).translated_pa
            assert pa_a == pa_b
        # And no ASID+VA copies of shared blocks exist anywhere.
        from repro.common.address import virtual_block_key
        for proc, vma in ((a, vmas[a.asid]), (b, vmas[b.asid])):
            for off in range(0, 16 * PAGE_SIZE, 64):
                key = virtual_block_key(proc.asid, vma.vbase + off)
                assert mmu.caches.probe_line(0, key) is None
                assert mmu.caches.probe_line(1, key) is None


class TestFilterSoundnessUnderOsChurn:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 30))
    def test_no_false_negatives_after_share_unshare_rebuild(self, seed, n):
        """Arbitrary share/rebuild sequences never lose a live synonym."""
        kernel = Kernel(SystemConfig())
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        rng = make_rng(seed)
        live_shared = []
        for _ in range(n):
            action = rng.random()
            if action < 0.6 or not live_shared:
                vmas = kernel.mmap_shared([a, b], PAGE_SIZE * rng.randrange(1, 4))
                live_shared.append(vmas[a.asid])
            else:
                a.rebuild_filter()
            for vma in live_shared:
                for off in range(0, vma.length, PAGE_SIZE):
                    assert a.synonym_filter.is_synonym_candidate(
                        vma.vbase + off)


class TestIndexTreeEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 120))
    def test_tree_matches_table_for_random_layouts(self, seed, n_segments):
        rng = make_rng(seed)
        frames = FrameAllocator(512 * MB)
        table = OsSegmentTable(capacity=4096)
        va = 0x1000_0000
        for i in range(n_segments):
            asid = 1 + (i % 3)
            length = PAGE_SIZE * rng.randrange(1, 64)
            table.insert(asid, va, length, rng.randrange(0, 1 << 30) & ~0xFFF)
            va += length + PAGE_SIZE * rng.randrange(1, 8)
        tree = IndexTree(frames)
        tree.build(table)
        for seg in table.segments_sorted():
            probe = seg.vbase + rng.randrange(0, seg.length)
            assert tree.lookup(seg.asid, probe).seg_id == seg.seg_id


class TestFrameConservationUnderKernelChurn:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2 ** 31), st.integers(1, 15))
    def test_mmap_munmap_cycles_conserve_frames(self, seed, rounds):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        rng = make_rng(seed)
        for _ in range(rounds):
            policy = rng.choice(["eager", "demand"])
            vma = kernel.mmap(p, PAGE_SIZE * rng.randrange(1, 64),
                              policy=policy)
            for off in range(0, vma.length, PAGE_SIZE * 2):
                kernel.translate(p.asid, vma.vbase + off)
            kernel.munmap(p, vma)
        total = kernel.frames.total_frames
        assert kernel.frames.free_frames() + kernel.frames.allocated_frames() == total


# ---------------------------------------------------------------------- #
# Job wire format (the simulation service's repro.job/v1 documents)
# ---------------------------------------------------------------------- #

def _shuffled_keys(doc):
    """Recursively rebuild dicts with reversed key insertion order."""
    if isinstance(doc, dict):
        return {key: _shuffled_keys(doc[key]) for key in reversed(doc)}
    if isinstance(doc, list):
        return [_shuffled_keys(item) for item in doc]
    return doc


def _jobs():
    from repro.exec import Job
    from repro.sim.runner import MMU_CONFIGS

    configs = st.sampled_from([
        None,
        SystemConfig(),
        tiny_config(),
        SystemConfig().with_delayed_tlb_entries(4096),
        SystemConfig().with_llc_size(8 * MB),
    ])
    tags = st.lists(
        st.tuples(st.sampled_from(["size", "kind", "sweep"]),
                  st.one_of(st.integers(0, 99),
                            st.sampled_from(["a", "b"]))),
        max_size=2, unique_by=lambda tag: tag[0]).map(tuple)
    return st.builds(
        Job,
        workload=st.sampled_from(["gups", "milc", "mcf", "stream"]),
        mmu=st.sampled_from(MMU_CONFIGS),
        config=configs,
        accesses=st.integers(1, 10 ** 7),
        warmup=st.integers(0, 10 ** 6),
        seed=st.integers(0, 2 ** 31),
        interval=st.one_of(st.none(), st.integers(1, 10 ** 5)),
        reset_stats_after_warmup=st.booleans(),
        tags=tags,
    )


class TestJobWireFormat:
    """The service's dedup/cache soundness rests on these invariants."""

    @settings(max_examples=30, deadline=None)
    @given(_jobs())
    def test_json_round_trip_preserves_job_and_fingerprint(self, job):
        from repro.exec import Job

        back = Job.from_json_dict(job.to_json_dict())
        assert back == job
        assert back.fingerprint() == job.fingerprint()
        assert back.identity() == job.identity()

    @settings(max_examples=30, deadline=None)
    @given(_jobs())
    def test_fingerprint_invariant_under_document_key_order(self, job):
        from repro.exec import Job

        doc = job.to_json_dict()
        reordered = _shuffled_keys(doc)
        assert list(reordered) != list(doc)       # order truly differs
        assert Job.from_json_dict(reordered).fingerprint() == \
            job.fingerprint()

    @settings(max_examples=30, deadline=None)
    @given(_jobs())
    def test_unknown_keys_ignored_for_forward_compat(self, job):
        from repro.exec import Job

        doc = job.to_json_dict()
        doc["future_field"] = {"nested": True}
        if doc["config"] is not None:
            doc["config"]["future_knob"] = 7
        assert Job.from_json_dict(doc) == job

    @settings(max_examples=30, deadline=None)
    @given(_jobs(), _jobs())
    def test_fingerprint_equality_tracks_identity(self, a, b):
        """Distinct fingerprints ⇒ distinct identities, and equal
        identities ⇒ equal fingerprints (no spurious cache misses)."""
        if a.fingerprint() != b.fingerprint():
            assert a.identity() != b.identity()
        if a.identity() == b.identity():
            assert a.fingerprint() == b.fingerprint()
