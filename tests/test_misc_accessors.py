"""Coverage of small public accessors and reporting paths."""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel
from repro.segtrans import ManySegmentTranslator
from repro.sim.report import breakdown_chart

MB = 1024 * 1024


class TestManySegmentAccessors:
    def _translator(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * MB, policy="eager")
        return ManySegmentTranslator(kernel), p, vma

    def test_sc_hit_rate(self):
        ms, p, vma = self._translator()
        ms.translate(p.asid, vma.vbase)
        ms.translate(p.asid, vma.vbase + 64)
        assert 0 < ms.sc_hit_rate() <= 1.0

    def test_sc_hit_rate_without_sc(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 2 * MB, policy="eager")
        ms = ManySegmentTranslator(kernel, use_segment_cache=False)
        ms.translate(p.asid, vma.vbase)
        assert ms.sc_hit_rate() == 0.0

    def test_index_cache_hit_rate(self):
        ms, p, vma = self._translator()
        # Force two full walks through the index cache.
        ms_nosc = ManySegmentTranslator(ms.kernel, use_segment_cache=False)
        ms_nosc.translate(p.asid, vma.vbase)
        ms_nosc.translate(p.asid, vma.vbase + 4096)
        assert 0 <= ms_nosc.index_cache_hit_rate() <= 1.0
        assert ms_nosc.index_cache_hit_rate() > 0  # second walk hit


class TestHierarchyAccessors:
    def test_total_latency_floor(self):
        from repro.cache.hierarchy import CacheHierarchy

        config = SystemConfig()
        h = CacheHierarchy(config)
        assert h.total_latency_floor() == (config.l1.latency
                                           + config.l2.latency
                                           + config.llc.latency)

    def test_tlb_hierarchy_counters(self):
        from repro.common.params import TlbConfig
        from repro.tlb import TlbHierarchy, TlbEntry

        h = TlbHierarchy(TlbConfig(4, 2, 1), TlbConfig(16, 4, 7))
        h.lookup(0x1234)
        assert h.accesses() == 1
        assert h.misses() == 1
        h.fill(TlbEntry(0x1234, 1, True))
        h.lookup(0x1234)
        assert h.accesses() == 2
        assert h.misses() == 1


class TestBreakdownReporting:
    def test_cycle_breakdown_renders(self):
        from repro.sim import run_workload

        result = run_workload("stream", "hybrid_tlb", accesses=800,
                              warmup=200)
        chart = breakdown_chart(result.cycle_breakdown)
        assert "%" in chart
        assert "dram" in chart

    def test_mmu_snapshot_round_trips_counters(self):
        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, MB, policy="eager")
        mmu = HybridMmu(kernel, config)
        mmu.access(0, p.asid, vma.vbase, False)
        snapshot = mmu.snapshot()
        assert snapshot["hybrid"]["accesses"] == 1
        # Snapshot is a copy: further accesses don't mutate it.
        mmu.access(0, p.asid, vma.vbase, False)
        assert snapshot["hybrid"]["accesses"] == 1


class TestStatsSnapshots:
    def test_simulation_result_counter_default(self):
        from repro.sim.results import SimulationResult

        r = SimulationResult("w", "m", 1, 1, 1.0, 1.0, {}, stats={})
        assert r.counter("nope", "nothing") == 0
        assert r.llc_miss_rate() == 0.0
        assert r.tlb_mpki() == 0.0
