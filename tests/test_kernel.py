"""Tests for the kernel facade: mmap policies, sharing, CoW, shootdowns."""

import pytest

from repro.common.address import PAGE_SIZE, page_base
from repro.common.params import SystemConfig
from repro.osmodel import (
    Kernel,
    POLICY_DEMAND,
    POLICY_EAGER,
    SegmentationViolation,
)
from repro.osmodel.pagetable import PERM_READ, PERM_RW

MB = 1024 * 1024


@pytest.fixture()
def kernel():
    return Kernel(SystemConfig())


class TestProcesses:
    def test_asids_unique(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        assert a.asid != b.asid
        assert kernel.process(a.asid) is a

    def test_fresh_process_has_empty_filter(self, kernel):
        p = kernel.create_process("p")
        assert p.synonym_filter.fill_ratio() == 0.0


class TestMmapPolicies:
    def test_demand_mapping_faults_lazily(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 1 * MB, policy=POLICY_DEMAND)
        assert p.page_table.mapped_pages == 0
        t = kernel.translate(p.asid, vma.vbase + 5000)
        assert t.pa is not None
        assert kernel.stats["demand_faults"] == 1
        assert p.page_table.mapped_pages == 1

    def test_eager_mapping_creates_segments_upfront(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * MB, policy=POLICY_EAGER)
        assert vma.segments
        assert kernel.segment_table.live_count() >= 1
        # Page table still fills on first touch (utilization tracking).
        assert p.page_table.mapped_pages == 0
        kernel.translate(p.asid, vma.vbase)
        assert p.page_table.mapped_pages == 1

    def test_eager_translation_matches_segment_arithmetic(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 2 * MB, policy=POLICY_EAGER)
        seg = vma.segments[0]
        va = vma.vbase + 0x1234
        assert kernel.translate(p.asid, va).pa == va + seg.offset

    def test_unknown_policy_rejected(self, kernel):
        p = kernel.create_process("p")
        with pytest.raises(ValueError):
            kernel.mmap(p, MB, policy="bogus")

    def test_access_outside_vmas_faults(self, kernel):
        p = kernel.create_process("p")
        with pytest.raises(SegmentationViolation):
            kernel.translate(p.asid, 0xDEAD_0000_0000)

    def test_munmap_demand_frees_frames(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 64 * PAGE_SIZE, policy=POLICY_DEMAND)
        for i in range(4):
            kernel.translate(p.asid, vma.vbase + i * PAGE_SIZE)
        free_before = kernel.frames.free_frames()
        kernel.munmap(p, vma)
        assert kernel.frames.free_frames() == free_before + 4
        with pytest.raises(SegmentationViolation):
            kernel.translate(p.asid, vma.vbase)

    def test_munmap_eager_releases_segments(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 2 * MB, policy=POLICY_EAGER)
        live_before = kernel.segment_table.live_count()
        kernel.munmap(p, vma)
        assert kernel.segment_table.live_count() < live_before

    def test_munmap_merged_segment_shared_by_two_vmas(self, kernel):
        # Back-to-back eager mmaps merge into one segment when VA and PA
        # are both adjacent; the segment must survive until its LAST
        # referencing VMA is unmapped, and unmapping both must not
        # double-remove it or double-free its frames.
        p = kernel.create_process("p")
        vma1 = kernel.mmap(p, PAGE_SIZE, policy=POLICY_EAGER)
        vma2 = kernel.mmap(p, PAGE_SIZE, policy=POLICY_EAGER)
        merged = (len(vma1.segments) == 1 and len(vma2.segments) == 1
                  and vma1.segments[0] is vma2.segments[0])
        assert merged, "expected adjacency merge for back-to-back eager mmaps"
        seg = vma1.segments[0]
        kernel.munmap(p, vma1)
        assert kernel.segment_table.get(seg.seg_id) is seg  # still live
        kernel.munmap(p, vma2)  # must not raise
        frames = kernel.frames
        assert (frames.free_frames() + frames.allocated_frames()
                == frames.total_frames)
        # Fresh allocations after the teardown stay consistent (the
        # allocator must not merge into the removed segment).
        vma3 = kernel.mmap(p, PAGE_SIZE, policy=POLICY_EAGER)
        assert kernel.segment_table.get(vma3.segments[0].seg_id) is not None
        kernel.munmap(p, vma3)


class TestSharedMappings:
    def test_synonyms_share_physical(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vmas = kernel.mmap_shared([a, b], 1 * MB)
        va_a, va_b = vmas[a.asid].vbase, vmas[b.asid].vbase
        assert va_a != va_b  # true synonyms: different virtual names
        pa_a = kernel.translate(a.asid, va_a + 0x2345).pa
        pa_b = kernel.translate(b.asid, va_b + 0x2345).pa
        assert pa_a == pa_b

    def test_shared_pages_marked_in_filters_and_ptes(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vmas = kernel.mmap_shared([a, b], 16 * PAGE_SIZE)
        for p, vma in ((a, vmas[a.asid]), (b, vmas[b.asid])):
            assert p.synonym_filter.is_synonym_candidate(vma.vbase)
            kernel.translate(p.asid, vma.vbase)
            assert kernel.is_synonym_page(p.asid, vma.vbase)

    def test_private_pages_not_synonyms(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, MB, policy=POLICY_EAGER)
        kernel.translate(p.asid, vma.vbase)
        assert not kernel.is_synonym_page(p.asid, vma.vbase)


class TestStatusTransitions:
    def test_share_existing_pages_updates_everything(self, kernel):
        flushes = []
        shootdowns = []
        kernel.on_page_flush(lambda a, v, s: flushes.append((a, v, s)))
        kernel.on_shootdown(lambda a, v: shootdowns.append((a, v)))
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * PAGE_SIZE, policy=POLICY_DEMAND)
        for i in range(8):
            kernel.translate(p.asid, vma.vbase + i * PAGE_SIZE)
        kernel.share_existing_pages(p, vma.vbase, 4 * PAGE_SIZE)
        assert p.synonym_filter.is_synonym_candidate(vma.vbase)
        assert kernel.is_synonym_page(p.asid, vma.vbase)
        assert not kernel.is_synonym_page(p.asid, vma.vbase + 5 * PAGE_SIZE)
        assert len(flushes) == 4
        assert len(shootdowns) == 4

    def test_share_readonly_remaps_to_one_frame(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vma_a = kernel.mmap(a, 4 * PAGE_SIZE, policy=POLICY_DEMAND)
        vma_b = kernel.mmap(b, 4 * PAGE_SIZE, policy=POLICY_DEMAND)
        kernel.translate(a.asid, vma_a.vbase)
        kernel.translate(b.asid, vma_b.vbase)
        canonical = kernel.translate(a.asid, vma_a.vbase).pa
        kernel.share_readonly([(a, vma_a.vbase), (b, vma_b.vbase)],
                              page_base(canonical))
        ta = kernel.translate(a.asid, vma_a.vbase)
        tb = kernel.translate(b.asid, vma_b.vbase)
        assert page_base(ta.pa) == page_base(tb.pa) == page_base(canonical)
        assert ta.permissions == PERM_READ
        # r/o content sharing does NOT mark synonym filters (Section III-D).
        assert not a.synonym_filter.is_synonym_candidate(vma_a.vbase)

    def test_cow_fault_gives_private_rw_page(self, kernel):
        a = kernel.create_process("a")
        vma = kernel.mmap(a, 4 * PAGE_SIZE, policy=POLICY_DEMAND)
        kernel.translate(a.asid, vma.vbase)
        old_pa = kernel.translate(a.asid, vma.vbase).pa
        new_base = kernel.handle_cow_fault(a, vma.vbase)
        t = kernel.translate(a.asid, vma.vbase)
        assert page_base(t.pa) == new_base
        assert page_base(t.pa) != page_base(old_pa)
        assert t.permissions == PERM_RW

    def test_filter_rebuild_triggered_by_saturation(self, kernel):
        p = kernel.create_process("p")
        # Force saturation by marking pages scattered across the whole
        # 48-bit space (consecutive regions would collapse into a small
        # hash subspace and never saturate the filter).
        from repro.common.rng import make_rng
        rng = make_rng(11)
        for _ in range(3000):
            p.record_shared_page(rng.randrange(0, 1 << 48) & ~0xFFF)
        assert p.synonym_filter.fill_ratio() > 0.5
        kernel._maybe_rebuild_filter(p)
        assert kernel.stats["filter_rebuilds"] == 1


class TestSegmentServices:
    def test_index_tree_follows_table(self, kernel):
        p = kernel.create_process("p")
        kernel.mmap(p, 2 * MB, policy=POLICY_EAGER)
        tree = kernel.current_index_tree()
        seg = kernel.segment_table.segments_sorted()[0]
        assert tree.lookup(p.asid, seg.vbase).seg_id == seg.seg_id

    def test_segment_lookup(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 2 * MB, policy=POLICY_EAGER)
        seg = kernel.segment_lookup(p.asid, vma.vbase + 100)
        assert seg.contains(vma.vbase + 100)

    def test_pte_path_resolves_faults(self, kernel):
        p = kernel.create_process("p")
        vma = kernel.mmap(p, MB, policy=POLICY_DEMAND)
        path = kernel.pte_path(p.asid, vma.vbase)
        assert len(path) == 4
