"""Tests for pattern primitives, workload specs, and the catalog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.common.rng import make_rng
from repro.osmodel import Kernel
from repro.workloads import (
    FIG4_WORKLOADS,
    SYNONYM_WORKLOADS,
    TABLE3_WORKLOADS,
    LaidOutWorkload,
    all_specs,
    build_pattern,
    names,
    spec,
)
from repro.workloads.trace import interleave_round_robin, take

MB = 1024 * 1024


class TestPatterns:
    @pytest.mark.parametrize("kind", ["sequential", "strided", "random",
                                      "zipf", "chase"])
    def test_offsets_in_bounds(self, kind):
        gen = build_pattern(kind, make_rng(1), length=1 * MB)
        for _ in range(500):
            offset = gen()
            assert 0 <= offset < 1 * MB

    @pytest.mark.parametrize("kind", ["sequential", "random", "zipf", "chase"])
    def test_touch_fraction_respected(self, kind):
        gen = build_pattern(kind, make_rng(1), length=1 * MB,
                            touch_fraction=0.25)
        for _ in range(500):
            assert gen() < 0.26 * MB

    def test_sequential_is_monotone_with_wrap(self):
        gen = build_pattern("sequential", make_rng(1), length=4096, stride=64)
        offsets = [gen() for _ in range(64)]
        deltas = [(b - a) % 4096 for a, b in zip(offsets, offsets[1:])]
        assert all(d == 64 for d in deltas)

    def test_zipf_skewed_popularity(self):
        gen = build_pattern("zipf", make_rng(1), length=4 * MB, theta=1.0)
        pages = [gen() >> 12 for _ in range(4000)]
        from collections import Counter
        counts = Counter(pages).most_common()
        top_share = sum(c for _p, c in counts[:10]) / len(pages)
        assert top_share > 0.15  # heavily skewed

    def test_random_covers_region(self):
        gen = build_pattern("random", make_rng(1), length=64 * 4096)
        pages = {gen() >> 12 for _ in range(2000)}
        assert len(pages) > 48  # most pages touched

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_pattern("bogus", make_rng(1), 100)

    @settings(max_examples=20)
    @given(st.sampled_from(["sequential", "random", "zipf", "chase"]),
           st.integers(min_value=4096, max_value=1 << 24))
    def test_bounds_property(self, kind, length):
        gen = build_pattern(kind, make_rng(3), length=length)
        for _ in range(50):
            assert 0 <= gen() < length


class TestCatalog:
    def test_named_groups_resolve(self):
        for group in (FIG4_WORKLOADS, TABLE3_WORKLOADS, SYNONYM_WORKLOADS):
            for name in group:
                assert spec(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec("not-a-workload")

    def test_all_specs_consistent(self):
        assert sorted(names()) == sorted(s.name for s in all_specs())

    def test_synonym_specs_have_sharing(self):
        for name in SYNONYM_WORKLOADS:
            s = spec(name)
            assert s.sharing is not None
            assert 0 < s.sharing.area_fraction <= 1
            assert 0 < s.sharing.access_fraction <= 1

    def test_weights_positive(self):
        for s in all_specs():
            assert all(m.weight > 0 for m in s.patterns)

    def test_gap_matches_mem_ratio(self):
        s = spec("gups")
        assert s.gap == round(1 / s.mem_ratio) - 1
        assert s.instructions_for(1000) == 1000 * (1 + s.gap)


class TestLaidOutWorkload:
    def test_private_layout_covers_footprint(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("omnetpp"), kernel)
        total = sum(v.length for v in w.private_vmas[w.processes[0].asid])
        assert total >= spec("omnetpp").footprint_bytes

    def test_trace_deterministic(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("mcf"), kernel, seed=7)
        a = [(r.va, r.is_write) for r in w.trace(200, seed=9)]
        b = [(r.va, r.is_write) for r in w.trace(200, seed=9)]
        assert a == b

    def test_different_seeds_differ(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("mcf"), kernel, seed=7)
        a = [r.va for r in w.trace(100, seed=1)]
        b = [r.va for r in w.trace(100, seed=2)]
        assert a != b

    def test_trace_addresses_mapped(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("xalancbmk"), kernel)
        for record in w.trace(300):
            translation = kernel.translate(record.asid, record.va)
            assert translation.pa is not None

    def test_sharing_layout(self):
        kernel = Kernel(SystemConfig())
        s = spec("postgres")
        w = LaidOutWorkload(s, kernel)
        assert len(w.processes) == s.sharing.processes
        assert w.shared_area_fraction() == pytest.approx(
            s.sharing.area_fraction, rel=0.05)

    def test_shared_access_fraction_approximated(self):
        kernel = Kernel(SystemConfig())
        s = spec("postgres")
        w = LaidOutWorkload(s, kernel)
        shared_bases = {v.vbase: v for v in w.shared_vmas.values()}
        hits = 0
        n = 3000
        for record in w.trace(n):
            vma = w.shared_vmas.get(record.asid)
            if vma and vma.vbase <= record.va < vma.vbase + vma.length:
                hits += 1
        assert hits / n == pytest.approx(s.sharing.access_fraction, abs=0.03)

    def test_fragmented_profile_creates_many_segments(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("memcached"), kernel)
        assert w.live_segments() > 32  # exceeds RMM capacity

    def test_single_allocation_few_segments(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("gups"), kernel)
        assert w.live_segments() <= 4

    def test_multiprocess_round_robin(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("ferret"), kernel)
        asids = [r.asid for r in w.trace(8)]
        assert len(set(asids[:4])) == 4  # all four processes appear


class TestTraceHelpers:
    def test_take(self):
        kernel = Kernel(SystemConfig())
        w = LaidOutWorkload(spec("stream"), kernel)
        assert len(list(take(w.trace(100), 10))) == 10

    def test_interleave_round_robin(self):
        kernel = Kernel(SystemConfig())
        w1 = LaidOutWorkload(spec("stream"), kernel, seed=1)
        w2 = LaidOutWorkload(spec("gups"), kernel, seed=2)
        merged = list(interleave_round_robin([w1.trace(10), w2.trace(10)]))
        assert len(merged) == 20
        assert merged[0].asid != merged[1].asid
