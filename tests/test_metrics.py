"""Tests for live telemetry: registry, exposition, heartbeats, store."""

from __future__ import annotations

import io
import json
import queue
import time
import urllib.request

import pytest

from repro.bench.gate import GateReport, MetricDelta, attach_history
from repro.exec import ParallelExecutor, SerialExecutor
from repro.exec.job import Job, JobError
from repro.exec.plan import ExperimentPlan
from repro.obs.heartbeat import (BeatSpec, Heartbeat, HeartbeatMonitor,
                                 HeartbeatPulse, LiveStatus,
                                 open_beat_channel)
from repro.obs.metrics import (METRICS_SCHEMA, NULL_METRICS, MetricsRegistry,
                               MetricsServer, NullMetrics, SnapshotLog,
                               fold_plan, fold_result, render_prometheus)
from repro.obs.store import MetricsStore, format_runs, format_trend, run_key
from repro.sim import run_workload

FAST = dict(accesses=600, warmup=200)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "hit count")
        c.inc(mmu="baseline")
        c.inc(3, mmu="baseline")
        c.inc(mmu="hybrid")
        assert c.get(mmu="baseline") == 4
        assert c.get(mmu="hybrid") == 1
        assert c.get(mmu="never") == 0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("ipc")
        g.set(0.5, job="a")
        g.set(0.7, job="a")
        assert g.get(job="a") == 0.7

    def test_family_constructors_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.get(a="1", b="2") == 2

    def test_snapshot_sorted_and_deterministic(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name).inc(name=name)
            return reg
        a = build(["zeta", "alpha"])
        b = build(["alpha", "zeta"])
        assert (json.dumps(a.snapshot(), sort_keys=True)
                == json.dumps(b.snapshot(), sort_keys=True))
        assert list(a.snapshot()) == ["alpha", "zeta"]

    def test_reset_and_remove(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("b").inc()
        reg.remove("a")
        assert list(reg.snapshot()) == ["b"]
        reg.remove("missing")          # no-op, no raise
        reg.reset()
        assert reg.snapshot() == {}

    def test_histogram_family(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(5, stage="l1")
        h.observe(9, stage="l1")
        snap = reg.snapshot()["lat"]
        assert snap["kind"] == "histogram"
        assert snap["series"][0]["histogram"]["count"] == 2

    def test_null_metrics_is_inert(self):
        null = NullMetrics()
        assert not null.enabled
        assert NULL_METRICS.counter("x") is NULL_METRICS
        null.counter("x").inc(5, a="b")
        null.gauge("y").set(1.0)
        null.histogram("z").observe(3)
        null.remove("x")
        assert null.snapshot() == {}


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #

class TestPrometheus:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "hits").inc(7, mmu="baseline")
        text = render_prometheus(reg)
        assert "# HELP repro_hits_total hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{mmu="baseline"} 7' in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(**{"path": 'a\\b"c\nd'})
        text = render_prometheus(reg)
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert "\n\n" not in text          # the newline was escaped

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", "line1\nline2")
        assert "# HELP x line1\\nline2" in render_prometheus(reg)

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1, 2, 3, 5, 100):
            h.observe(v)
        text = render_prometheus(reg)
        lines = [ln for ln in text.splitlines() if ln.startswith("lat_")]
        bucket_counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines
                        if ln.startswith("lat_bucket")]
        # Cumulative: never decreasing, ends at the total count.
        assert bucket_counts == sorted(bucket_counts)
        assert 'le="+Inf"} 5' in text
        assert "lat_sum 111" in text
        assert "lat_count 5" in text

    def test_float_values_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(0.1)
        line = [ln for ln in render_prometheus(reg).splitlines()
                if ln.startswith("g ")][0]
        assert float(line.split(" ")[1]) == 0.1


# --------------------------------------------------------------------- #
# Snapshot log + HTTP endpoint
# --------------------------------------------------------------------- #

class TestSnapshotLog:
    def test_appends_schema_stable_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with SnapshotLog(path) as log:
            log.append(reg, ts=1.0)
            reg.counter("x").inc()
            log.append(reg, ts=2.0)
            assert log.appended == 2
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert [d["ts"] for d in docs] == [1.0, 2.0]
        assert all(d["schema"] == METRICS_SCHEMA for d in docs)
        assert docs[-1]["metrics"]["x"]["series"][0]["value"] == 2

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"old": true}\n')
        with SnapshotLog(path) as log:
            log.append(MetricsRegistry(), ts=1.0)
        assert len(path.read_text().splitlines()) == 2


class TestMetricsServer:
    def test_scrape_text_and_json(self):
        reg = MetricsRegistry()
        reg.counter("repro_up", "liveness").inc()
        with MetricsServer(reg, port=0) as server:
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                body = resp.read().decode("utf-8")
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert body == render_prometheus(reg)
            with urllib.request.urlopen(f"{base}/metrics.json") as resp:
                doc = json.loads(resp.read())
            assert doc["repro_up"]["series"][0]["value"] == 1

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope")
            assert err.value.code == 404

    def test_scrape_sees_live_updates(self):
        reg = MetricsRegistry()
        with MetricsServer(reg, port=0) as server:
            url = f"http://{server.host}:{server.port}/metrics"
            assert urllib.request.urlopen(url).read() == b""
            reg.counter("x").inc()
            assert b"x 1" in urllib.request.urlopen(url).read()


# --------------------------------------------------------------------- #
# Deterministic folds
# --------------------------------------------------------------------- #

class TestFold:
    def test_fold_result_exports_stats_and_stages(self):
        result = run_workload("gups", "hybrid_segments", **FAST)
        reg = MetricsRegistry()
        fold_result(reg, result, "fp")
        labels = dict(workload=result.workload, mmu=result.mmu)
        assert (reg.counter("repro_accesses_total").get(**labels)
                == result.accesses)
        assert reg.gauge("repro_ipc").get(job="fp", **labels) == result.ipc
        snap = reg.snapshot()
        stat_rows = snap["repro_stat_total"]["series"]
        groups = {row["labels"]["group"] for row in stat_rows}
        assert {g for g, counters in result.stats.items()
                if counters} <= groups
        assert sum(row["value"] for row
                   in snap["repro_stage_cycles_total"]["series"]) \
            == sum(result.cycle_breakdown.values())

    def test_fold_plan_statuses(self):
        jobs = [Job(workload="gups", mmu="baseline", seed=1, **FAST),
                Job(workload="gups", mmu="hybrid_tlb", seed=1, **FAST)]
        results = {j.fingerprint(): run_workload(
            "gups", j.mmu, seed=1, **FAST) for j in jobs}
        bad = Job(workload="gups", mmu="ideal", seed=1, **FAST)
        outcomes = dict(results)
        outcomes[bad.fingerprint()] = JobError(
            fingerprint=bad.fingerprint(), workload="gups", mmu="ideal",
            error_type="RuntimeError", message="boom", traceback="")
        reg = MetricsRegistry()
        fold_plan(reg, jobs + [bad], outcomes,
                  cached=[jobs[0].fingerprint()])
        totals = reg.counter("repro_jobs_total")
        assert totals.get(status="cached") == 1
        assert totals.get(status="ran") == 1
        assert totals.get(status="error") == 1

    def test_final_snapshot_identical_serial_vs_parallel(self):
        """The metric-identity guarantee: the end-of-plan registry is a
        pure function of the outcomes, byte-identical however the jobs
        were scheduled — heartbeats and live gauges included."""
        def jobs():
            return [Job(workload="gups", mmu=m, seed=1, **FAST)
                    for m in ("baseline", "hybrid_tlb", "hybrid_segments")]

        rendered = {}
        for label, executor, parallel in (
                ("serial", SerialExecutor(), False),
                ("parallel", ParallelExecutor(workers=4), True)):
            reg = MetricsRegistry()
            channel, manager = open_beat_channel(parallel)
            monitor = HeartbeatMonitor(channel, registry=reg).start()
            try:
                ExperimentPlan(jobs()).run(
                    executor=executor, metrics=reg,
                    beat=BeatSpec(queue=channel, every=100))
            finally:
                monitor.stop()
                if manager is not None:
                    manager.shutdown()
            assert monitor.beats_seen > 0
            rendered[label] = (
                json.dumps(reg.snapshot(), sort_keys=True),
                render_prometheus(reg))
        assert rendered["serial"][0] == rendered["parallel"][0]
        assert rendered["serial"][1] == rendered["parallel"][1]

    def test_monitor_stop_wipes_live_gauges(self):
        channel = queue.Queue()
        reg = MetricsRegistry()
        monitor = HeartbeatMonitor(channel, registry=reg)
        monitor.ingest(Heartbeat(job="f", workload="w", mmu="m", done=10,
                                 total=100, instructions=20, cycles=40.0,
                                 wall_s=0.1))
        assert "repro_worker_accesses" in reg.snapshot()
        monitor.stop()
        assert reg.snapshot() == {}
        assert monitor.statuses["f"].done == 10     # table survives


# --------------------------------------------------------------------- #
# Heartbeats
# --------------------------------------------------------------------- #

class TestHeartbeat:
    def test_simulator_emits_pulses(self):
        channel = queue.Queue()
        job = Job(workload="gups", mmu="baseline", seed=1, **FAST)
        spec = BeatSpec(queue=channel, every=100)
        from repro.exec.executors import run_job
        result = run_job(job, beat=spec)
        beats = []
        while not channel.empty():
            beats.append(channel.get_nowait())
        assert len(beats) == FAST["accesses"] // 100 + 1   # + final beat
        assert [b.done for b in beats[:-1]] == [100, 200, 300, 400, 500, 600]
        assert all(b.total == FAST["accesses"] for b in beats[:-1])
        final = beats[-1]
        assert final.final and final.ok
        assert final.done == result.accesses
        assert final.instructions == result.instructions

    def test_failed_job_emits_final_not_ok_beat(self):
        channel = queue.Queue()
        job = Job(workload="gups", mmu="no_such_mmu", seed=1, **FAST)
        from repro.exec.executors import run_job
        outcome = run_job(job, beat=BeatSpec(queue=channel, every=100))
        assert isinstance(outcome, JobError)
        final = None
        while not channel.empty():
            final = channel.get_nowait()
        assert final is not None and final.final and not final.ok

    def test_pulse_never_raises_on_closed_channel(self):
        class Broken:
            def put_nowait(self, item):
                raise OSError("closed")
        pulse = HeartbeatPulse(Broken(),
                               Job(workload="gups", mmu="baseline", **FAST))
        pulse(100, 600, 200, 400.0)
        pulse.finish(600, 1200, 2400.0)

    def test_staleness_pure_logic(self):
        monitor = HeartbeatMonitor(queue.Queue(), stale_after=30.0)
        beat = Heartbeat(job="f", workload="w", mmu="m", done=1, total=10,
                        instructions=2, cycles=4.0, wall_s=0.1)
        monitor.ingest(beat, now=100.0)
        assert monitor.check_stale(now=120.0) == []
        found = monitor.check_stale(now=131.0)
        assert [f.status.job for f in found] == ["f"]
        assert found[0].silent_s == pytest.approx(31.0)
        # Flagged once per silence episode.
        assert monitor.check_stale(now=200.0) == []
        # A fresh beat un-stales; renewed silence re-trips.
        monitor.ingest(beat, now=210.0)
        assert not monitor.statuses["f"].stale
        assert len(monitor.check_stale(now=250.0)) == 1

    def test_final_beat_never_goes_stale(self):
        monitor = HeartbeatMonitor(queue.Queue(), stale_after=1.0)
        monitor.ingest(Heartbeat(job="f", workload="w", mmu="m", done=10,
                                 total=10, instructions=1, cycles=1.0,
                                 wall_s=0.1, final=True), now=0.0)
        assert monitor.check_stale(now=1000.0) == []

    def test_stalled_worker_detected_live(self):
        """A worker that beats once and then goes silent is flagged by
        the monitor thread within a few stale periods."""
        channel = queue.Queue()
        findings = []
        monitor = HeartbeatMonitor(channel, stale_after=0.1,
                                   on_stale=findings.append, poll_s=0.02)
        monitor.start()
        try:
            channel.put(Heartbeat(job="stuck", workload="w", mmu="m",
                                  done=5, total=100, instructions=10,
                                  cycles=20.0, wall_s=0.05))
            deadline = time.monotonic() + 5.0
            while not findings and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            monitor.stop()
        assert findings and findings[0].status.job == "stuck"
        assert monitor.statuses["stuck"].stale

    def test_throughput_and_running(self):
        monitor = HeartbeatMonitor(queue.Queue(), clock=lambda: 0.0)
        monitor._started_at = 0.0
        monitor.ingest(Heartbeat(job="a", workload="w", mmu="m", done=300,
                                 total=600, instructions=1, cycles=1.0,
                                 wall_s=1.0), now=1.0)
        monitor.ingest(Heartbeat(job="b", workload="w", mmu="m", done=600,
                                 total=600, instructions=1, cycles=1.0,
                                 wall_s=2.0, final=True), now=2.0)
        assert monitor.throughput(now=2.0) == pytest.approx(450.0)
        assert [s.job for s in monitor.running()] == ["a"]

    def test_open_beat_channel_serial_is_plain_queue(self):
        channel, manager = open_beat_channel(parallel=False)
        assert manager is None
        assert isinstance(channel, queue.Queue)


class TestLiveStatus:
    def test_line_contents(self):
        stream = io.StringIO()
        live = LiveStatus(stream=stream)
        live.job_done(1, 4, "ok")
        live.job_done(2, 4, "cached")
        live.job_done(3, 4, "error")
        monitor = HeartbeatMonitor(queue.Queue(), clock=lambda: 2.0)
        monitor._started_at = 0.0
        monitor.ingest(Heartbeat(job="a", workload="w", mmu="m", done=500,
                                 total=1000, instructions=1, cycles=1.0,
                                 wall_s=1.0), now=1.0)
        monitor.statuses["a"].stale = True
        line = live.line(monitor)
        assert "jobs 3/4" in line
        assert "1 cached" in line and "1 failed" in line
        assert "1 running" in line and "1 STALE" in line
        assert "acc/s" in line

    def test_update_rewrites_in_place_and_finish_latches(self):
        stream = io.StringIO()
        live = LiveStatus(stream=stream)
        live.job_done(1, 2, "ok")
        live.update()
        live.finish()
        text = stream.getvalue()
        assert text.startswith("\r")
        assert text.endswith("\n")
        live.update()                       # latched: no further writes
        assert stream.getvalue() == text

    def test_disabled_never_writes(self):
        stream = io.StringIO()
        live = LiveStatus(stream=stream, enabled=False)
        live.update()
        live.finish()
        assert stream.getvalue() == ""


# --------------------------------------------------------------------- #
# Cross-run store
# --------------------------------------------------------------------- #

def _result_doc(mmu="hybrid_segments", seed=1):
    return run_workload("gups", mmu, seed=seed, **FAST).to_json_dict()


class TestStore:
    def test_ingest_result_and_query(self, tmp_path):
        doc = _result_doc()
        with MetricsStore(tmp_path / "db.sqlite") as store:
            keys = store.ingest(doc, source="test")
            assert len(keys) == 1
            rows = store.query()
            assert len(rows) == 1
            assert rows[0].run_key == keys[0]
            assert rows[0].metrics["ipc"] == pytest.approx(doc["ipc"])
            assert "tlb_bypass_rate" in rows[0].metrics

    def test_reingest_is_idempotent(self, tmp_path):
        doc = _result_doc()
        with MetricsStore(tmp_path / "db.sqlite") as store:
            first = store.ingest(doc)
            second = store.ingest(doc)
            assert first == second
            assert len(store) == 1

    def test_run_key_depends_on_identity(self):
        assert run_key({"seed": 1}) != run_key({"seed": 2})
        assert run_key({"a": 1, "b": 2}) == run_key({"b": 2, "a": 1})

    def test_ingest_compare_document(self, tmp_path):
        doc = {"schema": "repro.compare/v1",
               "results": {"baseline": _result_doc("baseline"),
                           "hybrid_tlb": _result_doc("hybrid_tlb")}}
        with MetricsStore(tmp_path / "db.sqlite") as store:
            assert len(store.ingest(doc)) == 2
            assert len(store.query(mmu="baseline")) == 1

    def test_ingest_bench_baseline(self, tmp_path):
        doc = {"schema": "repro.bench/v2",
               "meta": {"generated_unix": 1_700_000_000.0},
               "benchmarks": [{"name": "b1", "workload": "gups",
                               "mmu": "hybrid_segments", "fingerprint": "f1",
                               "seconds": 1.5, "metrics": {"ipc": 0.5}}]}
        with MetricsStore(tmp_path / "db.sqlite") as store:
            assert store.ingest(doc) == ["f1"]
            row = store.query()[0]
            assert row.metrics == {"ipc": 0.5, "seconds": 1.5}

    def test_unknown_schema_rejected(self, tmp_path):
        with MetricsStore(tmp_path / "db.sqlite") as store:
            with pytest.raises(ValueError, match="cannot ingest"):
                store.ingest({"schema": "repro.nope/v9"})

    def test_result_without_manifest_rejected(self, tmp_path):
        doc = _result_doc()
        doc.pop("manifest", None)
        with MetricsStore(tmp_path / "db.sqlite") as store:
            with pytest.raises(ValueError, match="manifest"):
                store.ingest(doc)

    def test_trend_and_metric_history(self, tmp_path):
        with MetricsStore(tmp_path / "db.sqlite") as store:
            for seed in (1, 2, 3):
                store.ingest(_result_doc(seed=seed))
            history = store.trend("ipc", workload="gups")
            assert len(history) == 3
            values = store.metric_history("gups", history[0][0].mmu,
                                          "ipc", limit=2)
            assert len(values) == 2
            assert values == [v for _, v in history[-2:]]
            assert "ipc" in store.metric_names()

    def test_format_helpers(self, tmp_path):
        with MetricsStore(tmp_path / "db.sqlite") as store:
            store.ingest(_result_doc())
            table = format_runs(store.query(), metric="ipc")
            assert "| run |" in table and "gups" in table
            trend = format_trend(store.trend("ipc"), "ipc")
            assert trend.startswith("ipc:")
        assert format_runs([]) == "(no runs recorded)"
        assert "no history" in format_trend([], "ipc")

    def test_trend_order_independent_of_ingest_order(self, tmp_path):
        """Trend rows follow started-at (then config), not ingest time."""
        docs = []
        for day, seed in enumerate((1, 2, 3), start=1):
            doc = _result_doc(seed=seed)
            doc["manifest"]["started_at"] = f"2026-08-0{day}T00:00:00"
            docs.append(doc)
        orders = []
        for tag, sequence in (("fwd", docs), ("rev", list(reversed(docs)))):
            with MetricsStore(tmp_path / f"{tag}.sqlite") as store:
                for doc in sequence:
                    store.ingest(doc)
                history = store.trend("ipc")
            orders.append([run.run_key for run, _ in history])
            stamps = [run.started_at for run, _ in history]
            assert stamps == sorted(stamps)
        assert orders[0] == orders[1]

    def test_format_trend_single_point_draws_flat_spark(self, tmp_path):
        from repro.sim.report import spark_line

        with MetricsStore(tmp_path / "db.sqlite") as store:
            store.ingest(_result_doc())
            trend = format_trend(store.trend("ipc"), "ipc")
        assert "n=1" in trend
        assert spark_line([1.0]) in trend   # mid-height block, not bottom


class TestAttachHistory:
    def test_attaches_matching_history(self):
        class FakeStore:
            def metric_history(self, workload, mmu, metric, limit=5):
                assert (workload, mmu) == ("gups", "hybrid_segments")
                return [0.5, 0.6] if metric == "ipc" else []

        report = GateReport(threshold_pct=10.0, seconds_threshold_pct=None)
        report.deltas = [
            MetricDelta(benchmark="b1", metric="ipc", baseline=0.5,
                        current=0.6, change_pct=20.0, regressed=False,
                        improved=True, gated=True),
            MetricDelta(benchmark="b1", metric="cycles", baseline=1.0,
                        current=1.0, change_pct=0.0, regressed=False,
                        improved=False, gated=True)]
        current = {"benchmarks": [{"name": "b1", "workload": "gups",
                                   "mmu": "hybrid_segments"}]}
        attach_history(report, current, FakeStore())
        assert report.deltas[0].history == [0.5, 0.6]
        assert report.deltas[1].history is None
        markdown = report.to_markdown()
        assert "history" in markdown and "0.5→0.6" in markdown
        doc = report.to_json_dict()
        assert doc["deltas"][0]["history"] == [0.5, 0.6]

    def test_markdown_without_history_has_no_column(self):
        report = GateReport(threshold_pct=10.0, seconds_threshold_pct=None)
        report.deltas = [
            MetricDelta(benchmark="b1", metric="ipc", baseline=0.5,
                        current=0.5, change_pct=0.0, regressed=False,
                        improved=False, gated=True)]
        assert "history" not in report.to_markdown()


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #

CLI_FAST = ["--accesses", "600", "--warmup", "200"]


class TestCliTelemetry:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_run_with_live_telemetry(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "metrics.jsonl"
        assert main(["run", "gups", "hybrid_segments", "--live",
                     "--metrics-port", "0", "--metrics-out", str(out)]
                    + CLI_FAST) == 0
        captured = capsys.readouterr()
        assert "serving /metrics on http://127.0.0.1:" in captured.err
        assert "1 ran, 0 cached, 0 failed" in captured.err
        lines = out.read_text().splitlines()
        doc = json.loads(lines[-1])
        assert doc["schema"] == METRICS_SCHEMA
        assert "repro_jobs_total" in doc["metrics"]
        # Live worker gauges never survive into the final snapshot.
        assert "repro_worker_accesses" not in doc["metrics"]

    def test_progress_distinguishes_ran_and_cached(self, tmp_path, capsys):
        from repro.cli import main
        cmd = ["run", "gups", "baseline",
               "--cache-dir", str(tmp_path / "cache")] + CLI_FAST
        assert main(cmd) == 0
        first = capsys.readouterr().err
        assert "gups/baseline ran" in first
        assert "1 ran, 0 cached, 0 failed" in first
        assert main(cmd) == 0
        second = capsys.readouterr().err
        assert "gups/baseline cached" in second
        assert "0 ran, 1 cached, 0 failed" in second

    def test_db_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        doc_path = tmp_path / "run.json"
        db_path = tmp_path / "hist.sqlite"
        assert main(["run", "gups", "hybrid_segments", "--json"]
                    + CLI_FAST) == 0
        doc_path.write_text(capsys.readouterr().out)
        assert main(["db", "ingest", "--db", str(db_path),
                     str(doc_path)]) == 0
        assert "ingested 1 run(s)" in capsys.readouterr().out
        assert main(["db", "query", "--db", str(db_path),
                     "--metric", "ipc"]) == 0
        assert "gups" in capsys.readouterr().out
        assert main(["db", "trend", "--db", str(db_path),
                     "--metric", "ipc"]) == 0
        assert capsys.readouterr().out.startswith("ipc:")

    def test_db_ingest_bad_file_fails(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["db", "ingest", "--db", str(tmp_path / "db.sqlite"),
                     str(bad)]) == 1
        assert "bad.json" in capsys.readouterr().err

    def test_db_trend_requires_metric(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--metric"):
            main(["db", "trend", "--db", str(tmp_path / "db.sqlite")])

    def test_bench_check_db_accrues_history(self, tmp_path, capsys):
        from repro.cli import main
        baseline = tmp_path / "baseline.json"
        db_path = tmp_path / "hist.sqlite"
        assert main(["bench", "record", "--out", str(baseline),
                     "--accesses", "600", "--warmup", "200"]) == 0
        capsys.readouterr()
        assert main(["bench", "check", "--baseline", str(baseline),
                     "--db", str(db_path)]) == 0
        capsys.readouterr()
        # Second check: the first check's ingest is now history.
        assert main(["bench", "check", "--baseline", str(baseline),
                     "--db", str(db_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"]
        assert any(d.get("history") for d in report["deltas"])


class TestRegistryConcurrency:
    """Writers hammer labeled series while a scraper renders: totals must
    come out exact and every individual scrape internally consistent
    (the torn-read pin for :meth:`MetricFamily.series` histogram copies).
    """

    WRITERS = 8
    OPS = 2_000

    def test_hammered_registry_keeps_exact_totals_and_clean_scrapes(self):
        import re
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("repro_stress_total", "stress counter")
        hist = registry.histogram("repro_stress_ms", "stress histogram")
        stop = threading.Event()
        scrapes: list[str] = []
        errors: list[BaseException] = []

        def scraper() -> None:
            try:
                while not stop.is_set():
                    scrapes.append(render_prometheus(registry))
                    json.dumps(registry.snapshot())   # must never tear
            except BaseException as exc:              # pragma: no cover
                errors.append(exc)

        def writer(tid: int) -> None:
            try:
                for i in range(self.OPS):
                    counter.inc(thread=str(tid))      # per-thread series
                    counter.inc(amount=2)             # one contended series
                    hist.observe(i % 512)
            except BaseException as exc:              # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(tid,))
                   for tid in range(self.WRITERS)]
        scrape_thread = threading.Thread(target=scraper)
        scrape_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stop.set()
        scrape_thread.join(timeout=30)

        assert not errors, errors[:3]
        assert scrapes, "scraper never ran"
        # Exact totals: not one increment lost or double-counted.
        assert counter.get() == 2 * self.WRITERS * self.OPS
        for tid in range(self.WRITERS):
            assert counter.get(thread=str(tid)) == self.OPS
        (_, snapshot), = hist.series()
        assert snapshot.count == self.WRITERS * self.OPS
        assert snapshot.total == self.WRITERS * sum(i % 512
                                                    for i in range(self.OPS))
        # Every mid-run scrape is internally consistent: the +Inf bucket
        # equals _count, and buckets are cumulative (monotone).
        bucket_re = re.compile(
            r'repro_stress_ms_bucket\{le="([^"]+)"\} (\d+)')
        count_re = re.compile(r"repro_stress_ms_count (\d+)")
        checked = 0
        for text in scrapes:
            count = count_re.search(text)
            if count is None:
                continue                 # scraped before first observe
            buckets = bucket_re.findall(text)
            assert buckets[-1][0] == "+Inf"
            assert buckets[-1][1] == count.group(1)
            values = [int(value) for _, value in buckets]
            assert values == sorted(values)
            checked += 1
        assert checked > 0
