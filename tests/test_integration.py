"""Integration tests: the paper's qualitative claims, end to end.

These run small simulations and assert the *shape* of the paper's
results — ordering relations between configurations — rather than exact
numbers (see EXPERIMENTS.md for the quantitative comparison).
"""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.common.rng import make_rng
from repro.core import ConventionalMmu, HybridMmu, IdealMmu
from repro.energy import EnergyModel
from repro.osmodel import Kernel
from repro.sim import Simulator, compare_configs, lay_out, run_workload

MB = 1024 * 1024
SMALL = dict(accesses=5000, warmup=2000)


class TestPerformanceOrdering:
    def test_hybrid_between_baseline_and_ideal_on_tlb_hostile(self):
        row = compare_configs("gups", mmu_names=("baseline", "hybrid_segments",
                                                 "ideal"), **SMALL)
        n = row.normalized()
        assert n["ideal"] >= n["hybrid_segments"] >= 1.0

    def test_segment_cache_helps(self):
        row = compare_configs(
            "gups", mmu_names=("baseline", "hybrid_segments",
                               "hybrid_segments_nosc"), **SMALL)
        n = row.normalized()
        assert n["hybrid_segments"] >= n["hybrid_segments_nosc"]

    def test_many_segments_beat_delayed_tlb_on_huge_working_set(self):
        row = compare_configs("gups", mmu_names=("baseline", "hybrid_tlb",
                                                 "hybrid_segments"), **SMALL)
        n = row.normalized()
        assert n["hybrid_segments"] > n["hybrid_tlb"]


class TestSynonymClaims:
    def test_false_positive_rate_below_paper_bound(self):
        """Table II: false positives < 0.5% of accesses on every workload."""
        for name in ("postgres", "apache", "ferret"):
            config = dataclasses.replace(
                SystemConfig().with_llc_size(8 * MB), cores=4)
            kernel = Kernel(config)
            w = lay_out(name, kernel)
            mmu = HybridMmu(kernel, config, delayed="tlb")
            Simulator(mmu).run(w, accesses=6000, warmup=1000)
            assert mmu.false_positive_rate() < 0.005

    def test_tlb_access_reduction_matches_table2_shape(self):
        """postgres ~84%, low-sharing apps ~99% (Table II)."""
        reductions = {}
        for name in ("postgres", "apache"):
            config = dataclasses.replace(
                SystemConfig().with_llc_size(8 * MB), cores=4)
            kernel = Kernel(config)
            w = lay_out(name, kernel)
            mmu = HybridMmu(kernel, config, delayed="tlb")
            Simulator(mmu).run(w, accesses=6000, warmup=1000)
            reductions[name] = mmu.tlb_access_reduction()
        assert 0.75 < reductions["postgres"] < 0.90
        assert reductions["apache"] > 0.95

    def test_no_synonym_incoherence_under_random_mixed_traffic(self):
        """Stress: random reads/writes through multiple synonym mappings
        never produce two distinct physical names for one block."""
        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 32 * 4096)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        rng = make_rng(13)
        for _ in range(500):
            offset = rng.randrange(0, 32 * 4096) & ~7
            pa_a = mmu.access(0, a.asid, vmas[a.asid].vbase + offset,
                              rng.random() < 0.5).translated_pa
            pa_b = mmu.access(1, b.asid, vmas[b.asid].vbase + offset,
                              rng.random() < 0.5).translated_pa
            assert pa_a == pa_b


class TestEnergyClaims:
    def test_translation_energy_reduced_substantially(self):
        """The paper's -60% translation power claim (±wide band: our
        constants are CACTI-class estimates and our traces shorter; the
        direction and rough magnitude are what is asserted here, the
        full-scale numbers live in benchmarks/test_fig11_energy.py)."""
        energy = EnergyModel()
        reductions = []
        accesses, warmup = 6000, 30000
        from repro.workloads import spec as wspec
        for name in ("omnetpp", "astar", "stream"):
            base = run_workload(name, "baseline", accesses=accesses,
                                warmup=warmup)
            hybrid = run_workload(name, "hybrid_tlb", accesses=accesses,
                                  warmup=warmup)
            # Structure counters cover warmup + timed; use the matching
            # instruction count for the per-fetch probes.
            fetches = wspec(name).instructions_for(accesses + warmup)
            b = energy.baseline_translation_energy(
                base.stats, instruction_fetches=fetches)
            h = energy.hybrid_translation_energy(
                hybrid.stats, instruction_fetches=fetches)
            extra = energy.tag_extension_energy(hybrid.stats)
            reductions.append(energy.reduction(b, h, proposed_extra=extra))
        average = sum(reductions) / len(reductions)
        assert average > 0.35


class TestDelayedTranslationClaims:
    def test_llc_filters_translation_requests(self):
        """Section II-A: cache-resident data needs no translation."""
        result = run_workload("omnetpp", "hybrid_tlb", **SMALL)
        delayed_lookups = result.counter("delayed_tlb", "lookups")
        total_accesses = result.counter("hybrid", "accesses")  # incl. warmup
        assert delayed_lookups < total_accesses  # only LLC misses translate

    def test_bigger_llc_fewer_delayed_translations(self):
        # A strict cyclic sweep over 1.5 MB: a 1 MB LLC thrashes (LRU's
        # worst case) while an 8 MB LLC retains the whole loop, so delayed
        # translations collapse — capacity, not cold misses, decides.
        from repro.workloads import PatternMix, WorkloadSpec
        sweep = WorkloadSpec(
            name="llc_sweep",
            footprint_bytes=1536 * 1024,
            patterns=(PatternMix("sequential", 1.0, (("stride", 64),)),),
            mem_ratio=0.5, local_fraction=0.0, hot_fraction=0.0,
        )
        kwargs = dict(accesses=10_000, warmup=25_000)
        small = run_workload(sweep, "hybrid_tlb",
                             config=SystemConfig().with_llc_size(1 * MB),
                             **kwargs)
        large = run_workload(sweep, "hybrid_tlb",
                             config=SystemConfig().with_llc_size(8 * MB),
                             **kwargs)
        assert (large.counter("delayed_tlb", "lookups")
                < small.counter("delayed_tlb", "lookups"))


class TestOsIntegration:
    def test_remap_keeps_hybrid_consistent(self):
        """munmap + fresh mmap reusing frames must never serve stale data."""
        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        mmu = HybridMmu(kernel, config, delayed="tlb")
        vma = kernel.mmap(p, 16 * 4096, policy="demand")
        va = vma.vbase
        pa_before = mmu.access(0, p.asid, va, True).translated_pa
        kernel.munmap(p, vma)
        vma2 = kernel.mmap(p, 16 * 4096, policy="demand")
        pa_after = mmu.access(0, p.asid, vma2.vbase, False).translated_pa
        assert pa_after == kernel.translate(p.asid, vma2.vbase).pa
        assert mmu.caches.probe_line(
            0, __import__("repro.common.address", fromlist=["virtual_block_key"])
            .virtual_block_key(p.asid, va)) is None or vma2.vbase == va
