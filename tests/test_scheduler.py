"""Tests for the multiprogramming scheduler and context-switch modeling."""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.core import ConventionalMmu, HybridMmu
from repro.osmodel import Kernel
from repro.sim import ScheduledSimulator, SwitchCosts, lay_out


def build_system(mmu_cls, n_workloads=3, cores=1, **kw):
    config = dataclasses.replace(SystemConfig(), cores=cores)
    kernel = Kernel(config)
    names = ("omnetpp", "astar", "stream", "cactus")[:n_workloads]
    workloads = [lay_out(name, kernel, seed=5 + i)
                 for i, name in enumerate(names)]
    mmu = mmu_cls(kernel, config, **kw)
    return ScheduledSimulator(mmu, workloads, quantum=500, **{}), workloads


class TestScheduledSimulator:
    def test_all_workloads_complete(self):
        sim, workloads = build_system(HybridMmu, n_workloads=3)
        result = sim.run(accesses_per_workload=1500)
        assert set(result.per_workload) == {w.spec.name for w in workloads}
        for r in result.per_workload.values():
            assert r.accesses == 1500

    def test_context_switches_counted(self):
        sim, _w = build_system(HybridMmu, n_workloads=3, cores=1)
        result = sim.run(accesses_per_workload=1500)
        # 3 workloads × 3 quanta each on one core: every quantum after
        # the first is a switch.
        assert result.context_switches == 8
        assert result.switch_cycles > 0

    def test_more_cores_fewer_switches(self):
        one_core, _ = build_system(HybridMmu, n_workloads=3, cores=1)
        r1 = one_core.run(accesses_per_workload=1000)
        three_cores, _ = build_system(HybridMmu, n_workloads=3, cores=3)
        r3 = three_cores.run(accesses_per_workload=1000)
        assert r3.context_switches == 0
        assert r3.context_switches < r1.context_switches

    def test_hybrid_pays_filter_load(self):
        costs = SwitchCosts()
        hybrid, _ = build_system(HybridMmu, n_workloads=2, cores=1)
        conventional, _ = build_system(ConventionalMmu, n_workloads=2, cores=1)
        rh = hybrid.run(accesses_per_workload=1000)
        rc = conventional.run(accesses_per_workload=1000)
        assert rh.context_switches == rc.context_switches
        per_switch_h = rh.switch_cycles / rh.context_switches
        per_switch_c = rc.switch_cycles / rc.context_switches
        assert per_switch_h == per_switch_c + costs.filter_load

    def test_aggregate_ipc_positive(self):
        sim, _w = build_system(HybridMmu, n_workloads=2)
        result = sim.run(accesses_per_workload=800)
        assert 0 < result.aggregate_ipc() < 4

    def test_empty_workloads_rejected(self):
        config = SystemConfig()
        kernel = Kernel(config)
        mmu = HybridMmu(kernel, config)
        with pytest.raises(ValueError):
            ScheduledSimulator(mmu, [])

    def test_filters_survive_switches(self):
        """Per-process filter state must be intact after many switches."""
        config = dataclasses.replace(SystemConfig(), cores=1)
        kernel = Kernel(config)
        w1 = lay_out("postgres", kernel, seed=1)
        w2 = lay_out("omnetpp", kernel, seed=2)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        sim = ScheduledSimulator(mmu, [w1, w2], quantum=300)
        sim.run(accesses_per_workload=1200)
        shared = w1.shared_vmas[w1.processes[0].asid]
        assert w1.processes[0].synonym_filter.is_synonym_candidate(
            shared.vbase)
