"""Configuration defaults must encode Table IV of the paper."""

import dataclasses

import pytest

from repro.common.params import (
    CacheConfig,
    SystemConfig,
    TlbConfig,
)


class TestTableIvDefaults:
    def setup_method(self):
        self.config = SystemConfig()

    def test_l1_cache(self):
        assert self.config.l1.size_bytes == 32 * 1024
        assert self.config.l1.ways == 4
        assert self.config.l1.block_size == 64

    def test_l2_cache(self):
        assert self.config.l2.size_bytes == 256 * 1024
        assert self.config.l2.ways == 8
        assert self.config.l2.latency == 6

    def test_llc(self):
        assert self.config.llc.size_bytes == 2 * 1024 * 1024
        assert self.config.llc.ways == 16
        assert self.config.llc.latency == 27

    def test_baseline_tlbs(self):
        assert self.config.l1_tlb.entries == 64
        assert self.config.l1_tlb.latency == 1
        assert self.config.l2_tlb.entries == 1024
        assert self.config.l2_tlb.ways == 8
        assert self.config.l2_tlb.latency == 7

    def test_synonym_tlb_is_single_level_64_entry(self):
        assert self.config.synonym_tlb.entries == 64
        assert self.config.synonym_tlb.ways == 4

    def test_delayed_tlb_default_matches_paper_area_argument(self):
        # Same total TLB area as the baseline (Section III-C).
        assert self.config.delayed_tlb.entries == 1024
        assert self.config.delayed_tlb.ways == 8

    def test_synonym_filter_geometry(self):
        f = self.config.synonym_filter
        assert f.bits == 1024
        assert f.fine_grain_shift == 15    # 32 KB
        assert f.coarse_grain_shift == 24  # 16 MB

    def test_segment_structures(self):
        s = self.config.segments
        assert s.segment_table_entries == 2048
        assert s.segment_table_latency == 7
        assert s.index_cache_size == 32 * 1024
        assert s.index_cache_latency == 3
        assert s.segment_cache_entries == 128
        assert s.segment_cache_grain_shift == 21  # 2 MB
        assert s.full_walk_latency == 20

    def test_core_clock(self):
        assert self.config.core.frequency_ghz == pytest.approx(3.4)


class TestConfigValidation:
    def test_cache_size_must_divide(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, latency=1)

    def test_tlb_entries_must_divide_ways(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=100, ways=3, latency=1)

    def test_cache_sets_derived(self):
        cfg = CacheConfig(32 * 1024, 4, 4)
        assert cfg.sets == 128

    def test_with_llc_size(self):
        big = SystemConfig().with_llc_size(8 * 1024 * 1024)
        assert big.llc.size_bytes == 8 * 1024 * 1024
        assert big.l1.size_bytes == 32 * 1024  # untouched

    def test_with_delayed_tlb_entries(self):
        cfg = SystemConfig().with_delayed_tlb_entries(32768)
        assert cfg.delayed_tlb.entries == 32768

    def test_configs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig().cores = 8
