"""Unit tests for the counter framework."""

from repro.common.stats import StatGroup, StatRegistry, format_table, mpki


class TestStatGroup:
    def test_add_and_get(self):
        g = StatGroup("g")
        g.add("hits")
        g.add("hits", 4)
        assert g["hits"] == 5

    def test_missing_counter_is_zero(self):
        assert StatGroup("g")["nothing"] == 0

    def test_ratio(self):
        g = StatGroup("g")
        g.add("a", 3)
        g.add("b", 4)
        assert g.ratio("a", "b") == 0.75

    def test_ratio_zero_denominator(self):
        assert StatGroup("g").ratio("a", "b") == 0.0

    def test_hit_rate(self):
        g = StatGroup("g")
        g.add("hits", 9)
        g.add("misses", 1)
        assert g.hit_rate() == 0.9

    def test_hit_rate_empty(self):
        assert StatGroup("g").hit_rate() == 0.0

    def test_reset(self):
        g = StatGroup("g")
        g.add("x", 10)
        g.reset()
        assert g["x"] == 0

    def test_snapshot_is_copy(self):
        g = StatGroup("g")
        g.add("x")
        snap = g.snapshot()
        g.add("x")
        assert snap["x"] == 1

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a["x"] == 5
        assert a["y"] == 1

    def test_contains_and_iter(self):
        g = StatGroup("g")
        g.add("x")
        assert "x" in g
        assert list(g) == ["x"]


class TestStatRegistry:
    def test_group_created_on_demand(self):
        r = StatRegistry()
        g = r.group("alpha")
        assert r.group("alpha") is g

    def test_register_external_group(self):
        r = StatRegistry()
        g = StatGroup("ext")
        r.register(g)
        assert r["ext"] is g
        assert "ext" in r

    def test_snapshot_nested(self):
        r = StatRegistry()
        r.group("a").add("x", 2)
        assert r.snapshot() == {"a": {"x": 2}}

    def test_reset_all(self):
        r = StatRegistry()
        r.group("a").add("x", 2)
        r.reset()
        assert r["a"]["x"] == 0


class TestHelpers:
    def test_mpki(self):
        assert mpki(5, 1000) == 5.0
        assert mpki(5, 0) == 0.0

    def test_format_table_aligns(self):
        out = format_table({"a": "Name", "b": "Val"}, [["x", 1], ["longer", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("Name")
        assert len(lines) == 4
