"""Tests for the 4-level radix page table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import PAGE_SIZE, VA_MASK
from repro.osmodel import FrameAllocator, PageFault, PageTable
from repro.osmodel.pagetable import PERM_READ, PERM_RW

MB = 1024 * 1024


@pytest.fixture()
def table():
    return PageTable(FrameAllocator(64 * MB))


class TestMapping:
    def test_map_translate(self, table):
        table.map(0x1234_5000, pfn=42)
        assert table.translate(0x1234_5678) == (42 << 12) | 0x678

    def test_unmapped_raises(self, table):
        with pytest.raises(PageFault):
            table.translate(0xDEAD_0000)

    def test_unmap(self, table):
        table.map(0x4000, 7)
        entry = table.unmap(0x4000)
        assert entry.pfn == 7
        assert not table.is_mapped(0x4000)
        assert table.unmap(0x4000) is None

    def test_remap_overwrites(self, table):
        table.map(0x4000, 7)
        table.map(0x4000, 9)
        assert table.translate(0x4000) >> 12 == 9
        assert table.mapped_pages == 1

    def test_mapped_pages_counter(self, table):
        for i in range(5):
            table.map(i * PAGE_SIZE, i)
        assert table.mapped_pages == 5
        table.unmap(0)
        assert table.mapped_pages == 4

    def test_permissions_and_shared_bit(self, table):
        table.map(0x8000, 1, permissions=PERM_READ, shared=True)
        entry = table.entry(0x8000)
        assert entry.permissions == PERM_READ
        assert entry.shared
        table.set_permissions(0x8000, PERM_RW)
        table.set_shared(0x8000, False)
        entry = table.entry(0x8000)
        assert entry.permissions == PERM_RW
        assert not entry.shared

    def test_distant_addresses_no_interference(self, table):
        table.map(0x0000_0000_1000, 1)
        table.map(0x7FFF_FFFF_F000, 2)
        assert table.translate(0x1000) >> 12 == 1
        assert table.translate(0x7FFF_FFFF_F000) >> 12 == 2

    @settings(max_examples=25)
    @given(st.dictionaries(
        st.integers(min_value=0, max_value=VA_MASK >> 12),
        st.integers(min_value=0, max_value=2 ** 20),
        min_size=1, max_size=50))
    def test_translate_matches_mapping_property(self, mapping):
        table = PageTable(FrameAllocator(64 * MB))
        for vpn, pfn in mapping.items():
            table.map(vpn << 12, pfn)
        for vpn, pfn in mapping.items():
            assert table.translate(vpn << 12) == pfn << 12


class TestWalkPath:
    def test_full_path_has_four_levels(self, table):
        table.map(0x1234_5000, 1)
        path = table.walk_path(0x1234_5000)
        assert len(path) == 4
        assert len(set(path)) == 4  # distinct PTE addresses

    def test_path_stable_for_same_page(self, table):
        table.map(0x6000, 1)
        assert table.walk_path(0x6000) == table.walk_path(0x6FFF)

    def test_same_region_shares_upper_levels(self, table):
        table.map(0x10_0000, 1)
        table.map(0x10_1000, 2)
        a = table.walk_path(0x10_0000)
        b = table.walk_path(0x10_1000)
        assert a[:3] == b[:3]
        assert a[3] != b[3]

    def test_unmapped_path_truncated(self, table):
        path = table.walk_path(0x7F00_0000_0000)
        assert 1 <= len(path) <= 4

    def test_pte_addresses_are_within_node_frames(self, table):
        table.map(0x9000, 3)
        for pte_pa in table.walk_path(0x9000):
            assert pte_pa % 8 == 0


class TestIteration:
    def test_iter_mappings(self, table):
        expected = {0x1000: 1, 0x2000: 2, 0x7F00_0000_0000: 3}
        for va, pfn in expected.items():
            table.map(va, pfn)
        found = {va: e.pfn for va, e in table.iter_mappings()}
        assert found == expected
