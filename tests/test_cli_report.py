"""Tests for the CLI and the report-rendering helpers."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.report import (
    breakdown_chart,
    horizontal_bars,
    markdown_table,
    normalized_comparison,
    series_table,
    spark_line,
)

FAST = ["--accesses", "600", "--warmup", "200"]


class TestReportHelpers:
    def test_horizontal_bars_scaled(self):
        out = horizontal_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert lines[1].count("#") == 10        # max value fills the width
        assert 4 <= lines[0].count("#") <= 6    # half-scale

    def test_horizontal_bars_reference_marker(self):
        out = horizontal_bars({"a": 2.0}, width=10, reference=1.0)
        assert "|" in out

    def test_horizontal_bars_empty(self):
        assert horizontal_bars({}) == "(no data)"

    def test_series_table_alignment(self):
        out = series_table({"x": [1.0, 2.0]}, ["A", "B"])
        lines = out.splitlines()
        assert len(lines) == 2
        assert "A" in lines[0] and "B" in lines[0]

    def test_markdown_table(self):
        out = markdown_table(["h1", "h2"], [["a", 1]])
        assert out.splitlines()[1] == "|---|---|"
        assert "| a | 1 |" in out

    def test_breakdown_chart_percentages(self):
        out = breakdown_chart({"compute": 3.0, "memory": 1.0}, width=20)
        assert "75.0%" in out and "25.0%" in out

    def test_breakdown_chart_empty(self):
        assert breakdown_chart({}) == "(empty breakdown)"

    def test_normalized_comparison_empty_guard(self):
        # No rows, and rows whose configs are all empty, both guard.
        assert normalized_comparison({}) == "(no data)"
        assert normalized_comparison({"w1": {}}) == "(no data)"

    def test_spark_line_degenerate_inputs(self):
        assert spark_line([]) == ""
        # Single point / flat series: mid-height blocks, not the bottom
        # glyph (a flat trend, not a minimum).
        assert spark_line([5.0]) == spark_line([1.0])
        assert spark_line([2.0, 2.0, 2.0]) == spark_line([9.0]) * 3
        assert spark_line([5.0]) not in ("▁", "█")

    def test_spark_line_scales_min_to_max(self):
        out = spark_line([0.0, 1.0, 2.0])
        assert len(out) == 3
        assert out[0] == "▁" and out[-1] == "█"

    def test_normalized_comparison_has_geomean(self):
        out = normalized_comparison({
            "w1": {"baseline": 1.0, "x": 2.0},
            "w2": {"baseline": 1.0, "x": 0.5},
        })
        assert "geomean" in out
        # geomean of 2.0 and 0.5 is 1.0
        geomean_line = [l for l in out.splitlines() if "geomean" in l][0]
        assert "1.000" in geomean_line


class TestCliParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "baseline"])

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gups", "nope"])


class TestCliCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "gups" in out and "postgres" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "hybrid_segments" in out and "rmm" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_run(self, capsys):
        assert main(["run", "stream", "hybrid_tlb"] + FAST) == 0
        out = capsys.readouterr().out
        assert "ipc=" in out and "tlb_bypass_rate=1.000" in out

    def test_run_with_llc_override(self, capsys):
        assert main(["run", "stream", "baseline", "--llc-mb", "8"] + FAST) == 0
        assert "ipc=" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "stream", "--configs",
                     "baseline,ideal"] + FAST) == 0
        out = capsys.readouterr().out
        assert "normalized to baseline" in out
        assert "ideal" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "stream", "--sizes", "1024,2048"] + FAST) == 0
        out = capsys.readouterr().out
        assert "1024" in out and "2048" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "stream"] + FAST) == 0
        out = capsys.readouterr().out
        assert "distinct pages=" in out

    def test_run_json_document(self, capsys):
        assert main(["run", "stream", "hybrid_tlb", "--json"] + FAST) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.result/v1"
        assert doc["manifest"]["workload"] == "stream"
        assert doc["cycle_breakdown"]
        assert doc["intervals"]          # --json auto-records a time series
        assert "access_cycles" in doc["histograms"]

    def test_run_trace_out_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main(["run", "stream", "hybrid_tlb",
                     "--trace-out", str(trace),
                     "--sample-every", "10"] + FAST) == 0
        capsys.readouterr()
        lines = trace.read_text().strip().splitlines()
        assert lines
        assert all("stage" in json.loads(line) for line in lines[:20])

    def test_sweep_json(self, capsys):
        assert main(["sweep", "stream", "--sizes", "1024,2048",
                     "--json"] + FAST) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sizes"] == [1024, 2048]
        assert len(doc["delayed_tlb_mpki"]) == 2

    def test_compare_json_carries_results(self, capsys):
        assert main(["compare", "stream", "--configs", "baseline,ideal",
                     "--json"] + FAST) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["results"]) == {"baseline", "ideal"}
        assert doc["results"]["ideal"]["schema"] == "repro.result/v1"


class TestProfileCommand:
    def test_profile_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out

    def test_profile_renders_stages_and_histograms(self, capsys):
        assert main(["profile", "stream", "hybrid_tlb"] + FAST) == 0
        out = capsys.readouterr().out
        assert "cycle attribution by pipeline stage" in out
        assert "translation_delayed" in out
        # At least two latency histograms for the hybrid MMU.
        assert out.count("histogram:") >= 2
        assert "histogram: access_cycles" in out
        assert "per-interval IPC" in out

    def test_profile_json(self, capsys):
        assert main(["profile", "stream", "hybrid_segments", "--json"]
                    + FAST) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"] == "hybrid_segments"
        assert "segment_translation_cycles" in doc["histograms"]
