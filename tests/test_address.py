"""Unit tests for address arithmetic and block-key namespaces."""

import pytest
from hypothesis import given, strategies as st

from repro.common import address as addr


class TestPageArithmetic:
    def test_page_number_and_offset_recombine(self):
        va = 0x1234_5678
        assert (addr.page_number(va) << addr.PAGE_SHIFT) + addr.page_offset(va) == va

    def test_page_base_is_aligned(self):
        assert addr.page_base(0x1234_5678) == 0x1234_5000

    def test_block_number(self):
        assert addr.block_number(0x1000) == 0x40
        assert addr.block_number(0x103F) == 0x40
        assert addr.block_number(0x1040) == 0x41

    def test_align_up_down(self):
        assert addr.align_up(0x1001, 0x1000) == 0x2000
        assert addr.align_up(0x1000, 0x1000) == 0x1000
        assert addr.align_down(0x1FFF, 0x1000) == 0x1000

    @given(st.integers(min_value=0, max_value=addr.VA_MASK))
    def test_page_decomposition_property(self, va):
        base = addr.page_base(va)
        assert base % addr.PAGE_SIZE == 0
        assert base <= va < base + addr.PAGE_SIZE


class TestBlockKeys:
    def test_virtual_key_roundtrip(self):
        key = addr.virtual_block_key(0x1234, 0xDEAD_B000)
        assert not addr.is_physical_key(key)
        assert addr.key_asid(key) == 0x1234
        assert addr.key_block_address(key) == 0xDEAD_B000 & ~0x3F

    def test_physical_key_roundtrip(self):
        key = addr.physical_block_key(0xCAFE_F000)
        assert addr.is_physical_key(key)
        assert addr.key_block_address(key) == 0xCAFE_F000 & ~0x3F

    def test_namespaces_disjoint(self):
        va_key = addr.virtual_block_key(0, 0x1000)
        pa_key = addr.physical_block_key(0x1000)
        assert va_key != pa_key

    def test_same_va_different_asid_distinct(self):
        """Homonym protection: the ASID disambiguates identical VAs."""
        k1 = addr.virtual_block_key(1, 0x4000)
        k2 = addr.virtual_block_key(2, 0x4000)
        assert k1 != k2

    def test_adjacent_blocks_adjacent_keys(self):
        """page_block_keys relies on +1 stepping within a page."""
        k = addr.virtual_block_key(7, 0x10000)
        assert addr.virtual_block_key(7, 0x10040) == k + 1
        p = addr.physical_block_key(0x10000)
        assert addr.physical_block_key(0x10040) == p + 1

    @given(st.integers(min_value=0, max_value=addr.ASID_MAX),
           st.integers(min_value=0, max_value=addr.VA_MASK))
    def test_virtual_keys_injective_per_block(self, asid, va):
        key = addr.virtual_block_key(asid, va)
        assert addr.key_asid(key) == asid
        assert addr.key_block_address(key) == va & ~0x3F

    @given(st.integers(min_value=0, max_value=addr.PA_MASK))
    def test_physical_keys_flagged(self, pa):
        assert addr.is_physical_key(addr.physical_block_key(pa))

    @given(st.integers(min_value=0, max_value=addr.ASID_MAX),
           st.integers(min_value=0, max_value=addr.VA_MASK))
    def test_page_key_groups_whole_page(self, asid, va):
        base_key = addr.virtual_page_key(asid, addr.page_base(va))
        assert addr.virtual_page_key(asid, va) == base_key


class TestVirtualPageKey:
    def test_distinct_pages_distinct_keys(self):
        assert (addr.virtual_page_key(1, 0x1000)
                != addr.virtual_page_key(1, 0x2000))

    def test_asid_in_upper_bits(self):
        key = addr.virtual_page_key(5, 0x3000)
        assert key >> (addr.VA_BITS - addr.PAGE_SHIFT) == 5
