"""Tests for the prior-scheme MMUs and new OS flows (DMA, mprotect)."""

import dataclasses

import pytest

from repro.common.address import PAGE_SIZE, virtual_block_key
from repro.common.params import SystemConfig
from repro.core import (
    ConventionalMmu,
    DirectSegmentMmu,
    EnigmaMmu,
    HybridMmu,
    RmmMmu,
)
from repro.osmodel import Kernel
from repro.osmodel.pagetable import PERM_READ, PERM_RW

MB = 1024 * 1024


def system(cores=2):
    return dataclasses.replace(SystemConfig(), cores=cores)


def setup(mmu_cls, size=8 * MB, **kw):
    config = system()
    kernel = Kernel(config)
    p = kernel.create_process("p")
    vma = kernel.mmap(p, size, policy="eager")
    mmu = mmu_cls(kernel, config, **kw)
    return kernel, p, vma, mmu


class TestDirectSegmentMmu:
    def test_in_segment_translation_is_free(self):
        kernel, p, vma, mmu = setup(DirectSegmentMmu)
        out = mmu.access(0, p.asid, vma.vbase + 123, False)
        assert out.front_cycles == 0
        assert out.translated_pa == kernel.translate(p.asid, vma.vbase + 123).pa

    def test_outside_segment_uses_paging(self):
        kernel, p, vma, mmu = setup(DirectSegmentMmu)
        stack = kernel.mmap(p, 16 * PAGE_SIZE, policy="demand")
        out = mmu.access(0, p.asid, stack.vbase, False)
        assert out.front_cycles > 0  # cold TLB walk
        assert out.translated_pa == kernel.translate(p.asid, stack.vbase).pa
        warm = mmu.access(0, p.asid, stack.vbase, False)
        assert warm.front_cycles == 0  # L1 TLB hit now

    def test_largest_segment_selected(self):
        config = system()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        small = kernel.mmap(p, 1 * MB, policy="eager")
        kernel.frames.alloc_frame()  # prevent merging
        big = kernel.mmap(p, 4 * MB, policy="eager")
        mmu = DirectSegmentMmu(kernel, config)
        mmu.access(0, p.asid, big.vbase, False)
        assert mmu.segment.translate(p.asid, big.vbase) is not None
        assert mmu.segment.translate(p.asid, small.vbase) is None


class TestRmmMmu:
    def test_range_hit_avoids_walk(self):
        kernel, p, vma, mmu = setup(RmmMmu)
        cold = mmu.access(0, p.asid, vma.vbase, False)
        # Range fill happened; another page in the same range needs no walk.
        far = mmu.access(0, p.asid, vma.vbase + 4 * MB, False)
        assert far.front_cycles == mmu.range_tlb.latency
        assert far.translated_pa == kernel.translate(p.asid,
                                                     vma.vbase + 4 * MB).pa
        assert mmu.walkers[0].stats["walks"] == 0

    def test_translation_matches_kernel(self):
        kernel, p, vma, mmu = setup(RmmMmu)
        for off in (0, 1 * MB, 8 * MB - 64):
            out = mmu.access(0, p.asid, vma.vbase + off, False)
            assert out.translated_pa == kernel.translate(p.asid,
                                                         vma.vbase + off).pa

    def test_demand_pages_fall_back_to_walks(self):
        kernel, p, _vma, mmu = setup(RmmMmu)
        stack = kernel.mmap(p, 4 * PAGE_SIZE, policy="demand")
        out = mmu.access(0, p.asid, stack.vbase, False)
        assert out.translated_pa == kernel.translate(p.asid, stack.vbase).pa
        assert mmu.walkers[0].stats["walks"] == 1


class TestEnigmaMmu:
    def test_first_level_always_charged(self):
        kernel, p, vma, mmu = setup(EnigmaMmu)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles == EnigmaMmu.FIRST_LEVEL_CYCLES
        warm = mmu.access(0, p.asid, vma.vbase, False)
        assert warm.front_cycles == EnigmaMmu.FIRST_LEVEL_CYCLES
        assert warm.delayed_cycles == 0  # cache hit: no delayed translation

    def test_translation_matches_kernel(self):
        kernel, p, vma, mmu = setup(EnigmaMmu)
        for off in (5, 3 * MB, 8 * MB - 8):
            out = mmu.access(0, p.asid, vma.vbase + off, False)
            assert out.translated_pa == kernel.translate(p.asid,
                                                         vma.vbase + off).pa

    def test_synonyms_collapse_to_one_intermediate_name(self):
        config = system()
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 16 * PAGE_SIZE)
        mmu = EnigmaMmu(kernel, config)
        ia = mmu._intermediate(a.asid, vmas[a.asid].vbase + 100)
        ib = mmu._intermediate(b.asid, vmas[b.asid].vbase + 100)
        assert ia == ib  # one name -> coherence without a filter
        out_a = mmu.access(0, a.asid, vmas[a.asid].vbase, True)
        out_b = mmu.access(1, b.asid, vmas[b.asid].vbase, False)
        assert out_a.translated_pa == out_b.translated_pa
        assert out_b.hit_level in ("llc", "l1", "l2")

    def test_private_namespaces_distinct(self):
        config = system()
        kernel = Kernel(config)
        a = kernel.create_process("a", va_base=0x1000_0000)
        b = kernel.create_process("b", va_base=0x1000_0000)
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        mmu = EnigmaMmu(kernel, config)
        assert (mmu._intermediate(a.asid, 0x1000_0000)
                != mmu._intermediate(b.asid, 0x1000_0000))


class TestDmaRegistration:
    def test_dma_pages_become_synonyms(self):
        kernel, p, vma, mmu = setup(HybridMmu, delayed="tlb")
        buffer_va = vma.vbase + 64 * PAGE_SIZE
        mmu.access(0, p.asid, buffer_va, False)  # cached under ASID+VA
        kernel.register_dma_region(p, buffer_va, 4 * PAGE_SIZE)
        # Filter now flags the pages...
        assert p.synonym_filter.is_synonym_candidate(buffer_va)
        assert kernel.is_synonym_page(p.asid, buffer_va)
        # ...the stale virtual line is flushed...
        key = virtual_block_key(p.asid, buffer_va)
        assert mmu.caches.probe_line(0, key) is None
        # ...and the next access is cached physically.
        out = mmu.access(0, p.asid, buffer_va, False)
        from repro.common.address import physical_block_key
        assert mmu.caches.probe_line(
            0, physical_block_key(out.translated_pa)) is not None

    def test_dma_on_unmapped_pages_faults_them_in(self):
        config = system()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * PAGE_SIZE, policy="demand")
        kernel.register_dma_region(p, vma.vbase, 2 * PAGE_SIZE)
        assert p.page_table.mapped_pages == 2


class TestPermissionChange:
    def test_mprotect_downgrades_cached_copies(self):
        kernel, p, vma, mmu = setup(HybridMmu, delayed="tlb")
        va = vma.vbase
        mmu.access(0, p.asid, va, False)
        key = virtual_block_key(p.asid, va)
        assert mmu.caches.probe_line(0, key).permissions == PERM_RW
        kernel.change_permissions(p, va, PAGE_SIZE, PERM_READ)
        line = mmu.caches.probe_line(0, key)
        assert line is not None          # copies stay resident...
        assert line.permissions == PERM_READ  # ...but downgraded in place

    def test_write_after_downgrade_triggers_cow(self):
        kernel, p, vma, mmu = setup(HybridMmu, delayed="tlb")
        va = vma.vbase
        mmu.access(0, p.asid, va, False)
        old_pa = kernel.translate(p.asid, va).pa
        kernel.change_permissions(p, va, PAGE_SIZE, PERM_READ)
        out = mmu.access(0, p.asid, va, True)
        assert mmu.hybrid_stats["permission_faults"] == 1
        assert out.translated_pa != old_pa  # CoW gave a fresh page

    def test_pte_updated(self):
        kernel, p, vma, _mmu = setup(ConventionalMmu)
        for i in range(3):
            kernel.translate(p.asid, vma.vbase + i * PAGE_SIZE)
        kernel.change_permissions(p, vma.vbase, 2 * PAGE_SIZE, PERM_READ)
        assert p.page_table.entry(vma.vbase).permissions == PERM_READ
        assert p.page_table.entry(vma.vbase + PAGE_SIZE).permissions == PERM_READ
        assert p.page_table.entry(vma.vbase + 2 * PAGE_SIZE).permissions == PERM_RW
