"""End-to-end tests for the simulation service (``repro.serve``).

Every HTTP test runs against a real ``ThreadingHTTPServer`` on an
ephemeral port.  The load-bearing pins:

* N concurrent identical submissions execute exactly **one** simulation
  and every client receives byte-identical ``repro.result/v1`` bodies;
* a cache-warm resubmission (fresh service, same ``--cache-dir``)
  performs **zero** simulations;
* a full queue answers 429 with ``Retry-After`` (admission control);
* SIGTERM drains in-flight jobs before the process exits (subprocess);
* ``/metrics`` exposes parseable Prometheus text with the
  ``repro_serve_*`` families.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exec import Job, ResultCache, SerialExecutor
from repro.serve import (ERROR_SCHEMA, HEALTH_SCHEMA, STATUS_SCHEMA,
                         JobService, QueueFullError, ServeServer,
                         ServiceDrainingError)

FAST_JOB = dict(accesses=2_000, warmup=200)


def make_job(**overrides):
    params = dict(workload="gups", mmu="hybrid_tlb", **FAST_JOB)
    params.update(overrides)
    return Job(**params)


def http(base, path, data=None, method=None):
    """``(status, body_bytes)`` — HTTPError codes returned, not raised."""
    req = urllib.request.Request(
        base + path, data=data,
        method=method or ("POST" if data is not None else "GET"))
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def post_job(base, job):
    status, body, headers = http(
        base, "/jobs", data=json.dumps(job.to_json_dict()).encode())
    return status, json.loads(body), headers


def wait_terminal(base, fingerprint, timeout=120):
    """Poll ``GET /jobs/<fp>`` until done (200) or failed (500)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body, _ = http(base, f"/jobs/{fingerprint}")
        if status in (200, 500):
            return status, body
        assert status == 202, f"unexpected status {status}"
        time.sleep(0.02)
    raise AssertionError(f"job {fingerprint} never finished")


class TestSubmissionApi:
    def test_submit_poll_result_roundtrip(self, tmp_path):
        executor = SerialExecutor()
        service = JobService(cache=ResultCache(tmp_path),
                             executor=executor)
        with ServeServer(service) as server:
            try:
                job = make_job()
                status, doc, _ = post_job(server.url, job)
                assert status == 202
                assert doc["schema"] == STATUS_SCHEMA
                assert doc["disposition"] == "accepted"
                assert doc["fingerprint"] == job.fingerprint()
                assert doc["location"] == f"/jobs/{job.fingerprint()}"
                status, body = wait_terminal(server.url, job.fingerprint())
                assert status == 200
                result = json.loads(body)
                assert result["schema"] == "repro.result/v1"
                assert result["workload"] == "gups"
                assert result["fingerprint"] == job.fingerprint()
                assert result["identity"] == job.identity()
                # The served body is the exact cache-entry encoding.
                entry = tmp_path / f"{job.fingerprint()}.json"
                assert entry.read_bytes() == body
            finally:
                service.close()

    def test_malformed_submissions_rejected(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                for payload in (b"not json",
                                b'{"schema": "nope"}',
                                b'{"schema": "repro.job/v1"}'):
                    status, _, _ = http(server.url, "/jobs", data=payload)
                    assert status == 400, payload
                bad_names = make_job(workload="no_such_workload")
                status, doc, _ = post_job(server.url, bad_names)
                assert status == 400 and "workload" in doc["error"]
                bad_mmu = make_job(mmu="no_such_mmu")
                status, doc, _ = post_job(server.url, bad_mmu)
                assert status == 400 and "mmu" in doc["error"]
            finally:
                service.close()

    def test_oversized_body_rejected(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                blob = b"x" * ((1 << 20) + 1)
                status, _, _ = http(server.url, "/jobs", data=blob)
                assert status == 413
            finally:
                service.close()

    def test_unknown_routes_and_fingerprints_404(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                assert http(server.url, "/nope")[0] == 404
                assert http(server.url, "/jobs/ffffffffffffffff")[0] == 404
                assert http(server.url, "/nope", data=b"{}")[0] == 404
            finally:
                service.close()

    def test_healthz_reports_ok_then_draining(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                status, body, _ = http(server.url, "/healthz")
                doc = json.loads(body)
                assert status == 200
                assert doc["schema"] == HEALTH_SCHEMA
                assert doc["status"] == "ok"
                assert doc["queue_capacity"] == service.max_queue
                service.begin_drain()
                status, body, _ = http(server.url, "/healthz")
                assert status == 503
                assert json.loads(body)["status"] == "draining"
            finally:
                service.close()

    def test_jobs_listing(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                post_job(server.url, make_job())
                post_job(server.url, make_job(seed=7))
                status, body, _ = http(server.url, "/jobs")
                doc = json.loads(body)
                assert status == 200
                assert doc["schema"] == "repro.serve.jobs/v1"
                assert len(doc["jobs"]) == 2
                assert {j["status"] for j in doc["jobs"]} == {"queued"}
            finally:
                service.close()


class TestCoalescing:
    def test_duplicate_submissions_coalesce_deterministically(self):
        """With the dispatcher parked, a duplicate submission must join
        the queued record, never enqueue a second execution."""
        service = JobService(start=False)
        try:
            job = make_job()
            record1, disposition1 = service.submit(job)
            record2, disposition2 = service.submit(make_job())
            assert disposition1 == "accepted"
            assert disposition2 == "coalesced"
            assert record1 is record2
            assert record1.coalesced == 1
            assert service._queue.qsize() == 1
        finally:
            service.close()

    def test_100_concurrent_identical_submissions_run_one_simulation(self):
        """The acceptance pin: 100 concurrent clients, one simulation,
        byte-identical result bodies for every client."""
        executor = SerialExecutor()
        service = JobService(executor=executor, max_queue=4)
        clients = 100
        job = make_job(accesses=40_000, warmup=2_000)
        with ServeServer(service) as server:
            try:
                barrier = threading.Barrier(clients)
                bodies = [None] * clients
                failures = []

                def client(index):
                    try:
                        barrier.wait(timeout=30)
                        status, doc, _ = post_job(server.url, job)
                        assert status in (200, 202), status
                        code, body = wait_terminal(server.url,
                                                   doc["fingerprint"])
                        assert code == 200, code
                        bodies[index] = body
                    except Exception as exc:  # pragma: no cover - fail path
                        failures.append(exc)

                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(clients)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=180)
                assert not failures, failures[:3]
                assert executor.submitted == 1       # exactly one simulation
                assert all(body is not None for body in bodies)
                assert len(set(bodies)) == 1         # byte-identical
                result = json.loads(bodies[0])
                assert result["schema"] == "repro.result/v1"
                submissions = service.registry.counter(
                    "repro_serve_submissions_total", "")
                accepted = submissions.get(disposition="accepted")
                coalesced = submissions.get(disposition="coalesced")
                replayed = submissions.get(disposition="replayed")
                assert accepted == 1
                assert coalesced + replayed == clients - 1
                assert coalesced >= 1                # the coalescing pin
            finally:
                service.close()


class TestCacheIntegration:
    def test_cache_warm_resubmission_runs_zero_simulations(self, tmp_path):
        job = make_job()
        first_exec = SerialExecutor()
        service = JobService(cache=ResultCache(tmp_path),
                             executor=first_exec)
        with ServeServer(service) as server:
            try:
                _, doc, _ = post_job(server.url, job)
                _, first_body = wait_terminal(server.url,
                                              doc["fingerprint"])
            finally:
                service.drain(timeout=60)
                service.close()
        assert first_exec.submitted == 1

        # Fresh service process-equivalent: same cache dir, new executor.
        second_exec = SerialExecutor()
        service = JobService(cache=ResultCache(tmp_path),
                             executor=second_exec)
        with ServeServer(service) as server:
            try:
                status, doc, _ = post_job(server.url, job)
                assert status == 200                  # answered immediately
                assert doc["disposition"] == "cached"
                code, body = wait_terminal(server.url, job.fingerprint())
                assert code == 200
                assert body == first_body             # byte-identical
                assert second_exec.submitted == 0     # zero simulations
                hits = service.registry.counter(
                    "repro_serve_cache_hits_total", "")
                assert hits.get() == 1
            finally:
                service.close()


class TestAdmissionControl:
    def test_full_queue_returns_429_with_retry_after(self):
        service = JobService(start=False, max_queue=2)
        with ServeServer(service) as server:
            try:
                for seed in (1, 2):
                    status, _, _ = post_job(server.url, make_job(seed=seed))
                    assert status == 202
                status, doc, headers = post_job(server.url,
                                                make_job(seed=3))
                assert status == 429
                assert "full" in doc["error"]
                assert int(headers["Retry-After"]) >= 1
                with pytest.raises(QueueFullError):
                    service.submit(make_job(seed=4))
            finally:
                service.close()

    def test_duplicates_never_consume_queue_slots(self):
        service = JobService(start=False, max_queue=1)
        try:
            service.submit(make_job())
            for _ in range(5):                        # all coalesce
                _, disposition = service.submit(make_job())
                assert disposition == "coalesced"
            with pytest.raises(QueueFullError):
                service.submit(make_job(seed=9))
        finally:
            service.close()

    def test_draining_rejects_submissions_with_503(self):
        service = JobService(start=False)
        with ServeServer(service) as server:
            try:
                service.begin_drain()
                status, doc, headers = post_job(server.url, make_job())
                assert status == 503
                assert "Retry-After" in headers
                with pytest.raises(ServiceDrainingError):
                    service.submit(make_job())
            finally:
                service.close()


class TestExecutionPaths:
    def test_batching_drains_queue_into_one_executor_call(self):
        executor = SerialExecutor()
        service = JobService(executor=executor, batch_max=8, start=False)
        try:
            fingerprints = []
            for seed in (1, 2, 3):
                record, _ = service.submit(make_job(seed=seed))
                fingerprints.append(record.fingerprint)
            service.start()
            for fingerprint in fingerprints:
                assert service.record(fingerprint).done.wait(timeout=120)
            assert executor.submitted == 3
            batches = service.registry.counter(
                "repro_serve_batches_total", "")
            assert batches.get() == 1                 # one batch of three
        finally:
            service.close()

    def test_job_timeout_surfaces_as_cancelled_error(self):
        service = JobService(job_timeout=0.05)
        with ServeServer(service) as server:
            try:
                job = make_job(accesses=2_000_000, warmup=100)
                _, doc, _ = post_job(server.url, job)
                status, body = wait_terminal(server.url,
                                             doc["fingerprint"])
                assert status == 500
                error = json.loads(body)
                assert error["schema"] == ERROR_SCHEMA
                assert error["error"]["error_type"] == "JobCancelled"
                jobs_total = service.registry.counter(
                    "repro_serve_jobs_total", "")
                assert jobs_total.get(status="error") == 1
            finally:
                service.close()

    def test_close_fails_queued_records_instead_of_hanging(self):
        service = JobService(start=False)
        record, _ = service.submit(make_job())
        service.close()
        assert record.done.is_set()
        assert record.status == "error"
        assert json.loads(record.body)["error"]["error_type"] == \
            "ServiceStopped"


class TestMetricsEndpoint:
    LINE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
                      r"[-+0-9.eEinfa]+$")

    def test_exposition_parses_and_carries_serve_families(self):
        executor = SerialExecutor()
        service = JobService(executor=executor, max_queue=1)
        with ServeServer(service) as server:
            try:
                _, doc, _ = post_job(server.url, make_job())
                wait_terminal(server.url, doc["fingerprint"])
                status, body, headers = http(server.url, "/metrics")
                assert status == 200
                assert headers["Content-Type"].startswith("text/plain")
                text = body.decode()
                for line in text.splitlines():
                    if line.startswith("#"):
                        assert line.startswith(("# HELP", "# TYPE"))
                    else:
                        assert self.LINE.match(line), line
                for family, kind in (
                        ("repro_serve_submissions_total", "counter"),
                        ("repro_serve_jobs_total", "counter"),
                        ("repro_serve_queue_depth", "gauge"),
                        ("repro_serve_in_flight", "gauge"),
                        ("repro_serve_job_ms", "histogram"),
                        ("repro_serve_http_requests_total", "counter")):
                    assert f"# TYPE {family} {kind}" in text
                assert ('repro_serve_jobs_total{status="done"} 1'
                        in text)
                # Histogram invariant: +Inf bucket equals _count.
                inf = re.search(r'repro_serve_job_ms_bucket\{le="\+Inf"\} '
                                r'(\d+)', text)
                count = re.search(r"repro_serve_job_ms_count (\d+)", text)
                assert inf.group(1) == count.group(1) == "1"
                status, body, _ = http(server.url, "/metrics.json")
                assert status == 200
                assert "repro_serve_jobs_total" in json.loads(body)
            finally:
                service.close()


class TestSigtermDrain:
    @pytest.mark.slow
    def test_sigterm_drains_in_flight_jobs(self, tmp_path):
        """Real process, real signal: SIGTERM right after a submission
        must still produce the job's cache entry before a clean exit."""
        env = dict(os.environ)
        src = str(Path(__file__).parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path), "--drain-timeout", "120"],
            stderr=subprocess.PIPE, text=True, env=env)
        try:
            url = None
            for line in proc.stderr:
                found = re.search(r"serving jobs on (http://\S+)/jobs",
                                  line)
                if found:
                    url = found.group(1)
                    break
            assert url, "service never reported its URL"
            job = make_job(accesses=8_000, warmup=1_000)
            status, doc, _ = post_job(url, job)
            assert status == 202
            proc.send_signal(signal.SIGTERM)
            stderr = proc.stderr.read()
            assert proc.wait(timeout=120) == 0
            assert "drained" in stderr
            entry = tmp_path / f"{job.fingerprint()}.json"
            assert entry.exists(), "in-flight job was not drained"
            saved = json.loads(entry.read_text())
            assert saved["schema"] == "repro.result/v1"
            assert saved["fingerprint"] == job.fingerprint()
        finally:
            if proc.poll() is None:              # pragma: no cover
                proc.kill()
                proc.wait(timeout=30)
