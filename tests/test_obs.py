"""Tests for the observability layer (repro.obs) and its wiring."""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.common.params import SystemConfig
from repro.common.stats import StatGroup, derive_ratios
from repro.obs import Histogram, IntervalRecorder, RunManifest, Tracer
from repro.obs.manifest import config_fingerprint
from repro.obs.tracer import NULL_TRACER
from repro.sim import build_mmu, lay_out, run_workload
from repro.sim.report import histogram_chart, horizontal_bars
from repro.sim.simulator import Simulator
from repro.osmodel.kernel import Kernel
from repro.timing.model import TimingModel

FAST = dict(accesses=600, warmup=200)


# --------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------- #

class TestHistogram:
    def test_bucket_boundaries(self):
        h = Histogram("t")
        for v in (0, 1, 2, 3, 4, 7, 8):
            h.record(v)
        # value 0 -> bucket 0; 1 -> [1,1]; 2,3 -> [2,3]; 4,7 -> [4,7]; 8 -> [8,15]
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[2] == 2
        assert h.counts[3] == 2
        assert h.counts[4] == 1
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(1) == (1, 1)
        assert Histogram.bucket_bounds(3) == (4, 7)

    def test_power_of_two_lands_in_new_bucket(self):
        h = Histogram("t")
        h.record(1024)
        lo, hi = Histogram.bucket_bounds(11)
        assert lo == 1024 and hi == 2047
        assert h.counts[11] == 1

    def test_count_total_mean(self):
        h = Histogram("t")
        for v in (2, 4, 6):
            h.record(v)
        assert h.count == 3
        assert h.total == 12
        assert h.mean() == 4.0

    def test_negative_clamps_to_zero_bucket(self):
        h = Histogram("t")
        h.record(-5)
        assert h.counts[0] == 1
        assert h.total == 0

    def test_percentile(self):
        h = Histogram("t")
        for _ in range(99):
            h.record(4)          # bucket [4, 7]
        h.record(1000)           # bucket [512, 1023]
        assert h.percentile(50) == 7
        assert h.percentile(100) == 1023

    def test_snapshot_lists_only_nonempty_buckets(self):
        h = Histogram("t")
        h.record(5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == [{"lo": 4, "hi": 7, "count": 1}]

    def test_merge(self):
        a, b = Histogram("a"), Histogram("b")
        a.record(3)
        b.record(3)
        b.record(100)
        a.merge(b)
        assert a.count == 3
        assert a.counts[2] == 2

    def test_merge_disjoint_buckets(self):
        a, b = Histogram("a"), Histogram("b")
        a.record(1)              # bucket [1, 1]
        b.record(1000)           # bucket [512, 1023]
        a.merge(b)
        assert a.count == 2
        assert a.total == 1001
        assert a.counts[1] == 1 and a.counts[10] == 1
        # b is untouched by the merge.
        assert b.count == 1 and b.counts[10] == 1

    def test_merge_self_doubles(self):
        h = Histogram("t")
        for v in (3, 7, 200):
            h.record(v)
        h.merge(h)
        assert h.count == 6
        assert h.total == 2 * (3 + 7 + 200)
        assert h.counts[2] == 2 and h.counts[3] == 2 and h.counts[8] == 2

    def test_merge_empty_into_full(self):
        full, empty = Histogram("full"), Histogram("empty")
        full.record(42)
        before = full.snapshot()
        full.merge(empty)
        assert full.snapshot() == before

    def test_percentile_empty(self):
        h = Histogram("t")
        assert h.percentile(0) == 0
        assert h.percentile(50) == 0
        assert h.percentile(100) == 0

    def test_percentile_bounds(self):
        h = Histogram("t")
        h.record(1)              # [1, 1]
        h.record(1000)           # [512, 1023]
        # p=0 clamps to the first non-empty bucket, p=100 to the last;
        # out-of-range p behaves like the nearest bound.
        assert h.percentile(0) == 1
        assert h.percentile(100) == 1023
        assert h.percentile(-5) == h.percentile(0)
        assert h.percentile(250) == h.percentile(100)

    def test_from_snapshot_round_trip(self):
        h = Histogram("t")
        for v in (0, 1, 5, 5, 300, 70_000):
            h.record(v)
        rebuilt = Histogram.from_snapshot("t", h.snapshot())
        assert rebuilt.snapshot() == h.snapshot()
        assert rebuilt.counts == h.counts

    def test_from_snapshot_empty(self):
        rebuilt = Histogram.from_snapshot("t", Histogram("t").snapshot())
        assert rebuilt.count == 0 and rebuilt.total == 0

    def test_chart_renders(self):
        h = Histogram("t")
        for v in (4, 5, 6, 300):
            h.record(v)
        out = histogram_chart(h.snapshot())
        assert "[4, 7]" in out and "#" in out and "n=4" in out
        assert histogram_chart(Histogram("e").snapshot()) == "(empty histogram)"


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #

class TestTracer:
    def test_null_tracer_never_records(self):
        assert NULL_TRACER.active is False
        assert NULL_TRACER.begin_access(0, 1, 0x1000, False) is False
        assert NULL_TRACER.recording is False

    def test_sampling(self):
        t = Tracer(sample_every=3)
        sampled = [t.begin_access(0, 1, i, False) for i in range(9)]
        assert sampled == [True, False, False] * 3
        assert t.accesses_seen == 9
        assert t.accesses_sampled == 3

    def test_ring_buffer_bounded(self):
        t = Tracer(buffer_size=4)
        for i in range(10):
            t.begin_access(0, 1, i, False)
            t.stage("cache", cycles=1)
        assert len(t.events) == 4
        assert t.events_emitted == 10

    def test_stage_events_share_seq(self):
        t = Tracer()
        t.begin_access(0, 7, 0x2000, True)
        t.stage("filter_probe", cycles=0, candidate=False)
        t.stage("cache", cycles=8, hit_level="l2")
        events = list(t.events)
        assert [e.stage for e in events] == ["filter_probe", "cache"]
        assert {e.seq for e in events} == {0}
        assert events[1].detail["hit_level"] == "l2"

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(sink=path) as t:
            t.mark("run_start", workload="w")
            t.begin_access(0, 1, 0x1000, False)
            t.stage("cache", cycles=4, hit_level="l1")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["stage"] == "mark" and first["label"] == "run_start"
        assert second["stage"] == "cache" and second["hit_level"] == "l1"

    def test_simulation_emits_pipeline_stages(self):
        tracer = Tracer()
        run_workload("stream", "hybrid_tlb", seed=42, tracer=tracer, **FAST)
        stages = {e.stage for e in tracer.events}
        assert {"filter_probe", "cache", "access"} <= stages
        # An LLC miss must have gone through the delayed TLB.
        assert "delayed_tlb" in stages
        closing = [e for e in tracer.events if e.stage == "access"]
        assert closing and all("hit_level" in e.detail for e in closing)

    def test_segment_walk_events(self):
        tracer = Tracer()
        run_workload("stream", "hybrid_segments", seed=42, tracer=tracer,
                     **FAST)
        stages = {e.stage for e in tracer.events}
        assert "segment_walk" in stages

    def test_events_for_groups_by_seq(self):
        t = Tracer()
        for seq in range(3):
            t.begin_access(0, 1, 0x1000 + seq, False)
            t.stage("filter_probe", cycles=0)
            t.stage("cache", cycles=4 + seq)
        events = list(t.events_for(1))
        assert [e.stage for e in events] == ["filter_probe", "cache"]
        assert all(e.seq == 1 for e in events)
        assert events[1].cycles == 5
        assert list(t.events_for(99)) == []

    def test_events_for_tracks_ring_eviction(self):
        t = Tracer(buffer_size=3)
        for seq in range(4):
            t.begin_access(0, 1, seq, False)
            t.stage("cache", cycles=1)
            t.stage("dram", cycles=2)
        # Buffer holds the last 3 events: access 2's "dram" + access 3's
        # pair; access 2's "cache" was evicted from its group.
        assert [e.stage for e in t.events_for(2)] == ["dram"]
        assert [e.stage for e in t.events_for(3)] == ["cache", "dram"]
        assert list(t.events_for(0)) == []
        groups = dict(t.accesses())
        assert set(groups) == {2, 3}

    def test_close_is_idempotent(self, tmp_path):
        t = Tracer(sink=tmp_path / "t.jsonl")
        t.mark("run_start")
        with t:
            pass                 # __exit__ closes once...
        t.close()                # ...and an explicit second close is a no-op
        assert t.closed


class TestTracerParity:
    def test_results_identical_with_and_without_tracing(self):
        base = run_workload("stream", "hybrid_tlb", seed=42, interval=100,
                            **FAST)
        traced = run_workload("stream", "hybrid_tlb", seed=42, interval=100,
                              tracer=Tracer(sample_every=2), **FAST)
        assert traced.instructions == base.instructions
        assert traced.accesses == base.accesses
        assert traced.cycles == base.cycles
        assert traced.ipc == base.ipc
        assert traced.cycle_breakdown == base.cycle_breakdown
        assert traced.stats == base.stats
        assert traced.histograms == base.histograms
        assert traced.intervals == base.intervals
        assert traced.manifest.identity() == base.manifest.identity()


# --------------------------------------------------------------------- #
# Interval snapshots
# --------------------------------------------------------------------- #

class TestIntervals:
    @pytest.mark.parametrize("accesses,interval", [(600, 200), (600, 250),
                                                   (100, 7)])
    def test_snapshot_count_is_ceil(self, accesses, interval):
        result = run_workload("stream", "hybrid_tlb", accesses=accesses,
                              warmup=100, seed=42, interval=interval)
        assert len(result.intervals) == math.ceil(accesses / interval)
        assert sum(s["accesses"] for s in result.intervals) == accesses

    def test_window_deltas_sum_to_aggregate(self):
        result = run_workload("stream", "baseline", seed=42, interval=100,
                              **FAST)
        series = result.interval_series("cache_hierarchy", "accesses")
        assert len(series) == 6
        # Warm-up accesses are excluded from windows, so the series sums
        # to the timed portion of the aggregate counter.
        total = result.counter("cache_hierarchy", "accesses")
        assert 0 < sum(series) <= total

    def test_no_interval_means_no_snapshots(self):
        result = run_workload("stream", "baseline", seed=42, **FAST)
        assert result.intervals == []
        assert result.interval is None

    def test_recorder_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            IntervalRecorder(object(), object(), 0)

    def test_series_missing_group_or_counter_is_zeroes(self):
        class _Registry:
            def snapshot(self):
                return {"cache": {"hits": 0}}

        class _Acct:
            instructions = 0

        class _Timing:
            acct = _Acct()

            def total_cycles(self):
                return 0

        recorder = IntervalRecorder(_Registry(), _Timing(), 2)
        for _ in range(4):
            recorder.tick()
        recorder.finish()
        assert len(recorder.snapshots) == 2
        # A group or counter that never appeared yields an all-zero
        # series of the right length, not a KeyError.
        assert recorder.series("no_such_group", "hits") == [0, 0]
        assert recorder.series("cache", "no_such_counter") == [0, 0]


class _FakeTiming:
    """Mutable stand-in for TimingModel, driven tick by tick."""

    class _Acct:
        instructions = 0

    def __init__(self):
        self.acct = self._Acct()
        self.cycles = 0

    def total_cycles(self):
        return self.cycles


class _FakeRegistry:
    def __init__(self):
        self.counters = {"g": {"c": 0}}

    def snapshot(self):
        return {"g": dict(self.counters["g"])}


class TestIntervalCoarsening:
    """``max_snapshots``: bounded memory by merging adjacent windows."""

    def _drive(self, ticks, interval, max_snapshots):
        registry, timing = _FakeRegistry(), _FakeTiming()
        recorder = IntervalRecorder(registry, timing, interval,
                                    max_snapshots=max_snapshots)
        for i in range(ticks):
            timing.acct.instructions += 1
            timing.cycles += 2
            registry.counters["g"]["c"] += 3
            recorder.tick()
        recorder.finish()
        return recorder

    def test_rejects_max_snapshots_below_two(self):
        with pytest.raises(ValueError, match="max_snapshots"):
            IntervalRecorder(_FakeRegistry(), _FakeTiming(), 1,
                             max_snapshots=1)

    def test_length_stays_bounded(self):
        recorder = self._drive(ticks=1000, interval=1, max_snapshots=8)
        assert len(recorder.snapshots) <= 8

    def test_sums_survive_coarsening(self):
        ticks = 1000
        recorder = self._drive(ticks=ticks, interval=1, max_snapshots=8)
        snaps = recorder.snapshots
        assert sum(s["accesses"] for s in snaps) == ticks
        assert sum(s["instructions"] for s in snaps) == ticks
        assert sum(s["cycles"] for s in snaps) == 2 * ticks
        assert sum(recorder.series("g", "c")) == 3 * ticks
        # ipc recomputed from the merged deltas, not averaged.
        assert all(s["ipc"] == pytest.approx(0.5) for s in snaps)

    def test_effective_interval_doubles_per_coarsening(self):
        # 9 windows of 1 with max 4: 5 -> 3 (x2), 5 -> 3 (x4).
        recorder = self._drive(ticks=9, interval=1, max_snapshots=4)
        assert recorder.interval == 4

    def test_odd_trailing_window_survives_unmerged(self):
        registry, timing = _FakeRegistry(), _FakeTiming()
        recorder = IntervalRecorder(registry, timing, 1, max_snapshots=2)
        for _ in range(3):
            timing.acct.instructions += 1
            timing.cycles += 1
            recorder.tick()
        # Third window triggered one coarsening: [2-merged, 1-lone].
        assert [s["accesses"] for s in recorder.snapshots] == [2, 1]
        assert [s["index"] for s in recorder.snapshots] == [0, 1]

    def test_indexes_stay_contiguous(self):
        recorder = self._drive(ticks=321, interval=2, max_snapshots=6)
        assert ([s["index"] for s in recorder.snapshots]
                == list(range(len(recorder.snapshots))))

    def test_no_bound_means_no_coarsening(self):
        recorder = self._drive(ticks=50, interval=1, max_snapshots=None)
        assert len(recorder.snapshots) == 50
        assert recorder.interval == 1


# --------------------------------------------------------------------- #
# Manifests
# --------------------------------------------------------------------- #

class TestManifest:
    def test_attached_to_results(self):
        result = run_workload("stream", "baseline", seed=42, **FAST)
        m = result.manifest
        assert isinstance(m, RunManifest)
        assert m.workload == "stream"
        assert m.seed == 42
        assert m.accesses == FAST["accesses"]
        assert m.package_version

    def test_identity_deterministic_for_fixed_seed(self):
        a = run_workload("stream", "hybrid_tlb", seed=42, **FAST)
        b = run_workload("stream", "hybrid_tlb", seed=42, **FAST)
        assert a.manifest.identity() == b.manifest.identity()
        # ... and the simulated outcomes match, as the identity promises.
        assert a.cycles == b.cycles and a.stats == b.stats

    def test_config_hash_tracks_parameters(self):
        base = SystemConfig()
        assert config_fingerprint(base) == config_fingerprint(SystemConfig())
        bigger = base.with_llc_size(8 * 1024 * 1024)
        assert config_fingerprint(base) != config_fingerprint(bigger)

    def test_json_round_trip(self):
        result = run_workload("stream", "baseline", seed=42, **FAST)
        doc = json.loads(json.dumps(result.to_json_dict()))
        assert doc["schema"] == "repro.result/v1"
        assert doc["manifest"]["config_hash"] == result.manifest.config_hash
        assert doc["cycle_breakdown"]
        assert "stats" in doc and "intervals" in doc


# --------------------------------------------------------------------- #
# Derived ratios / report fixes (satellites)
# --------------------------------------------------------------------- #

class TestDerivedRatios:
    def test_hit_rate_added_when_pair_exists(self):
        g = StatGroup("g")
        g.add("hits", 3)
        g.add("misses", 1)
        snap = g.snapshot_with_ratios()
        assert snap["hit_rate"] == 0.75
        assert snap["hits"] == 3

    def test_prefixed_pairs(self):
        snap = derive_ratios({"walk_cache_hits": 1, "walk_cache_misses": 3})
        assert snap["walk_cache_hit_rate"] == 0.25

    def test_no_ratio_without_pair_or_samples(self):
        assert "hit_rate" not in derive_ratios({"hits": 5})
        assert "hit_rate" not in derive_ratios({"hits": 0, "misses": 0})


class TestHorizontalBarsNegative:
    def test_negative_clamps_and_annotates(self):
        out = horizontal_bars({"up": 2.0, "down": -1.0}, width=10)
        down = [line for line in out.splitlines() if line.startswith("down")][0]
        assert "#" not in down
        assert "<0" in down

    def test_positive_rows_unchanged(self):
        out = horizontal_bars({"a": 1.0, "b": 2.0}, width=10)
        assert out.splitlines()[1].count("#") == 10


# --------------------------------------------------------------------- #
# Disabled-path overhead guard
# --------------------------------------------------------------------- #

def _fresh_system(accesses, warmup, seed=42):
    config = SystemConfig()
    kernel = Kernel(config)
    workload = lay_out("stream", kernel, seed=seed)
    mmu = build_mmu("hybrid_tlb", kernel, config)
    return mmu, workload


def _raw_seed_loop(accesses, warmup):
    """The seed simulator's body: access + timing, no observability."""
    mmu, workload = _fresh_system(accesses, warmup)
    timing = TimingModel(mmu.config.core, mlp=workload.spec.mlp)
    start = time.perf_counter()
    for i, record in enumerate(workload.trace(warmup + accesses, seed=42)):
        outcome = mmu.access(record.core, record.asid, record.va,
                             record.is_write)
        if i >= warmup:
            timing.record(outcome, instructions_between=1 + record.gap)
    return time.perf_counter() - start


def _instrumented_loop(accesses, warmup):
    mmu, workload = _fresh_system(accesses, warmup)
    sim = Simulator(mmu)
    start = time.perf_counter()
    sim.run(workload, accesses, warmup=warmup, seed=42)
    return time.perf_counter() - start


@pytest.mark.perf
def test_disabled_tracer_overhead_under_5_percent():
    """With tracing off, Simulator.run must stay within 5% of the bare
    access+timing loop the seed shipped (ISSUE 1 acceptance)."""
    accesses, warmup = 6000, 1000
    # Interleave the two loops so transient machine load hits both,
    # alternating which runs first each round to cancel order bias, and
    # keep the minimum of each: min-of-N converges to the true floor.
    # Stop as soon as the floors demonstrate compliance — more rounds
    # can only lower the minima, never overturn a pass.
    raw = instrumented = float("inf")
    for round_no in range(16):
        loops = [_raw_seed_loop, _instrumented_loop]
        if round_no % 2:
            loops.reverse()
        for loop in loops:
            t = loop(accesses, warmup)
            if loop is _raw_seed_loop:
                raw = min(raw, t)
            else:
                instrumented = min(instrumented, t)
        if round_no >= 4 and instrumented <= raw * 1.05:
            break
    assert instrumented <= raw * 1.05, (
        f"observability plumbing costs {instrumented / raw - 1:.1%} "
        f"with tracing disabled (raw={raw:.4f}s, sim={instrumented:.4f}s)")
