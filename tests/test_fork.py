"""Tests for fork() with copy-on-write under hybrid virtual caching."""

import dataclasses

import pytest

from repro.common.address import PAGE_SIZE, page_base
from repro.common.params import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel

MB = 1024 * 1024


@pytest.fixture()
def system():
    config = dataclasses.replace(SystemConfig(), cores=2)
    kernel = Kernel(config)
    parent = kernel.create_process("parent")
    vma = kernel.mmap(parent, 16 * PAGE_SIZE, policy="demand")
    # Touch every page so fork has something to share.
    for i in range(16):
        kernel.translate(parent.asid, vma.vbase + i * PAGE_SIZE)
    return config, kernel, parent, vma


class TestForkSemantics:
    def test_child_shares_frames_readonly(self, system):
        _config, kernel, parent, vma = system
        child = kernel.fork(parent)
        t_parent = kernel.translate(parent.asid, vma.vbase)
        t_child = kernel.translate(child.asid, vma.vbase)
        assert page_base(t_parent.pa) == page_base(t_child.pa)
        assert not t_parent.permissions & 0x2
        assert not t_child.permissions & 0x2

    def test_no_filter_update_needed(self, system):
        """CoW pages are r/o synonyms: Section III-D says they may stay
        virtually addressed — neither filter flags them."""
        _config, kernel, parent, vma = system
        child = kernel.fork(parent)
        assert not parent.synonym_filter.is_synonym_candidate(vma.vbase)
        assert not child.synonym_filter.is_synonym_candidate(vma.vbase)

    def test_child_write_privatizes(self, system):
        _config, kernel, parent, vma = system
        child = kernel.fork(parent)
        shared_pa = page_base(kernel.translate(parent.asid, vma.vbase).pa)
        kernel.handle_cow_fault(child, vma.vbase)
        child_pa = page_base(kernel.translate(child.asid, vma.vbase).pa)
        parent_pa = page_base(kernel.translate(parent.asid, vma.vbase).pa)
        assert child_pa != shared_pa
        assert parent_pa == shared_pa  # parent untouched

    def test_shared_vmas_stay_shared(self):
        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 4 * PAGE_SIZE)
        child = kernel.fork(a)
        child_shared = [v for v in child.vmas() if v.shared]
        assert len(child_shared) == 1
        t = kernel.translate(child.asid, child_shared[0].vbase)
        assert page_base(t.pa) == page_base(
            kernel.translate(a.asid, vmas[a.asid].vbase).pa)
        assert child.synonym_filter.is_synonym_candidate(
            child_shared[0].vbase)

    def test_untouched_pages_fault_fresh_in_child(self, system):
        _config, kernel, parent, _vma = system
        extra = kernel.mmap(parent, 4 * PAGE_SIZE, policy="demand")
        # Never touched in the parent before fork.
        child = kernel.fork(parent)
        t = kernel.translate(child.asid, extra.vbase)
        assert t.pa is not None  # fresh demand frame, not a fault


class TestForkThroughHybridMmu:
    def test_cow_write_through_mmu(self, system):
        config, kernel, parent, vma = system
        mmu = HybridMmu(kernel, config, delayed="tlb")
        # Parent caches a line r/w before the fork...
        before = mmu.access(0, parent.asid, vma.vbase, True)
        child = kernel.fork(parent)
        # ...fork downgraded the cached copies in place.
        from repro.common.address import virtual_block_key
        line = mmu.caches.probe_line(0, virtual_block_key(parent.asid,
                                                          vma.vbase))
        if line is not None:
            assert not line.permissions & 0x2
        # Child read sees the shared frame.
        read = mmu.access(1, child.asid, vma.vbase, False)
        assert page_base(read.translated_pa) == page_base(before.translated_pa)
        # Child write triggers the CoW permission fault and privatizes.
        write = mmu.access(1, child.asid, vma.vbase, True)
        assert mmu.hybrid_stats["permission_faults"] >= 1
        assert page_base(write.translated_pa) != page_base(before.translated_pa)
        # Parent's data is unaffected.
        again = mmu.access(0, parent.asid, vma.vbase, False)
        assert page_base(again.translated_pa) == page_base(before.translated_pa)

    def test_both_sides_can_privatize(self, system):
        config, kernel, parent, vma = system
        mmu = HybridMmu(kernel, config, delayed="tlb")
        child = kernel.fork(parent)
        pa_child = mmu.access(1, child.asid, vma.vbase, True).translated_pa
        pa_parent = mmu.access(0, parent.asid, vma.vbase, True).translated_pa
        assert page_base(pa_child) != page_base(pa_parent)
