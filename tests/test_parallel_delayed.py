"""Tests for the parallel-vs-serial delayed translation design choice."""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel
from repro.sim import Simulator, lay_out

MB = 1024 * 1024


def build(parallel, delayed="segments"):
    config = SystemConfig()
    kernel = Kernel(config)
    p = kernel.create_process("p")
    vma = kernel.mmap(p, 8 * MB, policy="eager")
    mmu = HybridMmu(kernel, config, delayed=delayed,
                    parallel_delayed=parallel)
    return kernel, p, vma, mmu


class TestParallelDelayedTranslation:
    def test_parallel_hides_latency_under_llc(self):
        _k, p, vma, serial = build(parallel=False)
        out_serial = serial.access(0, p.asid, vma.vbase, False)
        _k2, p2, vma2, parallel = build(parallel=True)
        out_parallel = parallel.access(0, p2.asid, vma2.vbase, False)
        assert out_parallel.delayed_cycles <= out_serial.delayed_cycles
        # Same translation result either way.
        assert (out_parallel.translated_pa - vma2.segments[0].pbase
                == out_serial.translated_pa - vma.segments[0].pbase)

    def test_parallel_wastes_energy_on_llc_hits(self):
        """The paper's stated cost: speculative translations on LLC hits."""
        _k, p, vma, mmu = build(parallel=True)
        # Fill: miss to memory, then evict from L1/L2 naturally by
        # touching far blocks so a later access hits the LLC.
        mmu.access(0, p.asid, vma.vbase, False)
        # Thrash the private levels only (small strides over many sets).
        for i in range(1, 600):
            mmu.access(0, p.asid, vma.vbase + i * 4096 + 64, False)
        out = mmu.access(0, p.asid, vma.vbase, False)
        if out.hit_level == "llc":
            assert mmu.hybrid_stats["wasted_parallel_translations"] >= 1

    def test_serial_never_translates_on_hits(self):
        _k, p, vma, mmu = build(parallel=False)
        mmu.access(0, p.asid, vma.vbase, False)
        translations_after_fill = mmu.delayed.translator.stats["translations"]
        mmu.access(0, p.asid, vma.vbase, False)  # L1 hit
        assert (mmu.delayed.translator.stats["translations"]
                == translations_after_fill)

    def test_parallel_performance_at_least_serial_nosc(self):
        """Parallel access should recover what the missing SC loses."""
        results = {}
        for label, kwargs in (
            ("serial_sc", dict(parallel_delayed=False,
                               use_segment_cache=True)),
            ("parallel_nosc", dict(parallel_delayed=True,
                                   use_segment_cache=False)),
            ("serial_nosc", dict(parallel_delayed=False,
                                 use_segment_cache=False)),
        ):
            config = SystemConfig()
            kernel = Kernel(config)
            workload = lay_out("gups", kernel)
            mmu = HybridMmu(kernel, config, delayed="segments", **kwargs)
            results[label] = Simulator(mmu).run(workload, accesses=6000,
                                                warmup=3000).ipc
        # The paper's two viable points both beat plain serial-no-SC.
        assert results["parallel_nosc"] >= results["serial_nosc"] - 1e-9
        assert results["serial_sc"] >= results["serial_nosc"] - 1e-9
