"""Negative tests: what breaks when the design's guarantees are removed.

The hybrid design rests on two properties; these tests sabotage each one
and demonstrate the resulting failure, pinning down *why* the mechanisms
exist (and guarding against refactors that would quietly weaken them).
"""

import dataclasses

import pytest

from repro.common.address import PAGE_SIZE, physical_block_key, virtual_block_key
from repro.common.params import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel

MB = 1024 * 1024


def shared_system():
    config = dataclasses.replace(SystemConfig(), cores=2)
    kernel = Kernel(config)
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    kernel.mmap(a, MB, policy="eager")
    kernel.mmap(b, MB, policy="eager")
    vmas = kernel.mmap_shared([a, b], 8 * PAGE_SIZE)
    mmu = HybridMmu(kernel, config, delayed="tlb")
    return kernel, a, b, vmas, mmu


class TestFilterFalseNegativeFailure:
    """A filter that can miss synonyms breaks the single-name rule."""

    def test_sabotaged_filter_creates_duplicate_names(self):
        kernel, a, b, vmas, mmu = shared_system()
        # Sabotage: wipe process a's filter after the OS populated it —
        # the exact failure a buggy rebuild or lossy hash would cause.
        a.synonym_filter.fine.clear()
        a.synonym_filter.coarse.clear()

        va_a = vmas[a.asid].vbase
        va_b = vmas[b.asid].vbase
        # a writes through what it now believes is a private page:
        # cached under ASID+VA (the wrong name!).
        mmu.access(0, a.asid, va_a, is_write=True)
        # b accesses the same physical data through the correct PA path.
        mmu.access(1, b.asid, va_b, is_write=False)

        # The failure: the same physical block is now cached under two
        # names at once — the paper's incoherence scenario.
        pa = kernel.translate(b.asid, va_b).pa
        va_name = mmu.caches.probe_line(0, virtual_block_key(a.asid, va_a))
        pa_name = mmu.caches.probe_line(1, physical_block_key(pa))
        assert va_name is not None and pa_name is not None

    def test_intact_filter_prevents_it(self):
        kernel, a, b, vmas, mmu = shared_system()
        mmu.access(0, a.asid, vmas[a.asid].vbase, is_write=True)
        mmu.access(1, b.asid, vmas[b.asid].vbase, is_write=False)
        key = virtual_block_key(a.asid, vmas[a.asid].vbase)
        assert mmu.caches.probe_line(0, key) is None  # single (PA) name


class TestMissingFlushFailure:
    """Skipping the private→shared flush leaves stale virtual copies."""

    def test_transition_without_flush_leaves_stale_line(self):
        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * PAGE_SIZE, policy="demand")
        mmu = HybridMmu(kernel, config, delayed="tlb")
        mmu.access(0, p.asid, vma.vbase, is_write=True)
        key = virtual_block_key(p.asid, vma.vbase)
        assert mmu.caches.probe_line(0, key) is not None

        # Sabotage: flip the PTE + filter to shared WITHOUT the kernel's
        # flush path (what share_existing_pages would normally do).
        kernel.translate(p.asid, vma.vbase)
        p.page_table.set_shared(vma.vbase, True)
        p.record_shared_page(vma.vbase)

        # The stale ASID+VA copy is still resident while new accesses go
        # through the PA path: two names live simultaneously.
        out = mmu.access(0, p.asid, vma.vbase, is_write=False)
        stale = mmu.caches.probe_line(0, key)
        physical = mmu.caches.probe_line(
            0, physical_block_key(out.translated_pa))
        assert stale is not None and physical is not None

    def test_kernel_flush_path_prevents_it(self):
        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * PAGE_SIZE, policy="demand")
        mmu = HybridMmu(kernel, config, delayed="tlb")
        mmu.access(0, p.asid, vma.vbase, is_write=True)
        kernel.share_existing_pages(p, vma.vbase, PAGE_SIZE)
        key = virtual_block_key(p.asid, vma.vbase)
        assert mmu.caches.probe_line(0, key) is None


class TestUndersizedFilterDegradation:
    """Smaller Bloom filters degrade gracefully: correctness holds, the
    false-positive rate (cost, not correctness) rises."""

    @pytest.mark.parametrize("bits", [64, 1024])
    def test_detection_guarantee_independent_of_size(self, bits):
        from repro.common.params import SynonymFilterConfig
        from repro.filters import SynonymFilter

        filt = SynonymFilter(SynonymFilterConfig(bits=bits))
        pages = [0x7F00_0000_0000 + i * PAGE_SIZE for i in range(64)]
        for va in pages:
            filt.mark_shared(va)
        assert all(filt.is_synonym_candidate(va) for va in pages)

    def test_smaller_filter_more_false_positives(self):
        from repro.common.params import SynonymFilterConfig
        from repro.common.rng import make_rng
        from repro.filters import SynonymFilter

        rng = make_rng(17)
        shared = [rng.randrange(0, 1 << 47) & ~0xFFF for _ in range(200)]
        probes = [rng.randrange(0, 1 << 47) & ~0x7 for _ in range(5000)]
        rates = {}
        for bits in (128, 1024):
            filt = SynonymFilter(SynonymFilterConfig(bits=bits))
            for va in shared:
                filt.mark_shared(va)
            rates[bits] = sum(filt.is_synonym_candidate(va)
                              for va in probes) / len(probes)
        assert rates[128] >= rates[1024]
