"""Direct tests for processes, VMAs and VA-area management."""

import pytest

from repro.common.address import PAGE_SIZE
from repro.common.params import SystemConfig
from repro.energy import EnergyModel, EnergyParams
from repro.osmodel import FrameAllocator, OsSegmentTable
from repro.osmodel.address_space import POLICY_DEMAND, Process, Vma

MB = 1024 * 1024


@pytest.fixture()
def process():
    frames = FrameAllocator(256 * MB)
    table = OsSegmentTable()
    return Process("p", asid=3, frames=frames, segment_table=table)


class TestVma:
    def test_contains(self):
        vma = Vma(0x1000, 0x2000, POLICY_DEMAND)
        assert vma.contains(0x1000)
        assert vma.contains(0x2FFF)
        assert not vma.contains(0x3000)
        assert not vma.contains(0xFFF)

    def test_vlimit(self):
        assert Vma(0x1000, 0x2000, POLICY_DEMAND).vlimit == 0x3000

    def test_segment_for_empty(self):
        assert Vma(0x1000, 0x2000, POLICY_DEMAND).segment_for(0x1500) is None


class TestVaAreas:
    def test_heap_reservations_monotone(self, process):
        a = process.reserve_va(0x4000)
        b = process.reserve_va(0x4000)
        assert b >= a + 0x4000

    def test_mmap_area_far_from_heap(self, process):
        heap = process.reserve_va(0x4000)
        mmap_area = process.reserve_va(0x4000, area="mmap")
        assert mmap_area > 0x7F00_0000_0000 - 1
        assert abs(mmap_area - heap) > (1 << 40)

    def test_mmap_area_guard_pages(self, process):
        a = process.reserve_va(PAGE_SIZE, area="mmap")
        b = process.reserve_va(PAGE_SIZE, area="mmap")
        assert b >= a + 2 * PAGE_SIZE  # guard page between mappings

    def test_mmap_areas_distinct_per_asid(self):
        frames = FrameAllocator(64 * MB)
        table = OsSegmentTable()
        p1 = Process("a", 1, frames, table)
        p2 = Process("b", 2, frames, table)
        assert (p1.reserve_va(PAGE_SIZE, area="mmap")
                != p2.reserve_va(PAGE_SIZE, area="mmap"))

    def test_sizes_page_aligned(self, process):
        a = process.reserve_va(100)
        b = process.reserve_va(100)
        assert (b - a) % PAGE_SIZE == 0


class TestVmaIndex:
    def test_find_vma(self, process):
        lo = process.add_vma(Vma(0x1_0000, 0x1000, POLICY_DEMAND))
        hi = process.add_vma(Vma(0x5_0000, 0x2000, POLICY_DEMAND))
        assert process.find_vma(0x1_0800) is lo
        assert process.find_vma(0x5_1FFF) is hi
        assert process.find_vma(0x3_0000) is None
        assert process.find_vma(0x0_0500) is None

    def test_remove_vma(self, process):
        vma = process.add_vma(Vma(0x1_0000, 0x1000, POLICY_DEMAND))
        process.remove_vma(vma)
        assert process.find_vma(0x1_0000) is None
        assert process.vmas() == []

    def test_vmas_listed_sorted(self, process):
        process.add_vma(Vma(0x5_0000, 0x1000, POLICY_DEMAND))
        process.add_vma(Vma(0x1_0000, 0x1000, POLICY_DEMAND))
        bases = [v.vbase for v in process.vmas()]
        assert bases == sorted(bases)


class TestSharedBookkeeping:
    def test_record_and_rebuild(self, process):
        pages = [0x7F00_0000_0000 + i * PAGE_SIZE for i in range(5)]
        for va in pages:
            process.record_shared_page(va)
        assert process.shared_page_list == pages
        process.rebuild_filter()
        for va in pages:
            assert process.synonym_filter.is_synonym_candidate(va)

    def test_mapped_bytes(self, process):
        assert process.mapped_bytes() == 0
        process.page_table.map(0x1000, 5)
        assert process.mapped_bytes() == PAGE_SIZE


class TestStaticEnergy:
    def test_baseline_vs_hybrid_static(self):
        model = EnergyModel()
        cycles = 1_000_000
        base = model.baseline_static_energy(cycles)
        hybrid_tlb = model.hybrid_static_energy(cycles, segments=False)
        hybrid_seg = model.hybrid_static_energy(cycles, segments=True)
        assert base > 0 and hybrid_tlb > 0 and hybrid_seg > 0
        # The hybrid replaces two per-core TLBs with one small TLB + a
        # filter; its per-core static cost is lower even after the shared
        # delayed structures and tag overhead are charged.
        assert hybrid_tlb < base * 1.5

    def test_static_scales_with_cycles_and_cores(self):
        model = EnergyModel()
        assert (model.baseline_static_energy(2000, cores=2)
                == 2 * model.baseline_static_energy(2000, cores=1))
        assert (model.baseline_static_energy(2000)
                == 2 * model.baseline_static_energy(1000))

    def test_tag_static_overhead_within_paper_bound(self):
        p = EnergyParams()
        overhead = p.cache_static_pj * p.tag_extension_static_overhead
        assert overhead / p.cache_static_pj <= 0.0032  # <= 0.32 %
