"""Edge-case coverage across modules: small configs, boundary values,
error paths, and rarely-exercised interfaces."""

import dataclasses

import pytest

from repro.common.address import PAGE_SIZE
from repro.common.params import (
    CacheConfig,
    SystemConfig,
    TlbConfig,
)
from repro.common.rng import make_rng, zipf_sampler
from repro.core import HybridMmu
from repro.osmodel import Kernel
from repro.sim import Simulator, build_mmu, lay_out
from repro.tlb import SetAssociativeTlb, TlbEntry
from repro.virt.twod_walker import NestedTlb

MB = 1024 * 1024


class TestZipfSampler:
    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            zipf_sampler(make_rng(1), 0)

    def test_single_item(self):
        sample = zipf_sampler(make_rng(1), 1)
        assert all(sample() == 0 for _ in range(10))

    def test_rank_zero_most_popular(self):
        sample = zipf_sampler(make_rng(1), 100, theta=1.0)
        from collections import Counter
        counts = Counter(sample() for _ in range(5000))
        assert counts[0] == max(counts.values())

    def test_theta_zero_near_uniform(self):
        sample = zipf_sampler(make_rng(1), 10, theta=0.0)
        from collections import Counter
        counts = Counter(sample() for _ in range(10_000))
        assert max(counts.values()) < 2.0 * min(counts.values())


class TestRngStreams:
    def test_streams_decorrelated(self):
        a = make_rng(42, "alpha")
        b = make_rng(42, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_same_stream_reproducible(self):
        assert (make_rng(42, "x").random()
                == make_rng(42, "x").random())


class TestTinyStructures:
    def test_direct_mapped_tlb(self):
        tlb = SetAssociativeTlb(TlbConfig(4, 1, 1))  # direct-mapped
        for vpn in range(8):
            tlb.fill(TlbEntry(vpn << 4, vpn, True))
        assert tlb.occupancy() <= 4

    def test_fully_associative_tlb(self):
        tlb = SetAssociativeTlb(TlbConfig(4, 4, 1))  # one set
        for vpn in range(6):
            tlb.fill(TlbEntry(vpn, vpn, True))
        assert tlb.occupancy() == 4
        # Strict LRU: the two oldest are gone.
        assert tlb.probe(0) is None and tlb.probe(1) is None

    def test_one_line_cache_hierarchy(self):
        config = dataclasses.replace(
            SystemConfig(),
            l1=CacheConfig(64, 1, 1),
            l2=CacheConfig(128, 1, 2),
            llc=CacheConfig(256, 1, 3),
        )
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * PAGE_SIZE, policy="eager")
        mmu = HybridMmu(kernel, config)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.translated_pa == kernel.translate(p.asid, vma.vbase).pa


class TestNestedTlb:
    def test_lru(self):
        tlb = NestedTlb(entries=2)
        tlb.fill(1, 101)
        tlb.fill(2, 102)
        assert tlb.lookup(1) == 101  # refresh
        tlb.fill(3, 103)             # evicts 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == 101

    def test_flush(self):
        tlb = NestedTlb()
        tlb.fill(1, 10)
        tlb.flush()
        assert tlb.lookup(1) is None


class TestHybridVariants:
    def test_index_cache_size_override(self):
        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * MB, policy="eager")
        mmu = HybridMmu(kernel, config, delayed="segments",
                        index_cache_size=1024)
        assert mmu.delayed.translator.index_cache.size_bytes == 1024
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.translated_pa == kernel.translate(p.asid, vma.vbase).pa

    def test_unknown_delayed_engine(self):
        kernel = Kernel(SystemConfig())
        with pytest.raises(ValueError):
            HybridMmu(kernel, delayed="wormhole")

    def test_access_before_any_mapping_faults(self):
        from repro.osmodel import SegmentationViolation

        config = SystemConfig()
        kernel = Kernel(config)
        p = kernel.create_process("p")
        mmu = HybridMmu(kernel, config)
        with pytest.raises(SegmentationViolation):
            mmu.access(0, p.asid, 0xDEAD_0000, False)


class TestSimulatorEdges:
    def test_zero_warmup(self):
        kernel = Kernel(SystemConfig())
        workload = lay_out("stream", kernel)
        mmu = build_mmu("ideal", kernel)
        result = Simulator(mmu).run(workload, accesses=100, warmup=0)
        assert result.accesses == 100

    def test_reset_after_warmup_zeroes_counters(self):
        kernel = Kernel(SystemConfig())
        workload = lay_out("stream", kernel)
        mmu = build_mmu("hybrid_tlb", kernel)
        Simulator(mmu).run(workload, accesses=50, warmup=500,
                           reset_stats_after_warmup=True)
        assert mmu.hybrid_stats["accesses"] == 50

    def test_single_access_simulation(self):
        kernel = Kernel(SystemConfig())
        workload = lay_out("gups", kernel)
        mmu = build_mmu("baseline", kernel)
        result = Simulator(mmu).run(workload, accesses=1)
        assert result.accesses == 1
        assert result.cycles > 0


class TestEnigmaSharedWindows:
    def test_distinct_shared_regions_distinct_namespaces(self):
        from repro.core import EnigmaMmu

        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        shared1 = kernel.mmap_shared([a, b], 4 * PAGE_SIZE)
        shared2 = kernel.mmap_shared([a, b], 4 * PAGE_SIZE)
        mmu = EnigmaMmu(kernel, config)
        ns1 = mmu._intermediate(a.asid, shared1[a.asid].vbase)[0]
        ns2 = mmu._intermediate(a.asid, shared2[a.asid].vbase)[0]
        assert ns1 != ns2


class TestKernelMiscellany:
    def test_index_tree_rebuild_counted(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        kernel.mmap(p, MB, policy="eager")
        kernel.current_index_tree()
        rebuilds = kernel.stats["index_tree_rebuilds"]
        kernel.current_index_tree()  # unchanged: no rebuild
        assert kernel.stats["index_tree_rebuilds"] == rebuilds
        kernel.mmap(p, MB, policy="eager")
        kernel.frames.alloc_frame()
        kernel.mmap(p, MB, policy="eager")
        kernel.current_index_tree()
        assert kernel.stats["index_tree_rebuilds"] > rebuilds

    def test_multiple_listeners_all_called(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, PAGE_SIZE, policy="demand")
        kernel.translate(p.asid, vma.vbase)
        calls = []
        kernel.on_shootdown(lambda a, v: calls.append("one"))
        kernel.on_shootdown(lambda a, v: calls.append("two"))
        kernel.shootdown_page(p.asid, vma.vbase)
        assert calls == ["one", "two"]

    def test_change_permissions_skips_unmapped(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * PAGE_SIZE, policy="demand")
        # Nothing mapped yet: must not raise.
        kernel.change_permissions(p, vma.vbase, vma.length, 0x1)
