"""Smoke tests: every example script runs end to end (at reduced scale).

Examples are imported as modules, their access-count constants shrunk,
and their ``main()`` executed — so a refactor that breaks an example
fails the test suite rather than the first user who runs it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def shrink(module, **attrs):
    for attr, value in attrs.items():
        if hasattr(module, attr):
            setattr(module, attr, value)


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        shrink(module, ACCESSES=800, WARMUP=200)
        module.main()
        out = capsys.readouterr().out
        assert "Performance normalized" in out
        assert "Translation energy" in out

    def test_synonym_heavy_server(self, capsys):
        module = load_example("synonym_heavy_server")
        shrink(module, ACCESSES=1500, WARMUP=300)
        module.main()
        out = capsys.readouterr().out
        assert "synonym coherence" in out
        assert "one physical block" in out

    def test_big_memory_scaling(self, capsys):
        module = load_example("big_memory_scaling")
        shrink(module, ACCESSES=1200, WARMUP=300)
        module.main()
        out = capsys.readouterr().out
        assert "RMM range-TLB miss MPKI" in out

    def test_virtualized_guest(self, capsys):
        module = load_example("virtualized_guest")
        shrink(module, ACCESSES=1000, WARMUP=200)
        module.main()
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "content-based page sharing" in out

    def test_prior_schemes_tour(self, capsys):
        module = load_example("prior_schemes_tour")
        shrink(module, ACCESSES=800, WARMUP=400)
        module.main()
        out = capsys.readouterr().out
        assert "gups" in out and "memcached" in out

    def test_multiprogramming(self, capsys):
        module = load_example("multiprogramming")
        shrink(module, ACCESSES=400)
        module.main()
        out = capsys.readouterr().out
        assert "context switches" in out
        assert "filter-load cost" in out

    def test_parallel_sweep(self, capsys):
        module = load_example("parallel_sweep")
        shrink(module, ACCESSES=800, WARMUP=200, WORKERS=2)
        module.main()
        out = capsys.readouterr().out
        assert "bit-identical results: True" in out
        assert "warm rerun simulated 0 points" in out
        assert "1 captured as JobError" in out

    def test_trace_analysis(self, capsys):
        module = load_example("trace_analysis")
        shrink(module, ACCESSES=800, WARMUP=200, WORKERS=2,
               SIZES=(1024, 4096))
        module.main()
        out = capsys.readouterr().out
        assert "captured 2 shard(s)" in out
        assert "cycle attribution per run" in out
        assert "slowest accesses" in out

    def test_live_telemetry(self, capsys):
        module = load_example("live_telemetry")
        shrink(module, ACCESSES=800, WARMUP=200, WORKERS=2)
        module.main()
        out = capsys.readouterr().out
        assert "metric families" in out
        assert "byte-identical exposition: True" in out
        assert "ingested 3 run(s)" in out
        assert "ipc:" in out

    def test_fidelity_report(self, capsys, tmp_path):
        module = load_example("fidelity_report")
        shrink(module, ACCESSES=600, WARMUP=300,
               ENERGY_ACCESSES=600, ENERGY_WARMUP=1200,
               TABLE2_ACCESSES=800, TABLE2_WARMUP=1600,
               FIG7_LOOKUPS=400, VIRT_WORKLOADS=("gups",),
               ENERGY_WORKLOADS=("stream",),
               OUT=tmp_path / "report.html")
        module.main()
        out = capsys.readouterr().out
        assert "fidelity scorecard:" in out
        assert "no-data=0" in out          # every claim measured
        page = (tmp_path / "report.html").read_text(encoding="utf-8")
        assert "Paper-fidelity scorecard" in page
        assert "http://" not in page and "https://" not in page

    def test_simulation_service(self, capsys):
        module = load_example("simulation_service")
        shrink(module, ACCESSES=800, WARMUP=200, CLIENTS=3)
        module.main()
        out = capsys.readouterr().out
        assert "simulations executed: 1" in out
        assert "disposition: cached" in out
        assert 'repro_serve_submissions_total{disposition="accepted"} 1' \
            in out

    def test_bench_gate(self, capsys):
        module = load_example("bench_gate")
        shrink(module, ACCESSES=600, WARMUP=200)
        module.main()
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert "verdict: FAIL" in out
        assert "ipc" in out

    @pytest.mark.slow
    def test_reproduce_paper(self, capsys):
        module = load_example("reproduce_paper")
        shrink(module, SMALL=dict(accesses=800, warmup=600))
        module.main()
        out = capsys.readouterr().out
        assert "Table II" in out and "Figure 11" in out
