"""Tests for 2 MB huge-page support (page table, kernel THP, THP MMU)."""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.core import ThpBaselineMmu
from repro.osmodel import FrameAllocator, Kernel, PageTable
from repro.osmodel.pagetable import HUGE_PAGE_SIZE, PageFault

MB = 1024 * 1024


class TestPageTableHugeLeaves:
    @pytest.fixture()
    def table(self):
        return PageTable(FrameAllocator(256 * MB))

    def test_map_translate(self, table):
        table.map_huge(0x4000_0000, pfn=1024)
        pa = table.translate(0x4000_0000 + 0x12_3456)
        assert pa == (1024 << 12) + 0x12_3456

    def test_entry_reports_huge(self, table):
        table.map_huge(0x4000_0000, pfn=512)
        entry = table.entry(0x4000_0000 + 4096)
        assert entry.is_huge
        assert entry.page_shift == 21

    def test_walk_is_three_levels(self, table):
        table.map_huge(0x4000_0000, pfn=512)
        assert len(table.walk_path(0x4000_0000 + 99)) == 3

    def test_alignment_enforced(self, table):
        with pytest.raises(ValueError):
            table.map_huge(0x4000_1000, pfn=512)       # unaligned VA
        with pytest.raises(ValueError):
            table.map_huge(0x4000_0000, pfn=511)       # unaligned PA

    def test_cannot_shadow_small_pages(self, table):
        table.map(0x4000_0000, 7)
        with pytest.raises(ValueError):
            table.map_huge(0x4000_0000, pfn=512)

    def test_unmap_removes_whole_leaf(self, table):
        table.map_huge(0x4000_0000, pfn=512)
        assert table.mapped_pages == 512
        entry = table.unmap(0x4000_0000 + 5 * 4096)
        assert entry.is_huge
        assert table.mapped_pages == 0
        with pytest.raises(PageFault):
            table.entry(0x4000_0000)

    def test_iter_mappings_reports_huge_base(self, table):
        table.map_huge(0x4000_0000, pfn=512)
        table.map(0x9000_0000, 3)
        mappings = dict(table.iter_mappings())
        assert 0x4000_0000 in mappings
        assert mappings[0x4000_0000].is_huge
        assert 0x9000_0000 in mappings

    def test_mixed_sizes_coexist_in_region(self, table):
        table.map_huge(0x4000_0000, pfn=512)
        table.map(0x4000_0000 + HUGE_PAGE_SIZE, 9)  # next 2 MB slot, 4 KB
        assert table.entry(0x4000_0000).is_huge
        assert not table.entry(0x4000_0000 + HUGE_PAGE_SIZE).is_huge


class TestThpKernel:
    def test_eager_touch_installs_huge_leaf(self):
        kernel = Kernel(SystemConfig(), transparent_huge_pages=True)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * MB, policy="eager")
        kernel.translate(p.asid, vma.vbase + 123)
        assert p.page_table.entry(vma.vbase).is_huge
        assert kernel.stats["huge_first_touches"] == 1

    def test_huge_translation_matches_segment(self):
        kernel = Kernel(SystemConfig(), transparent_huge_pages=True)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * MB, policy="eager")
        seg = vma.segments[0]
        va = vma.vbase + 3 * MB + 77
        assert kernel.translate(p.asid, va).pa == va + seg.offset

    def test_non_thp_kernel_uses_small_pages(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * MB, policy="eager")
        kernel.translate(p.asid, vma.vbase)
        assert not p.page_table.entry(vma.vbase).is_huge

    def test_demand_pages_stay_small(self):
        kernel = Kernel(SystemConfig(), transparent_huge_pages=True)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 4 * MB, policy="demand")
        kernel.translate(p.asid, vma.vbase)
        assert not p.page_table.entry(vma.vbase).is_huge

    def test_thp_allocations_are_aligned(self):
        kernel = Kernel(SystemConfig(), transparent_huge_pages=True)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 6 * MB, policy="eager")
        seg = vma.segments[0]
        assert seg.pbase % HUGE_PAGE_SIZE == 0
        assert seg.vbase % HUGE_PAGE_SIZE == 0


class TestThpBaselineMmu:
    def _system(self):
        config = SystemConfig()
        kernel = Kernel(config, transparent_huge_pages=True)
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 16 * MB, policy="eager")
        mmu = ThpBaselineMmu(kernel, config)
        return kernel, p, vma, mmu

    def test_translation_correct(self):
        kernel, p, vma, mmu = self._system()
        for off in (0, 5 * MB + 7, 16 * MB - 8):
            out = mmu.access(0, p.asid, vma.vbase + off, False)
            assert out.translated_pa == kernel.translate(p.asid,
                                                         vma.vbase + off).pa

    def test_huge_tlb_covers_whole_2mb(self):
        _k, p, vma, mmu = self._system()
        mmu.access(0, p.asid, vma.vbase, False)          # walk + huge fill
        out = mmu.access(0, p.asid, vma.vbase + MB, False)  # same 2 MB page
        assert out.front_cycles == 0
        assert mmu.walkers[0].stats["walks"] == 1

    def test_reach_beats_small_baseline(self):
        """One huge entry covers 512 small pages: far fewer walks."""
        from repro.core import ConventionalMmu
        from repro.sim import Simulator, lay_out

        config = SystemConfig()
        walks = {}
        for thp in (False, True):
            kernel = Kernel(config, transparent_huge_pages=thp)
            workload = lay_out("gups", kernel)
            mmu = (ThpBaselineMmu(kernel, config) if thp
                   else ConventionalMmu(kernel, config))
            Simulator(mmu).run(workload, accesses=4000, warmup=1000)
            walks[thp] = sum(w.stats["walks"] for w in mmu.walkers)
        assert walks[True] < walks[False] / 4

    def test_small_pages_still_work(self):
        kernel, p, _vma, mmu = self._system()
        stack = kernel.mmap(p, 8 * 4096, policy="demand")
        out = mmu.access(0, p.asid, stack.vbase, False)
        assert out.translated_pa == kernel.translate(p.asid, stack.vbase).pa
        warm = mmu.access(0, p.asid, stack.vbase, False)
        assert warm.front_cycles == 0

    def test_shootdown_covers_both_sizes(self):
        kernel, p, vma, mmu = self._system()
        mmu.access(0, p.asid, vma.vbase, False)
        kernel.shootdown_page(p.asid, vma.vbase)
        mmu.access(0, p.asid, vma.vbase, False)
        assert mmu.walkers[0].stats["walks"] == 2  # re-walked after shootdown
