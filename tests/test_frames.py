"""Tests for the physical frame allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import make_rng
from repro.osmodel import FrameAllocator, OutOfMemoryError

MB = 1024 * 1024


class TestBasicAllocation:
    def test_alloc_contiguous(self):
        f = FrameAllocator(1 * MB)  # 256 frames
        start = f.alloc_contiguous(10)
        assert start == 0
        assert f.allocated_frames() == 10
        assert f.free_frames() == 246

    def test_alloc_frame(self):
        f = FrameAllocator(1 * MB)
        a = f.alloc_frame()
        b = f.alloc_frame()
        assert b == a + 1

    def test_out_of_memory(self):
        f = FrameAllocator(64 * 1024)  # 16 frames
        f.alloc_contiguous(10)
        with pytest.raises(OutOfMemoryError):
            f.alloc_contiguous(10)

    def test_invalid_sizes(self):
        f = FrameAllocator(1 * MB)
        with pytest.raises(ValueError):
            f.alloc_contiguous(0)
        with pytest.raises(ValueError):
            FrameAllocator(1000)  # not a page multiple

    def test_first_fit_reuses_hole(self):
        f = FrameAllocator(1 * MB)
        a = f.alloc_contiguous(16)
        f.alloc_contiguous(16)
        f.free(a, 16)
        c = f.alloc_contiguous(8)
        assert c == a  # hole reused


class TestFreeAndCoalesce:
    def test_free_coalesces_with_both_neighbours(self):
        f = FrameAllocator(1 * MB)
        a = f.alloc_contiguous(10)
        b = f.alloc_contiguous(10)
        c = f.alloc_contiguous(10)
        f.free(a, 10)
        f.free(c, 10)  # coalesces with the tail immediately
        assert f.free_extent_count() == 2  # [a], [c..end]
        f.free(b, 10)
        assert f.free_extent_count() == 1  # everything merged back

    def test_double_free_detected(self):
        f = FrameAllocator(1 * MB)
        a = f.alloc_contiguous(4)
        f.free(a, 4)
        with pytest.raises(ValueError):
            f.free(a, 4)

    def test_free_invalid_count(self):
        f = FrameAllocator(1 * MB)
        with pytest.raises(ValueError):
            f.free(0, 0)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1,
                    max_size=40))
    def test_conservation_property(self, sizes):
        """alloc+free in any order conserves total frames."""
        f = FrameAllocator(4 * MB)
        total = f.total_frames
        allocations = []
        for s in sizes:
            try:
                allocations.append((f.alloc_contiguous(s), s))
            except OutOfMemoryError:
                break
        assert f.free_frames() + f.allocated_frames() == total
        for start, size in allocations:
            f.free(start, size)
        assert f.free_frames() == total
        assert f.free_extent_count() == 1


class TestBestEffort:
    def test_single_extent_when_possible(self):
        f = FrameAllocator(1 * MB)
        pieces = f.alloc_best_effort(100)
        assert len(pieces) == 1
        assert pieces[0][1] == 100

    def test_splits_under_fragmentation(self):
        f = FrameAllocator(1 * MB)
        rng = make_rng(7)
        f.fragment(max_extent_frames=32, rng=rng)
        pieces = f.alloc_best_effort(100)
        assert sum(count for _start, count in pieces) == 100
        assert len(pieces) > 1

    def test_rollback_on_failure(self):
        f = FrameAllocator(256 * 1024)  # 64 frames
        before = f.free_frames()
        with pytest.raises(OutOfMemoryError):
            f.alloc_best_effort(1000)
        assert f.free_frames() == before


class TestFragmentation:
    def test_largest_extent_bounded(self):
        f = FrameAllocator(16 * MB)
        f.fragment(max_extent_frames=64, rng=make_rng(1))
        assert 0 < f.largest_free_extent() <= 64

    def test_fragmentation_pins_frames(self):
        f = FrameAllocator(16 * MB)
        before = f.free_frames()
        f.fragment(max_extent_frames=64, rng=make_rng(1))
        assert f.free_frames() < before  # hole frames pinned

    def test_frame_to_pa(self):
        f = FrameAllocator(1 * MB)
        assert f.frame_to_pa(3) == 3 * 4096
