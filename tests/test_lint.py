"""Static-analysis gate: ``pytest -m lint`` (the make-lint equivalent).

Runs ``ruff check`` against the configuration in ``pyproject.toml`` when
ruff is installed; environments without ruff (e.g. the minimal test
container) skip rather than fail, so the gate never blocks on tooling
availability.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess
import sys

import pytest

pytestmark = pytest.mark.lint

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _ruff_command() -> list[str] | None:
    if shutil.which("ruff"):
        return ["ruff"]
    probe = subprocess.run([sys.executable, "-m", "ruff", "--version"],
                           capture_output=True)
    if probe.returncode == 0:
        return [sys.executable, "-m", "ruff"]
    return None


def test_ruff_clean():
    command = _ruff_command()
    if command is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(command + ["check", "src", "tests", "benchmarks"],
                          cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"
