"""Tests for the DRAM model, cycle accounting, and energy accounting."""

import pytest

from repro.common.params import CoreConfig, DramConfig
from repro.core.mmu_base import AccessOutcome
from repro.energy import EnergyModel, EnergyParams
from repro.timing import DramModel, TimingModel


class TestDramModel:
    def test_row_hit_cheaper_than_miss(self):
        dram = DramModel(DramConfig())
        first = dram.access(0x1000, False)
        second = dram.access(0x1040, False)  # same row
        assert second < first

    def test_row_conflict(self):
        config = DramConfig(banks=2, channels=1)
        dram = DramModel(config)
        dram.access(0x0, False)
        # An address whose row maps to the same bank but differs in row id.
        conflict_pa = config.row_bytes * 2 * 2  # row 4 -> bank 0
        cost = dram.access(conflict_pa, False)
        assert cost == config.row_miss_cycles + config.queue_penalty_cycles

    def test_streaming_row_hit_rate_high(self):
        dram = DramModel(DramConfig())
        for pa in range(0, 64 * 1024, 64):
            dram.access(pa, False)
        assert dram.row_hit_rate() > 0.9

    def test_stats(self):
        dram = DramModel(DramConfig())
        dram.access(0, True)
        assert dram.stats["accesses"] == 1
        assert dram.stats["writes"] == 1

    def test_reset_rows(self):
        dram = DramModel(DramConfig())
        dram.access(0, False)
        dram.reset_rows()
        cost = dram.access(0, False)
        assert cost == DramConfig().row_miss_cycles + DramConfig().queue_penalty_cycles


def outcome(front=0, cache=4, delayed=0, dram=0, level="l1"):
    return AccessOutcome(front, cache, delayed, dram, level)


class TestTimingModel:
    def test_l1_hits_fully_pipelined(self):
        t = TimingModel(CoreConfig(base_cpi=0.5), mlp=1.0)
        for _ in range(100):
            t.record(outcome(), instructions_between=2)
        assert t.total_cycles() == pytest.approx(200 * 0.5)
        assert t.ipc() == pytest.approx(2.0)

    def test_front_stalls_not_discounted(self):
        t = TimingModel(CoreConfig(base_cpi=0.5), mlp=4.0)
        t.record(outcome(front=100))
        assert t.total_cycles() == pytest.approx(0.5 + 100)

    def test_miss_stalls_discounted_by_mlp(self):
        t1 = TimingModel(CoreConfig(base_cpi=0.5), mlp=1.0)
        t4 = TimingModel(CoreConfig(base_cpi=0.5), mlp=4.0)
        for t in (t1, t4):
            t.record(outcome(cache=37, dram=100, level="memory"))
        stall1 = t1.total_cycles() - 0.5
        stall4 = t4.total_cycles() - 0.5
        assert stall1 == pytest.approx(4 * stall4)

    def test_invalid_mlp(self):
        with pytest.raises(ValueError):
            TimingModel(mlp=0.5)

    def test_breakdown_sums_to_total(self):
        t = TimingModel(CoreConfig(base_cpi=0.4), mlp=2.0)
        t.record(outcome(front=10, cache=37, delayed=20, dram=150,
                         level="memory"), instructions_between=3)
        t.record_compute(7)
        parts = t.breakdown()
        assert sum(parts.values()) == pytest.approx(t.total_cycles())

    def test_accounting_merge(self):
        a = TimingModel()
        b = TimingModel()
        a.record(outcome(dram=100, level="memory"))
        b.record(outcome(dram=50, level="memory"))
        a.acct.merge(b.acct)
        assert a.acct.dram_stall_cycles == 150
        assert a.acct.instructions == 2


class TestEnergyModel:
    def test_baseline_counts_tlb_probes(self):
        model = EnergyModel(EnergyParams(l1_tlb_pj=1.0, l2_tlb_pj=5.0,
                                         pte_read_pj=10.0))
        stats = {
            "tlb_core0_l1": {"lookups": 100},
            "tlb_core0_l2": {"lookups": 20},
            "page_walker": {"pte_reads": 4},
        }
        breakdown = model.baseline_translation_energy(stats)
        assert breakdown["l1_tlb"] == 100.0
        assert breakdown["l2_tlb"] == 100.0
        assert breakdown["page_walks"] == 40.0

    def test_hybrid_counts_filter_and_delayed(self):
        model = EnergyModel()
        stats = {
            "hybrid": {"accesses": 1000},
            "synonym_tlb": {"lookups": 10},
            "delayed_tlb": {"lookups": 50},
        }
        breakdown = model.hybrid_translation_energy(stats)
        p = EnergyParams()
        assert breakdown["synonym_filter"] == pytest.approx(1000 * p.synonym_filter_pj)
        assert breakdown["synonym_tlb"] == pytest.approx(10 * p.synonym_tlb_pj)
        assert breakdown["delayed_tlb"] == pytest.approx(50 * p.delayed_tlb_pj)

    def test_reduction(self):
        model = EnergyModel()
        assert model.reduction({"a": 100.0}, {"b": 40.0}) == pytest.approx(0.6)
        assert model.reduction({}, {"b": 1.0}) == 0.0

    def test_tag_extension_overhead_small(self):
        model = EnergyModel()
        stats = {"l1_core0": {"lookups": 1000}, "llc": {"lookups": 100}}
        extra = model.tag_extension_energy(stats)
        full = 1000 * EnergyParams().l1_cache_pj + 100 * EnergyParams().llc_cache_pj
        assert extra / full == pytest.approx(EnergyParams().tag_extension_overhead)

    def test_hybrid_cheaper_than_baseline_per_access(self):
        """The core energy claim at equal access counts, few LLC misses."""
        model = EnergyModel()
        n = 10_000
        base = model.baseline_translation_energy({
            "tlb_core0_l1": {"lookups": n},
            "tlb_core0_l2": {"lookups": n // 10},
            "page_walker": {"pte_reads": n // 50},
        })
        hybrid = model.hybrid_translation_energy({
            "hybrid": {"accesses": n},
            "synonym_tlb": {"lookups": n // 100},
            "delayed_tlb": {"lookups": n // 20},
        })
        assert model.total(hybrid) < model.total(base)
        reduction = model.reduction(base, hybrid)
        assert reduction > 0.4
