"""The report subsystem: scorecard, SVG, bundle, HTML, CLI wiring.

The golden test builds the report from the *committed* sample documents
in ``examples/data/`` — the same inputs every checkout has — and pins
the acceptance properties: one self-contained file, no external
references, the full scorecard, and byte-identical output however many
workers parsed the inputs.
"""

import glob
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.report import (CLAIMS, HEADLINE_IDS, FIDELITY_SCHEMA,
                          REPORT_SCHEMA, PaperClaim, ReportBundle, ScoreRow,
                          build_bench_report_page, build_report,
                          evaluate_scorecard, fidelity_doc, load_bundle)
from repro.report import svg

ROOT = Path(__file__).parent.parent
SAMPLES = sorted(glob.glob(str(ROOT / "examples" / "data" / "*.json")))

FAST = ["--accesses", "600", "--warmup", "200"]


def sample_bundle():
    bundle = ReportBundle()
    for path in SAMPLES:
        with open(path, encoding="utf-8") as handle:
            bundle.add_doc(json.load(handle), source=Path(path).name)
    return bundle


class TestGoldenReport:
    """The acceptance pins, from committed data only."""

    def test_samples_are_committed(self):
        kinds = {json.load(open(p))["schema"] for p in SAMPLES}
        assert "repro.compare/v1" in kinds
        assert "repro.sweep/v1" in kinds
        assert FIDELITY_SCHEMA in kinds

    def test_single_self_contained_file(self, tmp_path):
        out = tmp_path / "report.html"
        assert main(["report", "build", *SAMPLES, "--out", str(out)]) == 0
        page = out.read_text(encoding="utf-8")
        assert page.startswith("<!DOCTYPE html>")
        # Self-contained: no external requests of any kind.
        assert "http://" not in page and "https://" not in page
        assert "<script" not in page
        assert "<svg" in page          # charts are inline SVG

    def test_scorecard_complete(self, tmp_path):
        out = tmp_path / "report.html"
        main(["report", "build", *SAMPLES, "--out", str(out)])
        page = out.read_text(encoding="utf-8")
        assert "Paper-fidelity scorecard" in page
        # All three abstract claims, as headline tiles.
        assert len(HEADLINE_IDS) == 3
        for claim in CLAIMS:
            if claim.headline:
                assert claim.title in page
        # At least five figure/table sections.
        sections = [a for a in ("Figure 4", "Figure 7", "Figure 9",
                                "Figure 10", "Figure 11", "Table I",
                                "Table II", "Table III") if a in page]
        assert len(sections) >= 5

    def test_byte_identical_serial_vs_workers(self, tmp_path):
        serial, parallel = tmp_path / "serial.html", tmp_path / "par.html"
        assert main(["report", "build", *SAMPLES, "--out", str(serial)]) == 0
        assert main(["report", "build", *SAMPLES, "--workers", "3",
                     "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_committed_samples_reproduce_headlines(self):
        rows = {r.claim.id: r for r in evaluate_scorecard(sample_bundle())}
        for claim_id in HEADLINE_IDS:
            assert rows[claim_id].measured is not None, claim_id
            assert rows[claim_id].badge == "pass", (
                claim_id, rows[claim_id].deviation_pct)


class TestScorecard:
    def test_registry_covers_every_artifact(self):
        artifacts = {c.artifact for c in CLAIMS}
        for artifact in ("Abstract", "Figure 4", "Figure 7", "Figure 9",
                         "Figure 10", "Figure 11", "Table I", "Table II",
                         "Table III"):
            assert artifact in artifacts

    def test_badges(self):
        claim = PaperClaim(id="x", artifact="A", title="t", paper_value=10.0,
                           unit="%", source="s", warn_pct=25.0, fail_pct=60.0)
        assert ScoreRow(claim=claim).badge == "no-data"
        assert ScoreRow(claim=claim, measured=11.0).badge == "pass"
        assert ScoreRow(claim=claim, measured=14.0).badge == "warn"
        assert ScoreRow(claim=claim, measured=17.0).badge == "fail"
        # Tolerances are symmetric: overshoot grades like undershoot.
        assert ScoreRow(claim=claim, measured=6.0).badge == "warn"

    def test_zero_paper_value_deviation(self):
        claim = PaperClaim(id="x", artifact="A", title="t", paper_value=0.0,
                           unit="%", source="s")
        assert ScoreRow(claim=claim, measured=0.0).deviation_pct == 0.0
        assert ScoreRow(claim=claim, measured=1.0).badge == "fail"

    def test_explicit_measurement_wins_over_derived(self):
        bundle = sample_bundle()
        derived = {r.claim.id: r.measured
                   for r in evaluate_scorecard(bundle)}
        bundle.add_doc(fidelity_doc({"abstract.native_speedup": 10.7}),
                       source="override")
        rows = {r.claim.id: r for r in evaluate_scorecard(bundle)}
        assert rows["abstract.native_speedup"].measured == 10.7
        assert rows["abstract.native_speedup"].source == "override"
        # The untouched claims keep their derived values.
        assert rows["fig9.native_speedup"].measured == pytest.approx(
            derived["fig9.native_speedup"])

    def test_empty_bundle_scores_all_no_data(self):
        rows = evaluate_scorecard(ReportBundle())
        assert len(rows) == len(CLAIMS)
        assert all(r.badge == "no-data" for r in rows)


class TestBundle:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="cannot report"):
            ReportBundle().add_doc({"schema": "bogus/v9"}, source="x")

    def test_load_bundle_counts_sources(self):
        bundle = load_bundle(SAMPLES)
        assert bundle.sources == [str(p) for p in SAMPLES]
        assert len(bundle.compares) == 3
        assert len(bundle.sweeps) == 1
        assert bundle.measurements  # fidelity_sample.json folded in

    def test_fidelity_doc_roundtrip(self):
        doc = fidelity_doc({"a.b": 1.5}, note="n")
        bundle = ReportBundle()
        bundle.add_doc(doc, source="s")
        assert bundle.measurements["a.b"] == (1.5, "s")


class TestSvgGuards:
    """Empty/degenerate inputs render placeholders, never broken markup."""

    def test_bar_chart_empty(self):
        assert "(no data)" in svg.bar_chart({})

    def test_bar_chart_no_positive_values(self):
        assert "(no positive values)" in svg.bar_chart({"a": 0.0, "b": -1})

    def test_stacked_bar_empty(self):
        assert "(empty breakdown)" in svg.stacked_bar({})
        assert "(empty breakdown)" in svg.stacked_bar({"a": 0})

    def test_histogram_empty(self):
        out = svg.histogram_chart({"name": "h", "count": 0, "buckets": []})
        assert "(empty histogram)" in out

    def test_sparkline_degenerate(self):
        assert "—" in svg.sparkline([])
        single = svg.sparkline([2.0])
        flat = svg.sparkline([3.0, 3.0, 3.0])
        assert "<svg" in single and "<svg" in flat

    def test_charts_are_deterministic_markup(self):
        chart = svg.bar_chart({"a": 1.0, "b": 2.5}, reference=1.0)
        assert chart == svg.bar_chart({"a": 1.0, "b": 2.5}, reference=1.0)
        assert "xmlns" not in chart  # would carry an http:// URL


class TestCliWiring:
    def test_report_out_on_compare(self, tmp_path):
        out = tmp_path / "compare.html"
        assert main(["compare", "stream", "--configs",
                     "baseline,hybrid_tlb", *FAST,
                     "--report-out", str(out)]) == 0
        page = out.read_text(encoding="utf-8")
        assert REPORT_SCHEMA in page
        assert "hybrid_tlb" in page

    def test_report_bench_page(self, tmp_path):
        doc = {
            "schema": "repro.bench.report/v1",
            "ok": True, "threshold_pct": 10.0,
            "deltas": [], "missing": [], "added": [],
        }
        src = tmp_path / "gate.json"
        src.write_text(json.dumps(doc))
        out = tmp_path / "gate.html"
        assert main(["report", "bench", str(src), "--out", str(out)]) == 0
        assert "PASS" in out.read_text(encoding="utf-8")

    def test_report_bench_rejects_wrong_schema(self, tmp_path):
        src = tmp_path / "notgate.json"
        src.write_text(json.dumps({"schema": "repro.result/v1"}))
        with pytest.raises(SystemExit, match="bench.report"):
            main(["report", "bench", str(src)])

    def test_gate_report_to_html(self):
        from repro.bench.gate import GateReport
        page = GateReport(threshold_pct=10.0,
                          seconds_threshold_pct=None).to_html()
        assert "PASS" in page and page.startswith("<!DOCTYPE html>")


class TestBuildReportApi:
    def test_empty_bundle_still_renders(self):
        page = build_report(ReportBundle())
        assert "Paper-fidelity scorecard" in page
        assert "no-data" in page

    def test_bench_report_page_builder(self):
        page = build_bench_report_page(
            {"schema": "repro.bench.report/v1", "ok": False,
             "regressions": 2, "threshold_pct": 5.0, "deltas": [],
             "missing": [], "added": []},
            source="mem")
        assert "FAIL" in page and "2 regression(s)" in page
