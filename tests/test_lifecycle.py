"""Tests for process teardown, ASID recycling, and resource conservation."""

import pytest

from repro.common.address import PAGE_SIZE
from repro.common.params import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel

MB = 1024 * 1024


class TestDestroyProcess:
    def test_frames_fully_reclaimed(self):
        kernel = Kernel(SystemConfig())
        before = kernel.frames.free_frames()
        p = kernel.create_process("p")
        for policy in ("eager", "demand"):
            vma = kernel.mmap(p, 1 * MB, policy=policy)
            for offset in range(0, vma.length, 4 * PAGE_SIZE):
                kernel.translate(p.asid, vma.vbase + offset)
        kernel.destroy_process(p)
        assert kernel.frames.free_frames() == before

    def test_segments_removed(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        kernel.mmap(p, 2 * MB, policy="eager")
        assert kernel.segment_table.live_count() >= 1
        kernel.destroy_process(p)
        assert kernel.segment_table.live_count() == 0

    def test_process_unregistered(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        kernel.destroy_process(p)
        with pytest.raises(KeyError):
            kernel.process(p.asid)

    def test_caches_hold_no_stale_data_after_recycle(self):
        """An ASID reused for a new process must not see the old
        process's cached lines."""
        config = SystemConfig()
        kernel = Kernel(config)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * PAGE_SIZE, policy="demand")
        old_pa = mmu.access(0, p.asid, vma.vbase, True).translated_pa
        old_asid = p.asid
        kernel.destroy_process(p)

        q = kernel.create_process("q")
        assert q.asid == old_asid  # recycled
        vma_q = kernel.mmap(q, 8 * PAGE_SIZE, policy="demand")
        out = mmu.access(0, q.asid, vma_q.vbase, False)
        assert out.translated_pa == kernel.translate(q.asid, vma_q.vbase).pa
        # The old mapping's lines were flushed during teardown, so even
        # at identical VAs the new process misses and refetches.
        from repro.common.address import virtual_block_key
        stale_key = virtual_block_key(old_asid, vma.vbase)
        line = mmu.caches.probe_line(0, stale_key)
        if vma.vbase != vma_q.vbase:
            assert line is None


class TestAsidAllocation:
    def test_fifo_recycling(self):
        kernel = Kernel(SystemConfig())
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        asid_a, asid_b = a.asid, b.asid
        kernel.destroy_process(a)
        kernel.destroy_process(b)
        assert kernel.create_process("c").asid == asid_a
        assert kernel.create_process("d").asid == asid_b
        assert kernel.stats["asids_recycled"] == 2

    def test_exhaustion_detected(self):
        kernel = Kernel(SystemConfig())
        kernel._next_asid = 0xFFFF
        kernel.create_process("last")  # uses 0xFFFF
        with pytest.raises(RuntimeError, match="ASID space exhausted"):
            kernel.create_process("one-too-many")

    def test_shared_backing_survives_one_participant_exit(self):
        kernel = Kernel(SystemConfig())
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vmas = kernel.mmap_shared([a, b], 4 * PAGE_SIZE)
        va_b = vmas[b.asid].vbase
        expected = kernel.translate(b.asid, va_b).pa
        kernel.destroy_process(a)
        # b still reads the shared region at the same physical address.
        assert kernel.translate(b.asid, va_b).pa == expected
