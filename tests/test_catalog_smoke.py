"""Smoke test: every catalog workload lays out and simulates correctly."""

import pytest

from repro.common.params import SystemConfig
from repro.osmodel import Kernel
from repro.sim import Simulator, build_mmu, lay_out
from repro.workloads import names, spec


@pytest.mark.parametrize("name", names())
def test_workload_simulates_end_to_end(name):
    """Each entry must lay out, generate a valid trace, and run."""
    s = spec(name)
    cores = s.sharing.processes if s.sharing else 1
    import dataclasses
    config = dataclasses.replace(SystemConfig(), cores=max(1, cores))
    kernel = Kernel(config)
    workload = lay_out(name, kernel)
    mmu = build_mmu("hybrid_tlb", kernel, config)
    result = Simulator(mmu).run(workload, accesses=300, warmup=50)
    assert result.accesses == 300
    assert result.ipc > 0
    # Every access translated to a real physical address within memory.
    assert result.cycles > 0


@pytest.mark.parametrize("name", names())
def test_traces_stay_inside_mapped_memory(name):
    kernel = Kernel(SystemConfig())
    workload = lay_out(name, kernel)
    for record in workload.trace(200):
        translation = kernel.translate(record.asid, record.va)
        assert 0 <= translation.pa < kernel.config.physical_memory_bytes
