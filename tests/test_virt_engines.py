"""Deeper virtualization tests: delayed 2-D engines, multi-VM isolation."""

import pytest

from repro.common.address import PAGE_SIZE, page_base
from repro.sim import Simulator, lay_out
from repro.virt import (
    Hypervisor,
    VirtConventionalMmu,
    VirtHybridMmu,
)

MB = 1024 * 1024


@pytest.fixture()
def hv():
    return Hypervisor(machine_bytes=8 * 1024 ** 3)


def guest(vm, size=4 * MB):
    g = vm.guest_kernel
    p = g.create_process("app")
    vma = g.mmap(p, size, policy="eager")
    return p, vma


class TestDelayed2dTlbEngine:
    def test_miss_then_hit(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        cold = mmu.access(0, p.asid, vma.vbase, False)
        assert cold.delayed_cycles > mmu.delayed.tlb.latency  # nested walk
        # Same page, different block: delayed TLB hit, no walk.
        warm = mmu.access(0, p.asid, vma.vbase + 512, False)
        assert warm.delayed_cycles == mmu.delayed.tlb.latency

    def test_unknown_engine_rejected(self, hv):
        vm = hv.create_vm("vm")
        with pytest.raises(ValueError):
            VirtHybridMmu(hv, vm, delayed="bogus")


class TestDelayedSegment2dEngine:
    def test_sc_caches_gva_to_ma_directly(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        mmu = VirtHybridMmu(hv, vm, delayed="segments")
        cold = mmu.access(0, p.asid, vma.vbase, False)
        warm = mmu.access(0, p.asid, vma.vbase + 4 * PAGE_SIZE, False)
        assert warm.delayed_cycles < cold.delayed_cycles
        assert warm.delayed_cycles == mmu.delayed.segment_cache.latency
        assert mmu.delayed.stats["sc_hits"] == 1

    def test_sc_clipped_at_host_segment_boundary(self, hv):
        """A gVA→MA entry must not translate across host segments."""
        import dataclasses
        from repro.common.params import SystemConfig
        from repro.virt.hypervisor import VirtualMachine

        small_chunk = 2 * MB  # host segments of 2 MB: many boundaries
        vm = VirtualMachine(9, "tiny", hv.guest_config, hv.machine_frames,
                            host_segment_chunk=small_chunk)
        g = vm.guest_kernel
        p = g.create_process("app")
        vma = g.mmap(p, 8 * MB, policy="eager")
        mmu = VirtHybridMmu(hv, vm, delayed="segments")
        # Access across several host-segment boundaries; every result
        # must equal the functional 2-D translation.
        for off in range(0, 8 * MB, 1 * MB + 4096):
            va = vma.vbase + off
            out = mmu.access(0, p.asid, va, False)
            assert out.translated_pa == vm.translate_2d(p.asid, va)[0]

    def test_fallback_for_demand_pages(self, hv):
        vm = hv.create_vm("vm")
        g = vm.guest_kernel
        p = g.create_process("app")
        vma = g.mmap(p, 8 * PAGE_SIZE, policy="demand")
        mmu = VirtHybridMmu(hv, vm, delayed="segments")
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.translated_pa == vm.translate_2d(p.asid, vma.vbase)[0]
        assert mmu.delayed.stats["nested_fallbacks"] == 1


class TestMultiVmIsolation:
    def test_same_gva_different_vms_distinct_blocks(self, hv):
        vm1, vm2 = hv.create_vm("vm1"), hv.create_vm("vm2")
        p1, vma1 = guest(vm1, size=1 * MB)
        p2, vma2 = guest(vm2, size=1 * MB)
        mmu1 = VirtHybridMmu(hv, vm1, delayed="tlb")
        mmu2 = VirtHybridMmu(hv, vm2, delayed="tlb")
        # Same guest layout in both VMs; MAs must differ (VM isolation).
        out1 = mmu1.access(0, p1.asid, vma1.vbase, True)
        out2 = mmu2.access(0, p2.asid, vma2.vbase, True)
        assert vma1.vbase == vma2.vbase
        assert out1.translated_pa != out2.translated_pa

    def test_vmid_extension_prevents_cross_vm_homonyms(self, hv):
        vm1, vm2 = hv.create_vm("vm1"), hv.create_vm("vm2")
        p1, _ = guest(vm1)
        p2, _ = guest(vm2)
        assert p1.asid == p2.asid  # guest-local ASIDs collide...
        assert (hv.global_asid(vm1, p1.asid)
                != hv.global_asid(vm2, p2.asid))  # ...global ones don't

    def test_cross_vm_content_sharing(self, hv):
        vm1, vm2 = hv.create_vm("vm1"), hv.create_vm("vm2")
        p1, vma1 = guest(vm1)
        p2, vma2 = guest(vm2)
        gpa1 = vm1.guest_kernel.translate(p1.asid, vma1.vbase).pa
        gpa2 = vm2.guest_kernel.translate(p2.asid, vma2.vbase).pa
        ma = hv.share_content_pages([(vm1, gpa1), (vm2, gpa2)])
        assert page_base(vm1.host_translate(gpa1)) == page_base(ma)
        assert page_base(vm2.host_translate(gpa2)) == page_base(ma)

    def test_simulation_through_two_vms(self, hv):
        """Both VMs run a workload through their own MMUs to completion."""
        ipcs = {}
        for name in ("vm1", "vm2"):
            vm = hv.create_vm(name)
            w = lay_out("astar", vm.guest_kernel)
            mmu = VirtHybridMmu(hv, vm, delayed="segments")
            result = Simulator(mmu).run(w, accesses=2000, warmup=500)
            ipcs[name] = result.ipc
        assert all(v > 0 for v in ipcs.values())


class TestLateSynonymDetection:
    """Section V-A special case: a guest remap onto a hypervisor-shared
    frame is discovered during the delayed 2-D walk."""

    def test_late_detection_marks_filter_and_renames(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        gva_a = vma.vbase
        gva_b = vma.vbase + 8 * PAGE_SIZE
        gpa_a = vm.guest_kernel.translate(p.asid, gva_a).pa
        gpa_b = vm.guest_kernel.translate(p.asid, gva_b).pa
        # The hypervisor folds the two frames; its inverse map knows both
        # gVAs for gpa_a's page but the filter update covers only gva_a
        # (gva_b is the "new mapping the guest made without telling it").
        vm.record_gva(p.asid, gva_a, gpa_a)
        hv.share_content_pages([(vm, gpa_a)], readonly_virtual=False)
        # Now the guest remaps gva_b onto the shared guest-physical frame
        # without the hypervisor updating its filter (the stale case).
        p.page_table.unmap(gva_b)
        p.page_table.map(gva_b, gpa_a >> 12)
        vm.record_gva(p.asid, gva_b, gpa_a)  # inverse map learns of it...
        vm.host_filter.rebuild([gva_a])      # ...but the filter is stale
        assert not vm.host_filter.is_synonym_candidate(gva_b)

        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        out = mmu.access(0, p.asid, gva_b, False)
        # The delayed walk caught it: trap counted, filter updated, and
        # the access completed under the physical (machine) name.
        assert mmu.hybrid_stats["late_synonym_detections"] == 1
        assert vm.host_filter.is_synonym_candidate(gva_b)
        from repro.common.address import virtual_block_key
        stale = virtual_block_key(mmu.asid_of(p.asid), gva_b)
        assert mmu.caches.probe_line(0, stale) is None
        assert out.translated_pa is not None

    def test_no_false_triggers_on_private_frames(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        for offset in range(0, 16 * PAGE_SIZE, PAGE_SIZE):
            mmu.access(0, p.asid, vma.vbase + offset, False)
        assert mmu.hybrid_stats["late_synonym_detections"] == 0


class TestVirtBaselineDetails:
    def test_nested_tlb_absorbs_host_walks(self, hv):
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        mmu = VirtConventionalMmu(hv, vm)
        for i in range(64):
            mmu.access(0, p.asid, vma.vbase + i * PAGE_SIZE, False)
        walker = mmu.walker.stats
        # Average reads per walk must be far below the 24 worst case.
        assert walker["memory_reads"] / walker["walks"] < 12

    def test_guest_shootdowns_reach_virt_tlbs(self, hv):
        """Guest OS remaps must invalidate the virtualized TLBs."""
        vm = hv.create_vm("vm")
        p, vma = guest(vm)
        mmu = VirtConventionalMmu(hv, vm)
        mmu.access(0, p.asid, vma.vbase, False)
        walks_before = mmu.walker.stats["walks"]
        vm.guest_kernel.shootdown_page(p.asid, vma.vbase)
        mmu.access(0, p.asid, vma.vbase, False)
        assert mmu.walker.stats["walks"] == walks_before + 1

    def test_guest_munmap_flushes_hybrid_cached_lines(self, hv):
        vm = hv.create_vm("vm")
        g = vm.guest_kernel
        p = g.create_process("app")
        vma = g.mmap(p, 8 * PAGE_SIZE, policy="demand")
        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        mmu.access(0, p.asid, vma.vbase, True)
        from repro.common.address import virtual_block_key
        key = virtual_block_key(mmu.asid_of(p.asid), vma.vbase)
        assert mmu.caches.probe_line(0, key) is not None
        g.munmap(p, vma)
        assert mmu.caches.probe_line(0, key) is None

    def test_shootdown_free_guest_switches(self, hv):
        """Two guest processes interleave without evicting each other's
        cached state (VMID⊕ASID tagging)."""
        vm = hv.create_vm("vm")
        g = vm.guest_kernel
        a = g.create_process("a")
        b = g.create_process("b")
        vma_a = g.mmap(a, 1 * MB, policy="eager")
        vma_b = g.mmap(b, 1 * MB, policy="eager")
        mmu = VirtHybridMmu(hv, vm, delayed="tlb")
        mmu.access(0, a.asid, vma_a.vbase, False)
        mmu.access(0, b.asid, vma_b.vbase, False)
        out = mmu.access(0, a.asid, vma_a.vbase, False)
        # Still cache-resident (page-walk traffic may demote it from L1,
        # but nothing flushed it to memory).
        assert out.hit_level in ("l1", "l2", "llc")
