"""Tests for the delayed segment-translation hardware."""

import pytest

from repro.common.params import SegmentTranslationConfig, SystemConfig
from repro.osmodel import Kernel, OsSegmentTable, SegmentFault
from repro.segtrans import (
    DirectSegment,
    HwSegmentTable,
    IndexCache,
    ManySegmentTranslator,
    RangeTlb,
    SegmentCache,
)

MB = 1024 * 1024
PAGE = 4096


def make_table(n=4, asid=1, length=1 * MB):
    table = OsSegmentTable()
    va, pa = 0x1000_0000, 0x200_0000
    for _ in range(n):
        table.insert(asid, va, length, pa)
        va += length + PAGE
        pa += length + PAGE
    return table


class TestHwSegmentTable:
    def test_cold_fill_charges_interrupt(self):
        table = make_table()
        hw = HwSegmentTable(table)
        seg_id = table.segments_sorted()[0].seg_id
        seg, cycles = hw.read(seg_id)
        assert seg is not None
        assert cycles == hw.latency + HwSegmentTable.FILL_INTERRUPT_CYCLES
        _seg, cycles2 = hw.read(seg_id)
        assert cycles2 == hw.latency

    def test_stale_id(self):
        table = make_table()
        hw = HwSegmentTable(table)
        seg_id = table.segments_sorted()[0].seg_id
        table.remove(seg_id)
        seg, _cycles = hw.read(seg_id)
        assert seg is None

    def test_invalidate_forces_refill(self):
        table = make_table()
        hw = HwSegmentTable(table)
        seg_id = table.segments_sorted()[0].seg_id
        hw.read(seg_id)
        hw.invalidate(seg_id)
        _seg, cycles = hw.read(seg_id)
        assert cycles > hw.latency


class TestIndexCache:
    def test_miss_then_hit(self):
        ic = IndexCache(memory_charge=lambda pa: 100)
        first = ic.read_node(0x4000)
        second = ic.read_node(0x4000)
        assert first == ic.latency + 100
        assert second == ic.latency
        assert ic.hit_rate() == 0.5

    def test_size_override(self):
        ic = IndexCache(size_bytes=1024)
        assert ic.size_bytes == 1024

    def test_tiny_sizes_degrade_ways(self):
        ic = IndexCache(size_bytes=128)  # cannot sustain 8 ways
        ic.read_node(0)
        ic.read_node(64)
        ic.read_node(128)
        assert ic.occupancy() <= 2

    def test_flush(self):
        ic = IndexCache(memory_charge=lambda pa: 100)
        ic.read_node(0x4000)
        ic.flush()
        assert ic.read_node(0x4000) == ic.latency + 100

    def test_capacity_eviction(self):
        ic = IndexCache(size_bytes=512, memory_charge=lambda pa: 0)
        for i in range(64):
            ic.read_node(i * 64)
        assert ic.occupancy() <= 8


class TestSegmentCache:
    def _sc(self):
        return SegmentCache(SegmentTranslationConfig(segment_cache_entries=4))

    def test_hit_translates(self):
        sc = self._sc()
        sc.fill(asid=1, va=0x20_0000, seg_vbase=0, seg_vlimit=0x4000_0000,
                offset=0x1000_0000, seg_id=9)
        assert sc.lookup(1, 0x20_1234) == 0x20_1234 + 0x1000_0000

    def test_region_boundary_misses(self):
        sc = self._sc()
        sc.fill(1, 0x20_0000, 0, 0x4000_0000, 0x1000_0000, 9)
        assert sc.lookup(1, 0x20_0000 + (2 << 20)) is None  # next 2MB region

    def test_segment_boundary_clipping(self):
        """A segment ending mid-region must not translate past its limit."""
        sc = self._sc()
        region = 0x40_0000  # 2 MB aligned
        seg_end = region + 0x8_0000  # segment covers only 512 KB of region
        sc.fill(1, region, 0, seg_end, 0x1000, 3)
        assert sc.lookup(1, region + 0x7_FFFF) == region + 0x7_FFFF + 0x1000
        assert sc.lookup(1, seg_end + 0x10) is None

    def test_lru_capacity(self):
        sc = self._sc()
        for i in range(5):
            sc.fill(1, i << 21, 0, 1 << 40, 0, i)
        assert sc.lookup(1, 0) is None  # oldest evicted
        assert sc.lookup(1, 4 << 21) is not None

    def test_invalidate_segment(self):
        sc = self._sc()
        sc.fill(1, 0, 0, 1 << 30, 0, seg_id=5)
        sc.fill(1, 1 << 21, 0, 1 << 30, 0, seg_id=6)
        assert sc.invalidate_segment(5) == 1
        assert sc.lookup(1, 0) is None
        assert sc.lookup(1, 1 << 21) is not None

    def test_asid_isolation(self):
        sc = self._sc()
        sc.fill(1, 0, 0, 1 << 30, 0x1000, 5)
        assert sc.lookup(2, 0) is None


class TestManySegmentTranslator:
    def _kernel_with_segments(self):
        kernel = Kernel(SystemConfig())
        p = kernel.create_process("p")
        vma = kernel.mmap(p, 8 * MB, policy="eager")
        return kernel, p, vma

    def test_translation_matches_kernel(self):
        kernel, p, vma = self._kernel_with_segments()
        ms = ManySegmentTranslator(kernel)
        for offset in (0, 123, 5 * MB, 8 * MB - 1):
            va = vma.vbase + offset
            assert ms.translate(p.asid, va).pa == kernel.translate(p.asid, va).pa

    def test_sc_hit_fast_path(self):
        kernel, p, vma = self._kernel_with_segments()
        ms = ManySegmentTranslator(kernel)
        first = ms.translate(p.asid, vma.vbase)
        second = ms.translate(p.asid, vma.vbase + 64)
        assert not first.sc_hit
        assert second.sc_hit
        assert second.cycles < first.cycles

    def test_no_sc_configuration(self):
        kernel, p, vma = self._kernel_with_segments()
        ms = ManySegmentTranslator(kernel, use_segment_cache=False)
        a = ms.translate(p.asid, vma.vbase)
        b = ms.translate(p.asid, vma.vbase + 64)
        assert not a.sc_hit and not b.sc_hit
        assert b.index_nodes_read >= 1

    def test_uncovered_address_faults(self):
        kernel, p, _vma = self._kernel_with_segments()
        ms = ManySegmentTranslator(kernel)
        with pytest.raises(SegmentFault):
            ms.translate(p.asid, 0x7ead_0000_0000)

    def test_table_mutation_flushes_structures(self):
        kernel, p, vma = self._kernel_with_segments()
        ms = ManySegmentTranslator(kernel)
        ms.translate(p.asid, vma.vbase)
        # New allocation changes the segment table generation.
        vma2 = kernel.mmap(p, 2 * MB, policy="eager")
        result = ms.translate(p.asid, vma2.vbase)
        assert result.pa == kernel.translate(p.asid, vma2.vbase).pa
        # Old address still translates correctly after the rebuild.
        assert (ms.translate(p.asid, vma.vbase).pa
                == kernel.translate(p.asid, vma.vbase).pa)


class TestRangeTlb:
    def test_hit_after_fill(self):
        table = make_table(n=4)
        rt = RangeTlb(table, entries=2)
        seg = table.segments_sorted()[0]
        miss = rt.lookup(1, seg.vbase)
        hit = rt.lookup(1, seg.vbase + 100)
        assert not miss.hit and hit.hit
        assert miss.pa == seg.vbase + seg.offset
        assert hit.cycles == rt.latency

    def test_thrashing_beyond_capacity(self):
        table = make_table(n=8)
        rt = RangeTlb(table, entries=2)
        segs = table.segments_sorted()
        for _round in range(3):
            for seg in segs:
                rt.lookup(1, seg.vbase)
        # 8 ranges through 2 entries round-robin: everything misses.
        assert rt.stats["hits"] == 0
        assert rt.miss_count() == 24

    def test_fault_outside_segments(self):
        table = make_table()
        rt = RangeTlb(table)
        with pytest.raises(SegmentFault):
            rt.lookup(1, 0x7000_0000_0000)

    def test_invalidate_and_flush(self):
        table = make_table()
        rt = RangeTlb(table)
        seg = table.segments_sorted()[0]
        rt.lookup(1, seg.vbase)
        rt.flush()
        assert not rt.lookup(1, seg.vbase).hit


class TestDirectSegment:
    def test_inside_translates(self):
        ds = DirectSegment()
        ds.configure(asid=1, base=0x1000_0000, limit=0x2000_0000,
                     offset=0x5000_0000)
        assert ds.translate(1, 0x1800_0000) == 0x1800_0000 + 0x5000_0000

    def test_outside_falls_back(self):
        ds = DirectSegment()
        ds.configure(1, 0x1000_0000, 0x2000_0000, 0)
        assert ds.translate(1, 0x3000_0000) is None
        assert ds.stats["fallbacks"] == 1

    def test_unconfigured_asid_falls_back(self):
        ds = DirectSegment()
        assert ds.translate(9, 0x1000) is None

    def test_invalid_limit(self):
        ds = DirectSegment()
        with pytest.raises(ValueError):
            ds.configure(1, 0x2000, 0x1000, 0)

    def test_configure_from_segment(self):
        table = make_table(n=1)
        ds = DirectSegment()
        seg = table.segments_sorted()[0]
        ds.configure_from_segment(seg)
        assert ds.translate(1, seg.vbase + 5) == seg.vbase + 5 + seg.offset
