"""Tests for TLB structures: base, hierarchy, delayed, page walker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.address import virtual_page_key
from repro.common.params import TlbConfig, WalkerConfig
from repro.tlb import (
    DelayedTlb,
    PageWalker,
    SetAssociativeTlb,
    TlbEntry,
    TlbHierarchy,
)


def entry(asid, vpn, pfn=0, is_synonym=True, perms=0x3):
    return TlbEntry(virtual_page_key(asid, vpn << 12), pfn, is_synonym, perms)


class TestSetAssociativeTlb:
    def _tlb(self, entries=8, ways=2, latency=1):
        return SetAssociativeTlb(TlbConfig(entries, ways, latency))

    def test_miss_then_hit(self):
        tlb = self._tlb()
        e = entry(1, 5, 55)
        assert tlb.lookup(e.page_key) is None
        tlb.fill(e)
        assert tlb.lookup(e.page_key) is e

    def test_lru_eviction_order(self):
        tlb = self._tlb(entries=2, ways=2)  # one set, two ways
        a, b, c = entry(1, 0, 1), entry(1, 1, 2), entry(1, 2, 3)
        tlb.fill(a)
        tlb.fill(b)
        tlb.lookup(a.page_key)      # refresh a; b is now LRU
        victim = tlb.fill(c)
        assert victim is b
        assert tlb.lookup(a.page_key) is a
        assert tlb.lookup(b.page_key) is None

    def test_set_isolation(self):
        tlb = self._tlb(entries=8, ways=2)  # 4 sets
        filled = [entry(1, vpn, vpn) for vpn in range(8)]
        for e in filled:
            tlb.fill(e)
        # 8 entries spread over 4 sets of 2 ways: all resident.
        assert tlb.occupancy() == 8

    def test_refill_same_key_replaces(self):
        tlb = self._tlb()
        a = entry(1, 5, 50)
        b = entry(1, 5, 99)
        tlb.fill(a)
        assert tlb.fill(b) is None  # no victim: replaced in place
        assert tlb.lookup(a.page_key).pfn == 99
        assert tlb.occupancy() == 1

    def test_invalidate(self):
        tlb = self._tlb()
        e = entry(1, 7)
        tlb.fill(e)
        assert tlb.invalidate(e.page_key)
        assert not tlb.invalidate(e.page_key)
        assert tlb.lookup(e.page_key) is None

    def test_flush_asid_only_hits_that_asid(self):
        tlb = self._tlb(entries=16, ways=4)
        tlb.fill(entry(1, 3))
        tlb.fill(entry(2, 3))
        dropped = tlb.flush_asid(1)
        assert dropped == 1
        assert tlb.probe(entry(2, 3).page_key) is not None

    def test_flush_all(self):
        tlb = self._tlb()
        tlb.fill(entry(1, 1))
        tlb.flush_all()
        assert tlb.occupancy() == 0

    def test_probe_no_side_effects(self):
        tlb = self._tlb()
        e = entry(1, 1)
        tlb.fill(e)
        lookups_before = tlb.stats["lookups"]
        tlb.probe(e.page_key)
        assert tlb.stats["lookups"] == lookups_before

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeTlb(TlbConfig(12, 4, 1))

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=300))
    def test_occupancy_never_exceeds_capacity(self, vpns):
        tlb = self._tlb(entries=16, ways=4)
        for vpn in vpns:
            tlb.fill(entry(1, vpn, vpn))
        assert tlb.occupancy() <= 16
        # Every resident entry must be findable.
        for key_set in tlb._sets:
            for key in key_set:
                assert tlb.probe(key) is not None


class TestTlbHierarchy:
    def _hier(self):
        return TlbHierarchy(TlbConfig(4, 2, 1), TlbConfig(16, 4, 7))

    def test_miss_reports_combined_latency(self):
        h = self._hier()
        res = h.lookup(virtual_page_key(1, 0x1000))
        assert res.entry is None
        assert res.level == "miss"
        assert res.latency == 8

    def test_l1_hit(self):
        h = self._hier()
        e = entry(1, 1)
        h.fill(e)
        res = h.lookup(e.page_key)
        assert res.level == "l1"
        assert res.latency == 1

    def test_l2_hit_refills_l1(self):
        h = self._hier()
        # Fill L1 beyond capacity so an old entry lives only in L2.
        entries = [entry(1, vpn, vpn) for vpn in range(8)]
        for e in entries:
            h.fill(e)
        victim_key = entries[0].page_key
        if h.l1.probe(victim_key) is None:
            res = h.lookup(victim_key)
            assert res.level == "l2"
            assert h.l1.probe(victim_key) is not None

    def test_invalidate_both_levels(self):
        h = self._hier()
        e = entry(1, 2)
        h.fill(e)
        h.invalidate(e.page_key)
        assert h.l1.probe(e.page_key) is None
        assert h.l2.probe(e.page_key) is None

    def test_flush_asid(self):
        h = self._hier()
        h.fill(entry(1, 1))
        h.fill(entry(2, 1))
        h.flush_asid(1)
        assert h.l2.probe(entry(2, 1).page_key) is not None
        assert h.l2.probe(entry(1, 1).page_key) is None


class TestDelayedTlb:
    def test_basic_flow(self):
        d = DelayedTlb(TlbConfig(8, 2, 7))
        key = virtual_page_key(3, 0x5000)
        assert d.lookup(key) is None
        d.fill(TlbEntry(key, 5, True))
        assert d.lookup(key).pfn == 5
        assert d.misses() == 1
        assert d.accesses() == 2
        assert d.hit_rate() == 0.5

    def test_shootdown(self):
        d = DelayedTlb(TlbConfig(8, 2, 7))
        key = virtual_page_key(3, 0x5000)
        d.fill(TlbEntry(key, 5, True))
        d.shootdown(0x5000 >> 12 | (3 << 36))
        d.shootdown(key)
        assert d.lookup(key) is None


class TestPageWalker:
    def _walker(self, per_read=10):
        resolved = {}

        def resolve(asid, va):
            return [0x1000, 0x2000, 0x3000, 0x4000 + (va >> 12) * 8]

        return PageWalker(WalkerConfig(walk_cache_entries=2), resolve,
                          lambda pa: per_read)

    def test_cold_walk_reads_all_levels(self):
        w = self._walker()
        res = w.walk(1, 0x1234_5000)
        assert res.memory_accesses == 4
        assert not res.walk_cache_hit
        assert res.cycles == 4 * (10 + 2)

    def test_walk_cache_hit_reads_leaf_only(self):
        w = self._walker()
        w.walk(1, 0x1234_5000)
        res = w.walk(1, 0x1234_6000)  # same 2 MB region
        assert res.walk_cache_hit
        assert res.memory_accesses == 1

    def test_walk_cache_capacity(self):
        w = self._walker()
        w.walk(1, 0 << 21)
        w.walk(1, 1 << 21)
        w.walk(1, 2 << 21)  # evicts region 0
        res = w.walk(1, 0)
        assert not res.walk_cache_hit

    def test_flush(self):
        w = self._walker()
        w.walk(1, 0x1000)
        w.flush()
        assert not w.walk(1, 0x1000).walk_cache_hit

    def test_stats(self):
        w = self._walker()
        w.walk(1, 0x1000)
        w.walk(1, 0x2000)
        assert w.stats["walks"] == 2
        assert w.stats["pte_reads"] == 5  # 4 cold + 1 cached
