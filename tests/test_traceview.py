"""Tests for offline trace analytics (repro.obs.traceview) and the
parallel-safe capture path that feeds it (TraceSpec shards, plan-level
aggregation, the `repro trace view` / `repro profile --sizes` CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.aggregate import aggregate_results
from repro.obs.tracer import Tracer, TraceSpec
from repro.obs.traceview import (
    PHASES,
    TRACE_SCHEMA,
    AccessRecord,
    TraceView,
    combine_summaries,
    read_trace,
)
from repro.sim import run_workload, sweep_delayed_tlb

FAST = dict(accesses=600, warmup=200)


def _mark(label="run_start", **detail):
    event = {"seq": -1, "stage": "mark", "cycles": 0, "label": label}
    event.update(detail)
    return event


def _stage(seq, stage, cycles):
    return {"seq": seq, "stage": stage, "cycles": cycles}


def _access(seq, *, front=0, cache=4, delayed=0, dram=0, hit="l1",
            timed=True, va=0x1000, is_write=False):
    total = front + cache + delayed + dram
    return {"seq": seq, "stage": "access", "cycles": total,
            "core": 0, "asid": 1, "va": va, "is_write": is_write,
            "hit_level": hit, "timed": timed,
            "front_cycles": front, "cache_cycles": cache,
            "delayed_cycles": delayed, "dram_cycles": dram}


def _write_jsonl(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


class TestTraceViewSynthetic:
    def test_access_reconstruction(self):
        view = TraceView()
        view.feed(_mark(workload="w", mmu="m"))
        view.feed(_stage(0, "filter_probe", 0))
        view.feed(_stage(0, "cache", 4))
        view.feed(_access(0, cache=4, hit="l1"))
        view.finish()
        assert len(view.runs) == 1
        run = view.runs[0]
        assert run.label == "w/m"
        assert run.accesses == 1 and run.timed_accesses == 1
        assert run.total_cycles == 4
        assert run.attribution() == {"front": 0, "cache": 4,
                                     "delayed": 0, "dram": 0}
        assert run.hit_levels == {"l1": 1}
        assert run.stage_events == {"filter_probe": 1, "cache": 1}
        # The slowest record carries its raw stage events.
        assert [s["stage"] for s in run.slowest[0].stages] == \
            ["filter_probe", "cache"]

    def test_run_splitting_on_marks(self):
        view = TraceView()
        view.feed(_mark(mmu="a"))
        view.feed(_access(0, cache=4))
        view.feed(_mark(mmu="b"))
        view.feed(_access(0, cache=8, dram=200, hit="memory"))
        view.feed(_access(1, cache=4))
        view.finish()
        assert [r.detail.get("mmu") for r in view.runs] == ["a", "b"]
        assert [r.accesses for r in view.runs] == [1, 2]
        assert view.runs[1].total_cycles == 212
        overall = view.overall()
        assert overall.accesses == 3
        assert overall.total_cycles == 216

    def test_headerless_stream_gets_implicit_run(self):
        view = TraceView()
        view.feed(_stage(0, "cache", 4))
        view.feed(_access(0, cache=4))
        view.finish()
        assert len(view.runs) == 1
        assert view.runs[0].accesses == 1

    def test_orphan_shard_fallback_via_read_trace(self, tmp_path):
        """A shard torn at the front (first line not a run_start) opens
        an implicit, unlabeled run; a later mark closes it normally."""
        path = _write_jsonl(tmp_path / "torn.jsonl", [
            _stage(0, "cache", 4), _access(0, cache=4),   # orphan events
            _mark(workload="gups", mmu="hybrid"),         # then a real run
            _access(1, cache=6),
        ])
        view = read_trace(path)
        assert len(view.runs) == 2
        implicit, labeled = view.runs
        assert implicit.detail == {}
        assert implicit.label == "?/?"
        assert implicit.accesses == 1
        assert labeled.label.startswith("gups/hybrid")
        assert labeled.accesses == 1
        # The orphan events still count in the overall merge.
        assert view.overall().accesses == 2

    def test_untimed_accesses_counted_separately(self):
        view = TraceView()
        view.feed(_access(0, cache=4, timed=False))
        view.feed(_access(1, cache=4, timed=True))
        view.finish()
        run = view.runs[0]
        assert run.accesses == 2 and run.timed_accesses == 1

    def test_top_n_slowest_ranked(self):
        view = TraceView(top_n=2)
        view.feed(_mark())
        for seq, dram in enumerate((10, 500, 30, 200)):
            view.feed(_access(seq, dram=dram, va=seq))
        view.finish()
        slowest = view.runs[0].slowest
        assert [r.total_cycles for r in slowest] == [504, 204]

    def test_stage_histograms_bucket_latencies(self):
        view = TraceView()
        view.feed(_mark())
        for seq, cycles in enumerate((4, 5, 300)):
            view.feed(_stage(seq, "cache", cycles))
            view.feed(_access(seq, cache=cycles))
        view.finish()
        snap = view.runs[0].stage_histograms["cache"].snapshot()
        assert snap["count"] == 3
        assert {(b["lo"], b["count"]) for b in snap["buckets"]} == \
            {(4, 2), (256, 1)}

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [json.dumps(_mark()), "{torn line", json.dumps(_access(0)),
                 json.dumps([1, 2, 3]), ""]
        path.write_text("\n".join(lines) + "\n")
        view = read_trace(path)
        assert view.skipped_lines == 2
        assert view.runs[0].accesses == 1

    def test_combine_summaries_merges_histograms(self):
        views = []
        for cycles in (4, 1000):
            v = TraceView()
            v.feed(_mark())
            v.feed(_stage(0, "cache", cycles))
            v.feed(_access(0, cache=cycles))
            views.append(v.finish())
        combined = combine_summaries(
            [v.runs[0] for v in views], top_n=10)
        assert combined.accesses == 2
        snap = combined.stage_histograms["cache"].snapshot()
        assert snap["count"] == 2
        assert combined.slowest[0].total_cycles == 1000

    def test_combine_summaries_sums_counters_and_reranks(self):
        views = []
        for hit, cycles in (("l1", 4), ("memory", 900), ("memory", 700)):
            v = TraceView()
            v.feed(_mark())
            v.feed(_access(0, cache=cycles, hit=hit))
            views.append(v.finish())
        combined = combine_summaries([v.runs[0] for v in views], top_n=2)
        assert combined.accesses == 3
        assert combined.total_cycles == 4 + 900 + 700
        assert combined.hit_levels == {"l1": 1, "memory": 2}
        assert combined.detail["runs"] == 3
        # Slowest list is the re-ranked union, truncated to top_n.
        assert [r.total_cycles for r in combined.slowest] == [900, 700]

    def test_combine_summaries_empty_is_zeroed(self):
        combined = combine_summaries([])
        assert combined.accesses == 0
        assert combined.detail == {"label": "overall", "runs": 0}
        assert combined.slowest == []

    def test_json_document_shape(self, tmp_path):
        path = _write_jsonl(tmp_path / "t.jsonl",
                            [_mark(workload="w"), _access(0)])
        view = read_trace(path)
        doc = json.loads(json.dumps(view.to_json_dict([path])))
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["events"] == 2
        assert len(doc["runs"]) == 1
        assert doc["overall"]["accesses"] == 1
        assert set(doc["runs"][0]["cycle_attribution"]) == \
            {p.removesuffix("_cycles") for p in PHASES}

    def test_access_record_defaults(self):
        record = AccessRecord.from_events({"seq": 3}, [])
        assert record.seq == 3 and record.total_cycles == 0
        assert record.hit_level is None and record.timed


class TestTraceViewEndToEnd:
    def test_recorded_run_reconstructs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(sink=path)
        result = run_workload("stream", "hybrid_tlb", seed=42,
                              tracer=tracer, **FAST)
        tracer.close()
        view = read_trace(path)
        assert len(view.runs) == 1
        run = view.runs[0]
        assert run.detail["workload"] == "stream"
        assert run.detail["mmu"] == "hybrid_tlb"
        # Every access (timed + warm-up) was sampled and reconstructed.
        assert run.accesses == FAST["accesses"] + FAST["warmup"]
        assert run.timed_accesses == FAST["accesses"]
        # The trace's timed hit mix matches the simulator's counters
        # in total, and the stage histograms saw every cache probe.
        assert sum(run.hit_levels.values()) == run.accesses
        assert run.stage_histograms["cache"].count >= run.accesses
        assert run.slowest[0].total_cycles >= run.slowest[-1].total_cycles
        assert result.accesses == FAST["accesses"]

    def test_sharded_parallel_equals_serial(self, tmp_path):
        sizes = [512, 1024, 2048, 4096]

        def capture(directory, workers):
            directory.mkdir()
            spec = TraceSpec(base=directory / "t.jsonl", sample_every=2)
            from repro.exec import ParallelExecutor
            executor = ParallelExecutor(workers=workers) if workers > 1 \
                else None
            sweep_delayed_tlb("stream", sizes, seed=42,
                              trace_spec=spec, executor=executor, **FAST)
            return spec.shards()

        serial = capture(tmp_path / "serial", workers=1)
        parallel = capture(tmp_path / "parallel", workers=3)
        assert [p.name for p in serial] == [p.name for p in parallel]
        # Shard contents are byte-identical: same jobs, same events.
        for a, b in zip(serial, parallel):
            assert a.read_text() == b.read_text()
        merged = read_trace(parallel)
        assert len(merged.runs) == len(sizes)
        overall = merged.overall()
        assert overall.accesses == len(sizes) * (
            FAST["accesses"] + FAST["warmup"]) // 2


class TestProfileAggregate:
    def test_single_result_aggregate_is_lossless(self):
        result = run_workload("stream", "hybrid_tlb", seed=42, interval=100,
                              **FAST)
        aggregate = aggregate_results([result])
        assert aggregate.points == 1
        assert aggregate.cycles == result.cycles
        assert aggregate.ipc == pytest.approx(result.ipc)
        assert aggregate.cycle_breakdown == result.cycle_breakdown
        assert aggregate.histograms == result.histograms
        assert [w["cycles"] for w in aggregate.intervals] == \
            [w["cycles"] for w in result.intervals]
        assert all(w["point"] == 0 for w in aggregate.intervals)

    def test_multi_result_sums_and_merges(self):
        a = run_workload("stream", "baseline", seed=42, interval=200, **FAST)
        b = run_workload("stream", "hybrid_tlb", seed=42, interval=200,
                         **FAST)
        aggregate = aggregate_results([a, b])
        assert aggregate.points == 2
        assert aggregate.cycles == a.cycles + b.cycles
        assert aggregate.instructions == a.instructions + b.instructions
        for name, snap in aggregate.histograms.items():
            parts = [r.histograms.get(name, {"count": 0}).get("count", 0)
                     for r in (a, b)]
            assert snap["count"] == sum(parts)
        # Intervals concatenate in plan order and are re-indexed.
        assert [w["index"] for w in aggregate.intervals] == \
            list(range(len(a.intervals) + len(b.intervals)))
        assert [w["point"] for w in aggregate.intervals] == \
            [0] * len(a.intervals) + [1] * len(b.intervals)


EIGHT_SIZES = "128,256,512,1024,2048,4096,8192,16384"


class TestCli:
    def _profile_json(self, capsys, extra):
        code = main(["profile", "stream", "hybrid_tlb",
                     "--accesses", "600", "--warmup", "200",
                     "--sizes", EIGHT_SIZES, "--json"] + extra)
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_profile_sizes_parallel_identical_to_serial(self, capsys):
        """ISSUE 4 acceptance: an 8-point --sizes profile on 4 workers
        renders per-stage histograms identical to the serial run."""
        serial = self._profile_json(capsys, [])
        parallel = self._profile_json(capsys, ["--workers", "4"])
        assert serial["schema"] == "repro.profile/v1"
        assert serial["aggregate"]["points"] == 8
        assert parallel["aggregate"]["histograms"] == \
            serial["aggregate"]["histograms"]
        assert parallel == serial

    def test_trace_view_text_and_json(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "stream", "hybrid_tlb", "--accesses", "600",
                     "--warmup", "200", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "view", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "stream/hybrid_tlb" in out
        assert "cycle attribution by phase" in out
        assert "slowest" in out
        assert main(["trace", "view", str(trace), "--json",
                     "--top", "3"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == TRACE_SCHEMA
        assert len(doc["overall"]["slowest"]) == 3

    def test_trace_view_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read trace"):
            main(["trace", "view", "/no/such/trace.jsonl"])

    def test_trace_workload_is_analyze(self, capsys):
        assert main(["trace", "workload", "stream",
                     "--accesses", "600"]) == 0
        assert "distinct pages" in capsys.readouterr().out
